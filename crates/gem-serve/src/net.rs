//! The socket front-end: [`GemServer`] serves the handle-based protocol over TCP with a
//! **shared executor pool and out-of-order responses**.
//!
//! Every connection starts as newline-delimited `gem-proto` JSON (one
//! [`gem_proto::RequestEnvelope`] per line in, one [`gem_proto::ResponseEnvelope`] per
//! line out, lines capped at [`gem_proto::MAX_JSON_LINE_BYTES`]), so any language with
//! sockets and JSON can speak to it. A client may negotiate the **binary codec** by
//! sending the `gem_proto::binary` hello as its first line: the reader answers the
//! accept line and the connection switches to `[u32 len][u8 kind][payload]` frames —
//! f64 payloads as raw little-endian IEEE-754 bytes, `Fit`/`FitUpdate` corpora too
//! large for one frame streamed as chunked uploads (reassembled in the reader, in
//! order), and `Embed` responses streamed as row slices while the transform batches
//! complete. Servers built [`GemServer::with_json_only`] decline the hello exactly like
//! a pre-v5 build (an uncorrelated `protocol_error` line), which is what clients treat
//! as "negotiate down to JSON". The server is deliberately `std::net`-only — the
//! expensive work (EM fits, transforms) is CPU-bound, so a bounded pool of OS threads
//! *is* the right executor; an async reactor would add a dependency without adding
//! throughput.
//!
//! ## Architecture: reader → shared queue → executor pool → per-connection writer
//!
//! The PR 4 design ran one thread per connection in lockstep (read a line, execute it,
//! write the response, repeat), so one slow `Fit` stalled every queued request on that
//! connection and N clients cost N service threads. Now each connection costs two
//! *cheap* threads (a blocking reader and a blocking writer — both I/O-bound) while all
//! CPU work is multiplexed onto one bounded pool:
//!
//! * the **reader** splits the byte stream into frames and pushes them onto a shared
//!   MPMC work queue (it never decodes or executes anything);
//! * **executors** ([`GemServer::with_workers`], default [`default_workers`]) pop
//!   frames from the queue in arrival order — *across all connections* — decode,
//!   execute through [`EmbedService`], and hand the encoded response to the owning
//!   connection's writer;
//! * the **writer** serializes completed responses onto the socket *as they finish*:
//!   a cheap `Stats` or `Embed` pipelined behind a slow `Fit` overtakes it (out-of-order
//!   responses, correlated by envelope id — see the `gem-proto` docs), fits for
//!   distinct handles run concurrently on distinct executors, and duplicate in-flight
//!   fits for the *same* handle coalesce onto one EM run (the engine's single-flight,
//!   counted in `CacheStats::coalesced_fits`).
//!
//! Operational properties:
//!
//! * **Graceful shutdown** — [`ServerHandle::shutdown`] flips a flag and nudges the
//!   acceptor awake; readers stop feeding the queue within their read-timeout tick,
//!   executors drain what was already queued, writers flush every produced response,
//!   and all of them are joined before [`GemServer::run`] returns.
//! * **Request counters** — connections accepted, requests served, protocol errors and
//!   the executor-pool high-water mark are counted on shared atomics
//!   ([`ServerCounters`]), readable while running; [`shutdown_summary`] renders them as
//!   the one-line structured record `gem-served` logs on graceful shutdown.
//! * **Typed errors end-to-end** — serving failures travel as their stable
//!   [`crate::ServeError::code`]s; malformed lines get `protocol_error` /
//!   `version_mismatch` bodies — with the request id salvaged when possible and
//!   `in_reply_to: null` when not — instead of a dropped connection.

use crate::error::ServeError;
use crate::framing::{pump_frames, write_responses, ReadStep};
use crate::handle::ModelHandle;
use crate::metrics::{RequestShape, ServerMetrics};
use crate::service::{EmbedService, ModelInfo, ServeRequest, ServeResponse, ServiceStats};
use crate::{CacheTier, ServedFrom};
use gem_numeric::Matrix;
use gem_proto::{self as proto, binary, RequestBody, ResponseBody};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often an idle reader or executor wakes to check the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(100);

/// The default work-queue bound: deliberately generous (deeper than any sane backlog —
/// at that depth tail latency is already seconds), so shedding only fires under a
/// genuine flood, never under a bursty-but-healthy workload.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Pause after a failed `accept` so persistent errors (e.g. fd exhaustion) degrade to
/// slow retries instead of a busy spin.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(20);

/// The default executor-pool size: the machine's available parallelism, clamped to
/// `[2, 8]` — at least two so cheap requests can overtake a slow fit even on a
/// single-core box, and bounded so a big machine isn't saturated by default.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

/// Monotonic counters shared by the acceptor, every reader, and every executor.
#[derive(Debug, Default)]
pub struct ServerCounters {
    connections: AtomicU64,
    requests: AtomicU64,
    requests_shed: AtomicU64,
    protocol_errors: AtomicU64,
    busy_workers: AtomicU64,
    workers_high_water: AtomicU64,
    lock_recoveries: AtomicU64,
}

impl ServerCounters {
    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Protocol lines answered so far (including error responses).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests shed at admission because the work queue was full. Shed requests are
    /// answered (with the typed `overloaded` error) but never executed, so they are
    /// *not* part of [`ServerCounters::requests`].
    pub fn requests_shed(&self) -> u64 {
        self.requests_shed.load(Ordering::Relaxed)
    }

    /// Lines that failed to decode (answered with `protocol_error`/`version_mismatch`).
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// The most executors ever busy at one instant — how close the pool came to
    /// saturation (equal to the pool size means requests queued behind busy workers).
    pub fn workers_high_water(&self) -> u64 {
        self.workers_high_water.load(Ordering::Relaxed)
    }

    /// Work-queue locks recovered after a holder panicked. Serving continued — a
    /// poisoned queue mutex must not wedge the replica — but a non-zero value means
    /// some executor died mid-request and is worth investigating.
    pub fn lock_recoveries(&self) -> u64 {
        self.lock_recoveries.load(Ordering::Relaxed)
    }

    fn note_lock_recovery(&self) {
        self.lock_recoveries.fetch_add(1, Ordering::Relaxed);
    }

    fn enter_work(&self) {
        let busy = self.busy_workers.fetch_add(1, Ordering::Relaxed) + 1;
        self.workers_high_water.fetch_max(busy, Ordering::Relaxed);
    }

    fn leave_work(&self) {
        self.busy_workers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The one-line structured record `gem-served` logs on graceful shutdown, so soak runs
/// leave a debuggable trace: every field is `key=value`, greppable and stable.
pub fn shutdown_summary(counters: &ServerCounters, stats: &ServiceStats) -> String {
    format!(
        "gem-served shutdown summary: requests={} requests_shed={} connections={} \
         protocol_errors={} coalesced_fits={} workers_high_water={} lock_recoveries={} \
         cache_hits={} cache_misses={}",
        counters.requests(),
        counters.requests_shed(),
        counters.connections(),
        counters.protocol_errors(),
        stats.cache.coalesced_fits,
        counters.workers_high_water(),
        counters.lock_recoveries(),
        stats.cache.hits,
        stats.cache.misses,
    )
}

/// Which codec a connection (and therefore each of its frames) speaks. Selected once
/// per connection by the hello negotiation; never changes mid-connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Codec {
    /// Newline-delimited JSON envelopes — every connection's starting state.
    Json,
    /// Length-prefixed `gem_proto::binary` frames.
    Binary,
}

/// The undecoded request a reader queued, in whichever shape the codec delivered it.
/// Decoding stays on the executor (the reader never parses payloads) — except chunked
/// uploads, which the reader must reassemble in arrival order.
enum FramePayload {
    /// A JSON-codec line, raw bytes (UTF-8 validated by the executor).
    JsonLine(Vec<u8>),
    /// A binary-codec frame (split from the stream, payload not yet decoded).
    Binary(binary::Frame),
    /// A request the reader already assembled from a chunked upload sequence.
    Assembled(Box<proto::RequestEnvelope>),
}

impl FramePayload {
    /// Best-effort request id for correlating an error response without decoding.
    fn salvage_id(&self) -> Option<u64> {
        match self {
            FramePayload::JsonLine(line) => std::str::from_utf8(line)
                .ok()
                .and_then(proto::salvage_request_id),
            FramePayload::Binary(frame) => frame.correlation_id(),
            FramePayload::Assembled(envelope) => Some(envelope.id),
        }
    }
}

/// One frame read off a connection, awaiting an executor: the undecoded payload, the
/// connection's codec, and the sending half of the owning connection's writer channel
/// (so the response lands on the right socket no matter which executor runs it, and no
/// matter in which order it finishes).
struct Frame {
    payload: FramePayload,
    codec: Codec,
    reply: mpsc::Sender<Vec<u8>>,
    /// When the reader queued the frame — the start of the queue-wait phase.
    enqueued_at: Instant,
    /// The owning connection's in-flight depth (shared with its reader): incremented
    /// at enqueue, decremented when the frame is answered or shed — the
    /// per-connection fairness signal surfaced through `ServerMetrics`.
    depth: Arc<AtomicU64>,
}

impl Frame {
    /// Mark the frame answered (or shed): drop it from its connection's in-flight
    /// depth and surface the new depth.
    fn retire(&self, metrics: &ServerMetrics) {
        let before = self.depth.fetch_sub(1, Ordering::Relaxed);
        metrics.observe_connection_depth(before.saturating_sub(1));
    }
}

/// Encode an error (or any) response body as exact wire bytes for `codec` — JSON lines
/// include their trailing newline; binary bodies become complete frames.
fn encode_error_bytes(codec: Codec, id: Option<u64>, body: ResponseBody) -> Vec<u8> {
    let envelope = match id {
        Some(id) => proto::ResponseEnvelope::new(id, body),
        None => proto::ResponseEnvelope::uncorrelated(body),
    };
    match codec {
        Codec::Json => proto::encode_response(&envelope).into_bytes(),
        // Error bodies always fit a frame; an encode failure here would mean the
        // message itself exceeded the frame bound, in which case nothing useful can be
        // said — send nothing rather than corrupt the stream.
        Codec::Binary => {
            binary::wrap_response_line(envelope.in_reply_to, &proto::encode_response(&envelope))
                .unwrap_or_default()
        }
    }
}

/// The shared MPMC work queue between readers and executors — **bounded**: a push
/// beyond `capacity` is refused and the caller sheds the frame with a typed
/// `overloaded` response ([`WorkQueue::shed`]) instead of letting an unbounded backlog
/// stall every connection behind it. Work already admitted always completes.
struct WorkQueue {
    frames: Mutex<VecDeque<Frame>>,
    ready: Condvar,
    capacity: usize,
    /// For counting poisoned-lock recoveries where operators see them
    /// ([`ServerCounters::lock_recoveries`], rendered in the shutdown summary).
    counters: Arc<ServerCounters>,
    /// Queue-depth gauge and retry-hint source (updated under the queue lock, so the
    /// gauge never drifts from the real backlog).
    metrics: Arc<ServerMetrics>,
}

impl WorkQueue {
    fn new(counters: Arc<ServerCounters>, metrics: Arc<ServerMetrics>, capacity: usize) -> Self {
        WorkQueue {
            frames: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity,
            counters,
            metrics,
        }
    }

    /// Take the queue lock, recovering (and counting) if a previous holder panicked:
    /// a poisoned queue mutex must degrade to one lost request, never to every reader
    /// and executor thread aborting — that would wedge the whole replica.
    fn locked(&self) -> std::sync::MutexGuard<'_, VecDeque<Frame>> {
        crate::sync::lock_or_recover_with(&self.frames, || self.counters.note_lock_recovery())
    }

    /// Admit a frame, or hand it back when the queue is at capacity (the caller sheds
    /// it — outside the lock, so response encoding never serializes the queue).
    fn push(&self, frame: Frame) -> Result<(), Frame> {
        {
            let mut frames = self.locked();
            if frames.len() >= self.capacity {
                return Err(frame);
            }
            frames.push_back(frame);
            self.metrics.depth_gauge().set(frames.len() as u64);
        }
        self.ready.notify_one();
        Ok(())
    }

    /// Answer a refused frame with the typed `overloaded` error — correlated to the
    /// request's id when one is salvageable, encoded for the connection's codec — and
    /// count the shed. The frame never reaches an executor: shedding is O(1) no matter
    /// how expensive the request was.
    fn shed(&self, frame: Frame) {
        self.counters.requests_shed.fetch_add(1, Ordering::Relaxed);
        let queue_depth = self.metrics.queue_depth();
        let error = ServeError::Overloaded {
            queue_depth,
            retry_after_ms: self.metrics.retry_hint_ms(queue_depth),
        };
        let body = error_body(&error);
        let bytes = encode_error_bytes(frame.codec, frame.payload.salvage_id(), body);
        // A send failure means the connection is already gone — nothing to shed to.
        let _ = frame.reply.send(bytes);
        frame.retire(&self.metrics);
    }

    /// Pop the next frame, blocking until one arrives. Returns `None` only when
    /// `inputs_closed` is set *and* the queue is drained. The flag must be raised only
    /// after every producer (reader) has been joined — NOT at shutdown-request time —
    /// otherwise all executors could retire in the instant the queue is empty while a
    /// reader is still finishing a read, stranding its final frame forever (its writer
    /// would never see channel closure, and `GemServer::run` would hang joining the
    /// reader). Accepted work is always answered.
    fn pop(&self, inputs_closed: &AtomicBool) -> Option<Frame> {
        let mut frames = self.locked();
        loop {
            if let Some(frame) = frames.pop_front() {
                self.metrics.depth_gauge().set(frames.len() as u64);
                return Some(frame);
            }
            if inputs_closed.load(Ordering::SeqCst) {
                return None;
            }
            frames = crate::sync::wait_timeout_or_recover(&self.ready, frames, READ_TICK, || {
                self.counters.note_lock_recovery()
            });
        }
    }
}

/// A remote control for a running [`GemServer`]: address, counters, shutdown.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
    metrics: Arc<ServerMetrics>,
}

impl ServerHandle {
    /// The address the server is listening on (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live request counters.
    pub fn counters(&self) -> &ServerCounters {
        &self.counters
    }

    /// The live telemetry instruments (histograms, gauges, the Prometheus render).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Render the Prometheus text exposition document for this server, without cache
    /// statistics (use [`ServerMetrics::render`] with the service's stats for those).
    pub fn render_metrics(&self) -> String {
        self.metrics.render(&self.counters, None)
    }

    /// Ask the server to stop: no new connections are accepted, queued and in-flight
    /// requests finish and their responses are flushed, idle connections close within
    /// one read-timeout tick. Safe to call more than once.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The acceptor blocks in `accept`; a throwaway connection wakes it so it can
        // observe the flag without waiting for real traffic.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A TCP server over an [`EmbedService`]. Bind, then [`GemServer::run`] (blocking) or
/// hold the [`ServerHandle`] from [`GemServer::handle`] to stop it from another thread.
#[derive(Debug)]
pub struct GemServer {
    listener: TcpListener,
    service: Arc<EmbedService>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
    metrics: Arc<ServerMetrics>,
    workers: usize,
    queue_capacity: usize,
    json_only: bool,
}

impl GemServer {
    /// Bind `addr` (use port 0 for an ephemeral port; read it back with
    /// [`GemServer::local_addr`]). The executor pool defaults to [`default_workers`];
    /// override with [`GemServer::with_workers`].
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(service: Arc<EmbedService>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(GemServer {
            listener: TcpListener::bind(addr)?,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            counters: Arc::new(ServerCounters::default()),
            metrics: Arc::new(ServerMetrics::new()),
            workers: default_workers(),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            json_only: false,
        })
    }

    /// Decline binary-codec negotiation: the hello line is answered like any malformed
    /// request (an uncorrelated `protocol_error`), exactly as a pre-v5 build would, so
    /// negotiating clients downgrade to JSON on the same connection. For debugging and
    /// for testing the downgrade path (`gem-served --json-only`).
    pub fn with_json_only(mut self) -> Self {
        self.json_only = true;
        self
    }

    /// Whether this server declines binary-codec negotiation.
    pub fn json_only(&self) -> bool {
        self.json_only
    }

    /// Set the executor-pool size: how many requests (across all connections) execute
    /// concurrently. A size of 1 serializes execution — responses still return as they
    /// finish, but nothing overtakes.
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "the executor pool needs at least one worker");
        self.workers = workers;
        self
    }

    /// The executor-pool size [`GemServer::run`] will spawn.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Bound the work queue: a request arriving while `capacity` frames already wait
    /// is shed with a typed `overloaded` error (and a retry-after hint) instead of
    /// joining an unbounded backlog. Default [`DEFAULT_QUEUE_CAPACITY`].
    ///
    /// # Panics
    /// Panics when `capacity` is zero (a queue that sheds everything serves nothing).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "the work queue needs room for at least one frame"
        );
        self.queue_capacity = capacity;
        self
    }

    /// The work-queue bound [`GemServer::run`] will enforce.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The live telemetry instruments (shareable; scrape listeners clone this).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The bound address (ephemeral port resolved).
    ///
    /// # Errors
    /// Propagates the socket-introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for observing and stopping the server from other threads.
    ///
    /// # Errors
    /// Propagates the socket-introspection failure.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.listener.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
            counters: Arc::clone(&self.counters),
            metrics: Arc::clone(&self.metrics),
        })
    }

    /// Accept connections until [`ServerHandle::shutdown`] is called. Each connection
    /// gets a reader (and, lazily, a writer); all execution happens on the shared
    /// executor pool. Joins every reader, writer and executor before returning — when
    /// this returns, every accepted request has been answered and flushed (or its
    /// connection is gone).
    ///
    /// # Errors
    /// Propagates accept failures (transient per-connection errors are skipped).
    pub fn run(self) -> std::io::Result<()> {
        self.metrics
            .set_shape_of_pool(self.workers as u64, self.queue_capacity as u64);
        let queue = Arc::new(WorkQueue::new(
            Arc::clone(&self.counters),
            Arc::clone(&self.metrics),
            self.queue_capacity,
        ));
        // Raised only once every reader is joined (see `WorkQueue::pop`): executors
        // must outlive all producers, or a frame pushed during shutdown could be
        // stranded with no executor left to answer it.
        let inputs_closed = Arc::new(AtomicBool::new(false));
        let executors: Vec<std::thread::JoinHandle<()>> = (0..self.workers)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let service = Arc::clone(&self.service);
                let inputs_closed = Arc::clone(&inputs_closed);
                let counters = Arc::clone(&self.counters);
                let metrics = Arc::clone(&self.metrics);
                std::thread::spawn(move || {
                    executor_loop(&queue, &service, &inputs_closed, &counters, &metrics)
                })
            })
            .collect();
        let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for incoming in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(stream) => stream,
                // A failed accept (peer vanished mid-handshake, fd exhaustion, …)
                // should not take the server down — but a *persistent* error (EMFILE
                // under a connection flood) would otherwise turn this loop into a
                // 100%-CPU spin, so back off briefly before retrying.
                Err(_) => {
                    std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                    continue;
                }
            };
            self.counters.connections.fetch_add(1, Ordering::Relaxed);
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&self.shutdown);
            let json_only = self.json_only;
            readers.push(std::thread::spawn(move || {
                read_connection(stream, &queue, &shutdown, json_only);
            }));
            readers.retain(|r| !r.is_finished());
        }
        // Shutdown: readers stop feeding the queue within one tick (each one joins its
        // connection's writer, which exits once the executors — guaranteed to still be
        // running, because `inputs_closed` is not raised yet — have answered
        // everything that was queued for it).
        for reader in readers {
            let _ = reader.join();
        }
        // Only now can no new frame appear: let the executors drain what remains and
        // retire.
        inputs_closed.store(true, Ordering::SeqCst);
        queue.ready.notify_all();
        for executor in executors {
            let _ = executor.join();
        }
        Ok(())
    }
}

/// One executor: pop frames (from any connection, in arrival order), decode + execute +
/// encode, and hand the response line to the owning connection's writer. Responses
/// therefore complete — and are written — in *finish* order, not request order.
fn executor_loop(
    queue: &WorkQueue,
    service: &EmbedService,
    inputs_closed: &AtomicBool,
    counters: &ServerCounters,
    metrics: &ServerMetrics,
) {
    while let Some(frame) = queue.pop(inputs_closed) {
        let queue_wait = frame.enqueued_at.elapsed();
        counters.enter_work();
        metrics.busy_gauge().inc();
        counters.requests.fetch_add(1, Ordering::Relaxed);
        // `respond_frame` streams intermediate frames (embed rows) to the writer
        // itself but hands the *final* frame back, so the gauges drop before the
        // reply that completes the request leaves: a lockstep client that reacts to
        // the reply instantly must not see its previous request still counted as
        // busy or in flight. A send failure means the connection (and its writer)
        // are gone; the work is simply dropped, like any response to a vanished
        // peer.
        let final_frame = respond_frame(service, &frame, queue_wait, counters, metrics);
        metrics.busy_gauge().dec();
        frame.retire(metrics);
        counters.leave_work();
        if let Some(bytes) = final_frame {
            let _ = frame.reply.send(bytes);
        }
    }
}

/// How many query columns a streamed binary embed transforms per flushed row frame:
/// small enough that the first rows reach the client while later batches still
/// compute, large enough that framing overhead stays negligible.
const EMBED_STREAM_BATCH: usize = 32;

/// How many result rows ride one `embed_rows` frame when a fully-materialized matrix
/// (e.g. an `embed_corpus` response) is sliced for the binary codec.
const EMBED_ROWS_PER_FRAME: usize = 512;

/// Obtain the request envelope from whatever shape the reader queued, or the id to
/// correlate the decode error with.
fn decode_payload(
    payload: &FramePayload,
) -> Result<proto::RequestEnvelope, (Option<u64>, proto::ProtoError)> {
    match payload {
        FramePayload::JsonLine(line) => {
            // Invalid UTF-8 is *rejected*, not lossily replaced: replacement
            // characters inside a JSON string would parse fine and silently mutate a
            // header that participates in the corpus fingerprint. Nothing
            // correlatable survives, so the error is uncorrelated.
            let Ok(text) = std::str::from_utf8(line) else {
                return Err((
                    None,
                    proto::ProtoError::Parse {
                        message: "request line is not valid UTF-8".to_string(),
                    },
                ));
            };
            proto::decode_request(text).map_err(|e| (proto::salvage_request_id(text), e))
        }
        FramePayload::Binary(frame) => {
            binary::decode_request_frame(frame).map_err(|e| (frame.correlation_id(), e))
        }
        FramePayload::Assembled(envelope) => Ok((**envelope).clone()),
    }
}

/// Slice a fully-materialized embedding matrix into `embed_rows` frames plus the
/// closing `embed_done` — the binary rendering of an `Embedded` body.
fn matrix_frames(id: u64, served_from: &str, matrix: &Matrix) -> Vec<u8> {
    let cols = matrix.cols();
    let mut out = Vec::new();
    if cols > 0 {
        for rows in matrix
            .as_slice()
            .chunks(EMBED_ROWS_PER_FRAME.saturating_mul(cols))
        {
            match binary::embed_rows_frame(id, served_from, cols, rows) {
                Ok(frame) => out.extend_from_slice(&frame),
                Err(_) => return Vec::new(),
            }
        }
    }
    match binary::embed_done_frame(id, served_from, cols, matrix.rows()) {
        Ok(frame) => {
            out.extend_from_slice(&frame);
            out
        }
        Err(_) => Vec::new(),
    }
}

/// Encode a response body as exact wire bytes for `codec`.
fn encode_body_bytes(codec: Codec, id: u64, body: ResponseBody) -> Vec<u8> {
    match codec {
        Codec::Json => proto::encode_response(&proto::ResponseEnvelope::new(id, body)).into_bytes(),
        Codec::Binary => match &body {
            ResponseBody::Embedded {
                matrix,
                served_from,
            } => matrix_frames(id, served_from, matrix),
            _ => encode_error_bytes(Codec::Binary, Some(id), body),
        },
    }
}

/// Serve a binary-codec `Embed` as a row stream: transform the query columns in
/// batches and flush each batch's rows as an `embed_rows` frame the moment it
/// completes, closing with `embed_done` — the client starts receiving rows while
/// later batches are still computing. A failure mid-stream becomes the typed error
/// frame; the client discards the partial rows it accumulated for this id. Returns
/// the closing frame (`embed_done` or the typed error) for the executor to send
/// after the accounting gauges drop; only intermediate row frames are sent here.
#[allow(clippy::too_many_arguments)]
fn stream_embed(
    service: &EmbedService,
    id: u64,
    handle: ModelHandle,
    queries: Vec<gem_core::GemColumn>,
    reply: &mpsc::Sender<Vec<u8>>,
    queue_wait: Duration,
    decode: Duration,
    metrics: &ServerMetrics,
) -> Option<Vec<u8>> {
    let execute_started = Instant::now();
    let mut encode_time = Duration::ZERO;
    let mut sent_rows = 0usize;
    let mut cols = 0usize;
    let mut served_from = String::new();
    // Zero queries still resolve the handle (and surface unknown_model) through one
    // empty serve call, exactly like the JSON path.
    let batches: Vec<&[gem_core::GemColumn]> = if queries.is_empty() {
        vec![queries.as_slice()]
    } else {
        queries.chunks(EMBED_STREAM_BATCH).collect()
    };
    for batch in batches {
        match service.serve_one(ServeRequest::Embed {
            handle,
            queries: batch.to_vec(),
        }) {
            Ok(ServeResponse::Embedded {
                matrix,
                served_from: from,
            }) => {
                cols = matrix.cols();
                sent_rows = sent_rows.saturating_add(matrix.rows());
                served_from = from.wire_name().to_string();
                let encode_started = Instant::now();
                let frame = if cols > 0 || matrix.rows() == 0 {
                    binary::embed_rows_frame(id, &served_from, cols, matrix.as_slice())
                } else {
                    Err(proto::ProtoError::Parse {
                        message: "embed produced rows without columns".to_string(),
                    })
                };
                let sent = match frame {
                    Ok(bytes) => reply.send(bytes).is_ok(),
                    Err(_) => false,
                };
                encode_time += encode_started.elapsed();
                if !sent {
                    // The connection is gone (or the frame was unencodable); stop
                    // transforming for a peer that cannot receive the rows.
                    metrics.observe(
                        RequestShape::Embed,
                        queue_wait,
                        decode,
                        execute_started.elapsed().saturating_sub(encode_time),
                        encode_time,
                    );
                    return None;
                }
            }
            Ok(_) => {
                let body = ResponseBody::Error {
                    code: "invalid_request".to_string(),
                    message: "embed produced a non-embedding response".to_string(),
                    retry_after_ms: None,
                };
                metrics.observe(
                    RequestShape::Embed,
                    queue_wait,
                    decode,
                    execute_started.elapsed().saturating_sub(encode_time),
                    encode_time,
                );
                return Some(encode_error_bytes(Codec::Binary, Some(id), body));
            }
            Err(error) => {
                // The error frame supersedes any rows already streamed: the client
                // drops its partial accumulation for this id on seeing it.
                metrics.observe(
                    RequestShape::Embed,
                    queue_wait,
                    decode,
                    execute_started.elapsed().saturating_sub(encode_time),
                    encode_time,
                );
                return Some(encode_error_bytes(
                    Codec::Binary,
                    Some(id),
                    error_body(&error),
                ));
            }
        }
    }
    let encode_started = Instant::now();
    let done = binary::embed_done_frame(id, &served_from, cols, sent_rows).ok();
    encode_time += encode_started.elapsed();
    metrics.observe(
        RequestShape::Embed,
        queue_wait,
        decode,
        execute_started.elapsed().saturating_sub(encode_time),
        encode_time,
    );
    done
}

/// Decode, execute and encode one frame, recording each phase's duration under the
/// request's shape. Intermediate frames (streamed binary embed rows) go to the
/// owning connection's writer directly; the *final* frame is returned so the
/// executor can drop the accounting gauges before it leaves. Never panics on
/// foreign input: every failure becomes an error response body with a stable code
/// (malformed payloads are timed under the `protocol_error` shape), correlated when
/// an id is salvageable and `in_reply_to: null` when not — never a sentinel a real
/// id could collide with.
fn respond_frame(
    service: &EmbedService,
    frame: &Frame,
    queue_wait: Duration,
    counters: &ServerCounters,
    metrics: &ServerMetrics,
) -> Option<Vec<u8>> {
    let decode_started = Instant::now();
    let envelope = match decode_payload(&frame.payload) {
        Ok(envelope) => envelope,
        Err((id, error)) => {
            counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let decode = decode_started.elapsed();
            let body = ResponseBody::Error {
                code: error.code().to_string(),
                message: error.to_string(),
                retry_after_ms: None,
            };
            let encode_started = Instant::now();
            let bytes = encode_error_bytes(frame.codec, id, body);
            metrics.observe(
                RequestShape::ProtocolError,
                queue_wait,
                decode,
                Duration::ZERO,
                encode_started.elapsed(),
            );
            return Some(bytes);
        }
    };
    let decode = decode_started.elapsed();
    let shape = RequestShape::of_body(&envelope.body);
    // Binary embeds stream: rows are flushed as transform batches complete instead of
    // materializing the whole matrix before the first byte leaves.
    if frame.codec == Codec::Binary {
        if let RequestBody::Embed { handle, queries } = envelope.body {
            return match parse_handle(&handle) {
                Ok(handle) => stream_embed(
                    service,
                    envelope.id,
                    handle,
                    queries,
                    &frame.reply,
                    queue_wait,
                    decode,
                    metrics,
                ),
                Err(error) => {
                    let encode_started = Instant::now();
                    let bytes =
                        encode_error_bytes(Codec::Binary, Some(envelope.id), error_body(&error));
                    metrics.observe(
                        shape,
                        queue_wait,
                        decode,
                        Duration::ZERO,
                        encode_started.elapsed(),
                    );
                    Some(bytes)
                }
            };
        }
    }
    let execute_started = Instant::now();
    let mut body = if matches!(envelope.body, RequestBody::Health) {
        // Health is answered from the network layer's own gauges — it must stay cheap
        // and lock-free precisely when the service is saturated.
        health_body(metrics)
    } else {
        match wire_to_request(envelope.body) {
            Ok(request) => match service.serve_one(request) {
                Ok(response) => response_to_wire(response),
                Err(error) => error_body(&error),
            },
            Err(error) => error_body(&error),
        }
    };
    // Stats responses carry the per-shape latency table, which lives here in the
    // network layer — the service beneath has no notion of wire shapes.
    if let ResponseBody::Stats(stats) = &mut body {
        stats.latencies = metrics.latency_table();
    }
    let execute = execute_started.elapsed();
    let encode_started = Instant::now();
    let bytes = encode_body_bytes(frame.codec, envelope.id, body);
    metrics.observe(shape, queue_wait, decode, execute, encode_started.elapsed());
    Some(bytes)
}

/// The replica's admission-control view of itself, derived from the live gauges:
/// `overloaded` while the queue is at capacity (new work is being shed), `degraded`
/// when the backlog passes half the bound or every executor is busy, `ok` otherwise.
fn health_body(metrics: &ServerMetrics) -> ResponseBody {
    let queue_depth = metrics.queue_depth();
    let queue_capacity = metrics.queue_capacity();
    let busy_workers = metrics.busy_workers();
    let workers = metrics.workers();
    let (state, retry_after_ms) = if queue_capacity > 0 && queue_depth >= queue_capacity {
        ("overloaded", Some(metrics.retry_hint_ms(queue_depth)))
    } else if (queue_capacity > 0 && queue_depth > queue_capacity / 2)
        || (workers > 0 && busy_workers >= workers)
    {
        ("degraded", Some(metrics.retry_hint_ms(queue_depth.max(1))))
    } else {
        ("ok", None)
    };
    ResponseBody::Health {
        state: state.to_string(),
        queue_depth,
        queue_capacity,
        busy_workers,
        workers,
        retry_after_ms,
    }
}

/// Best-effort id salvage for a line too large to parse: the protocol's own encoder
/// always emits `{"id":N,` first, so a prefix scan recovers the id from conforming
/// clients in O(digits) instead of an O(line) JSON parse — an oversized line must
/// never monopolize its reader just to be rejected. Foreign encodings that put `id`
/// elsewhere salvage as `None`, which is the documented best-effort contract.
fn salvage_oversized_id(line: &[u8]) -> Option<u64> {
    let digits: Vec<u8> = line
        .strip_prefix(b"{\"id\":")?
        .iter()
        .copied()
        .take_while(u8::is_ascii_digit)
        .collect();
    std::str::from_utf8(&digits).ok()?.parse().ok()
}

/// Queue one frame (incrementing the connection's in-flight depth first, so the depth
/// covers shed frames too); a full queue refuses it and it is shed with the typed
/// `overloaded` error instead of blocking the reader (which would stall the connection
/// and, transitively, the client's pipeline).
fn enqueue(
    queue: &WorkQueue,
    payload: FramePayload,
    codec: Codec,
    reply: &mpsc::Sender<Vec<u8>>,
    depth: &Arc<AtomicU64>,
) {
    let now_in_flight = depth.fetch_add(1, Ordering::Relaxed) + 1;
    queue.metrics.observe_connection_depth(now_in_flight);
    let frame = Frame {
        payload,
        codec,
        reply: reply.clone(),
        enqueued_at: Instant::now(),
        depth: Arc::clone(depth),
    };
    if let Err(refused) = queue.push(frame) {
        queue.shed(refused);
    }
}

/// One connection's reader: split the byte stream into frames and queue them. Spawns
/// the connection's writer immediately and joins it before exiting, so a reader
/// finishing (EOF or shutdown) never abandons responses that are still in flight.
///
/// Every connection starts in the JSON codec. Unless the server is `json_only`, the
/// *first* line may be the `gem_proto::binary` hello: the reader answers the accept
/// line itself (no executor round-trip — the handshake must resolve before any queued
/// response could interleave with it) and hands the rest of the stream to
/// [`read_binary_frames`]. A version-mismatched hello is declined with an uncorrelated
/// `version_mismatch` line and the connection stays JSON; under `json_only` the hello
/// is not intercepted at all and fails as the malformed JSON line it is — exactly the
/// pre-v5 behaviour clients treat as "negotiate down".
fn read_connection(stream: TcpStream, queue: &WorkQueue, shutdown: &AtomicBool, json_only: bool) {
    // The read timeout is a shutdown tick, not a deadline: on timeout the partial line
    // is kept and reading resumes, so slow writers lose nothing.
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    // Out-of-order responses are written as many small buffers; Nagle would batch them
    // behind delayed ACKs and hand the latency win right back.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
    let writer_metrics = Arc::clone(&queue.metrics);
    let writer =
        std::thread::spawn(move || write_responses(write_half, &reply_rx, &writer_metrics));
    let mut reader = BufReader::new(stream);
    // The connection's in-flight depth: shared with every frame this reader queues.
    let depth = Arc::new(AtomicU64::new(0));
    // Lines are accumulated as raw bytes, NOT via `read_line`: `read_line`'s built-in
    // UTF-8 validation (a) turns any invalid byte into an error that would drop the
    // connection without a response, and (b) *discards* bytes already consumed from the
    // stream when a read-timeout tick fires mid-multibyte character — a slow writer
    // would silently lose part of a valid request. `read_until` keeps every byte across
    // ticks; UTF-8 is validated by the executor, where a failure can be answered
    // properly.
    let mut line: Vec<u8> = Vec::new();
    let mut awaiting_first_line = !json_only;
    // Set after an oversized line was answered: the rest of that line (still in
    // flight on the socket) is discarded up to its newline, then parsing resumes.
    let mut discarding = false;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => break, // EOF
            Ok(n) => {
                queue.metrics.count_wire_read(n as u64);
                if discarding {
                    if line.ends_with(b"\n") {
                        discarding = false;
                    }
                    line.clear();
                    continue;
                }
                if line.len() > proto::MAX_JSON_LINE_BYTES {
                    // Answer directly (never queue a rejected line). The id is
                    // salvaged with a prefix scan, NOT `salvage_request_id`: parsing
                    // megabytes of JSON just to reject them would let an oversized
                    // line monopolize this reader.
                    queue
                        .counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let id = salvage_oversized_id(&line);
                    let body = ResponseBody::Error {
                        code: "protocol_error".to_string(),
                        message: format!(
                            "request line exceeds the {} byte JSON cap; negotiate the \
                             binary codec and use a chunked corpus upload",
                            proto::MAX_JSON_LINE_BYTES
                        ),
                        retry_after_ms: None,
                    };
                    let _ = reply_tx.send(encode_error_bytes(Codec::Json, id, body));
                    discarding = !line.ends_with(b"\n");
                    line.clear();
                    awaiting_first_line = false;
                    continue;
                }
                if awaiting_first_line {
                    awaiting_first_line = false;
                    if let Some(version) = std::str::from_utf8(&line)
                        .ok()
                        .and_then(binary::parse_hello)
                    {
                        if version == proto::PROTOCOL_VERSION {
                            let _ = reply_tx.send(binary::accept_line().into_bytes());
                            line.clear();
                            read_binary_frames(&mut reader, queue, shutdown, &reply_tx, &depth);
                            break;
                        }
                        // A hello from a different protocol generation: decline it
                        // (typed, uncorrelated) and keep speaking JSON.
                        queue
                            .counters
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        let body = ResponseBody::Error {
                            code: "version_mismatch".to_string(),
                            message: format!(
                                "binary hello speaks protocol version {version}, \
                                 this server speaks {}",
                                proto::PROTOCOL_VERSION
                            ),
                            retry_after_ms: None,
                        };
                        let _ = reply_tx.send(encode_error_bytes(Codec::Json, None, body));
                        line.clear();
                        continue;
                    }
                    // Not a hello: fall through and treat it as the JSON line it is.
                }
                // A line without a trailing newline means EOF-mid-line; it is answered
                // best-effort like any other, and the next read will report EOF.
                if !line.iter().all(u8::is_ascii_whitespace) {
                    enqueue(
                        queue,
                        FramePayload::JsonLine(std::mem::take(&mut line)),
                        Codec::Json,
                        &reply_tx,
                        &depth,
                    );
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // shutdown tick; keep any partial line (bytes, not chars)
            }
            Err(_) => break,
        }
    }
    // Drop this reader's sender; the writer exits once every frame queued for this
    // connection has been answered (each frame holds a sender clone) — executors keep
    // draining concurrently, so this join cannot deadlock.
    drop(reply_tx);
    let _ = writer.join();
}

/// The binary half of a negotiated connection: pump bytes into a
/// [`binary::FrameAssembler`], queue complete frames, and reassemble chunked corpus
/// uploads in arrival order (chunk sequencing is stateful, so it *must* happen here in
/// the reader — executors see only complete requests).
///
/// Error discipline mirrors the codec's: a payload-level violation inside valid
/// framing (a chunk out of sequence, an unknown upload id) is answered with a
/// correlated typed error and the connection — including other in-flight uploads —
/// survives; a framing-level violation (zero or oversized length prefix) means the
/// stream position is unrecoverable, so the error is sent uncorrelated and the
/// connection closes.
fn read_binary_frames(
    reader: &mut BufReader<TcpStream>,
    queue: &WorkQueue,
    shutdown: &AtomicBool,
    reply_tx: &mpsc::Sender<Vec<u8>>,
    depth: &Arc<AtomicU64>,
) {
    let mut assembler = binary::FrameAssembler::new();
    let mut chunks = binary::ChunkAssembler::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Drain every complete frame the assembler holds before reading again.
        loop {
            match assembler.next_frame() {
                Ok(Some(frame)) => {
                    if binary::ChunkAssembler::is_chunk_kind(frame.kind) {
                        match chunks.accept(&frame, |_| {}) {
                            Ok(Some(envelope)) => enqueue(
                                queue,
                                FramePayload::Assembled(Box::new(envelope)),
                                Codec::Binary,
                                reply_tx,
                                depth,
                            ),
                            Ok(None) => {}
                            Err(error) => {
                                // The violating upload's state is dropped, but the
                                // framing is intact: answer and keep serving.
                                queue
                                    .counters
                                    .protocol_errors
                                    .fetch_add(1, Ordering::Relaxed);
                                let body = ResponseBody::Error {
                                    code: error.code().to_string(),
                                    message: error.to_string(),
                                    retry_after_ms: None,
                                };
                                let _ = reply_tx.send(encode_error_bytes(
                                    Codec::Binary,
                                    frame.correlation_id(),
                                    body,
                                ));
                            }
                        }
                    } else {
                        enqueue(
                            queue,
                            FramePayload::Binary(frame),
                            Codec::Binary,
                            reply_tx,
                            depth,
                        );
                    }
                }
                Ok(None) => break,
                Err(error) => {
                    // Framing lost: nothing after this point can be trusted.
                    queue
                        .counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let body = ResponseBody::Error {
                        code: error.code().to_string(),
                        message: error.to_string(),
                        retry_after_ms: None,
                    };
                    let _ = reply_tx.send(encode_error_bytes(Codec::Binary, None, body));
                    return;
                }
            }
        }
        match pump_frames(reader, &mut assembler, &queue.metrics) {
            ReadStep::Bytes | ReadStep::Tick => {}
            ReadStep::Eof | ReadStep::Failed => return,
        }
    }
}

fn parse_handle(text: &str) -> Result<ModelHandle, ServeError> {
    ModelHandle::parse(text).map_err(|reason| ServeError::InvalidRequest { reason })
}

/// Lower a wire request body into the service's typed request.
pub(crate) fn wire_to_request(body: RequestBody) -> Result<ServeRequest, ServeError> {
    Ok(match body {
        RequestBody::Fit {
            corpus,
            config,
            features,
            composition,
        } => ServeRequest::Fit {
            corpus: Arc::new(corpus),
            config,
            features,
            composition,
        },
        RequestBody::FitUpdate { handle, corpus } => ServeRequest::FitUpdate {
            handle: parse_handle(&handle)?,
            corpus: Arc::new(corpus),
        },
        RequestBody::Embed { handle, queries } => ServeRequest::Embed {
            handle: parse_handle(&handle)?,
            queries,
        },
        RequestBody::EmbedCorpus {
            method,
            corpus,
            queries,
            labels,
        } => ServeRequest::EmbedCorpus {
            method,
            corpus: Arc::new(corpus),
            queries,
            labels,
        },
        RequestBody::PushModel { snapshot } => {
            // The snapshot is validated exactly like a store file (magic, format
            // version, key well-formedness) before any of the model is trusted; a
            // malformed artifact is the *request's* fault.
            let (key, model) = gem_store::decode_snapshot(&snapshot, None).map_err(|e| {
                ServeError::InvalidRequest {
                    reason: format!("snapshot rejected: {e}"),
                }
            })?;
            ServeRequest::PushModel {
                handle: ModelHandle::from(key),
                model: Arc::new(model),
            }
        }
        RequestBody::PullModel { handle } => ServeRequest::PullModel {
            handle: parse_handle(&handle)?,
        },
        RequestBody::Stats => ServeRequest::Stats,
        // Health is intercepted in `respond_frame` (it is answered from the network
        // layer's gauges, which the service cannot see); reaching here means a caller
        // lowered it out of context.
        RequestBody::Health => {
            return Err(ServeError::InvalidRequest {
                reason: "health requests are answered by the serving front-end".to_string(),
            })
        }
        RequestBody::ListModels => ServeRequest::ListModels,
        RequestBody::Evict { handle } => ServeRequest::Evict {
            handle: parse_handle(&handle)?,
        },
    })
}

fn tier_wire_name(tier: CacheTier) -> &'static str {
    match tier {
        CacheTier::Memory => "memory",
        CacheTier::Disk => "disk",
    }
}

fn stats_to_wire(stats: ServiceStats) -> proto::WireStats {
    proto::WireStats {
        hits: stats.cache.hits,
        warm_starts: stats.cache.warm_starts,
        misses: stats.cache.misses,
        evictions: stats.cache.evictions,
        expirations: stats.cache.expirations,
        coalesced_fits: stats.cache.coalesced_fits,
        spills: stats.cache.spills,
        store_errors: stats.cache.store_errors,
        fit_micros: stats.cache.fit_micros,
        em_iterations: stats.cache.em_iterations,
        resident_models: stats.resident_models as u64,
        resident_bytes: stats.resident_bytes,
        store_entries: stats.store_entries,
        store_bytes: stats.store_bytes,
        requests: stats.requests,
        // Filled by `respond_frame`: latency lives in the network layer, not the
        // service.
        latencies: Vec::new(),
    }
}

fn model_info_to_wire(info: ModelInfo) -> proto::WireModelInfo {
    proto::WireModelInfo {
        handle: info.handle.to_hex(),
        tier: tier_wire_name(info.tier).to_string(),
        dim: info.dim.map(|d| d as u64),
        bytes: info.bytes,
    }
}

/// Raise a service response into its wire body.
pub(crate) fn response_to_wire(response: ServeResponse) -> ResponseBody {
    match response {
        ServeResponse::Fitted {
            handle,
            dim,
            served_from,
        } => ResponseBody::Fitted {
            handle: handle.to_hex(),
            dim: dim as u64,
            served_from: served_from.wire_name().to_string(),
        },
        ServeResponse::Embedded {
            matrix,
            served_from,
        } => ResponseBody::Embedded {
            matrix,
            served_from: served_from.wire_name().to_string(),
        },
        ServeResponse::Pushed { handle, dim } => ResponseBody::Pushed {
            handle: handle.to_hex(),
            dim: dim as u64,
        },
        ServeResponse::Snapshot {
            handle,
            snapshot,
            served_from,
        } => ResponseBody::Snapshot {
            handle: handle.to_hex(),
            snapshot,
            served_from: served_from.wire_name().to_string(),
        },
        ServeResponse::Stats(stats) => ResponseBody::Stats(stats_to_wire(stats)),
        ServeResponse::Models(models) => {
            ResponseBody::Models(models.into_iter().map(model_info_to_wire).collect())
        }
        ServeResponse::Evicted { existed } => ResponseBody::Evicted { existed },
    }
}

fn error_body(error: &ServeError) -> ResponseBody {
    ResponseBody::Error {
        code: error.code().to_string(),
        message: error.to_string(),
        retry_after_ms: match error {
            ServeError::Overloaded { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        },
    }
}

/// Parse a wire `served_from` back into the typed provenance (client side).
pub(crate) fn served_from_of(name: &str) -> Result<ServedFrom, crate::client::ClientError> {
    ServedFrom::from_wire_name(name).ok_or_else(|| crate::client::ClientError::Unexpected {
        detail: format!("unknown served_from `{name}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientError, GemClient};
    use gem_core::{FeatureSet, GemColumn, GemConfig, GemModel, MethodRegistry};
    use std::io::Write;

    fn corpus() -> Vec<GemColumn> {
        (0..5)
            .map(|c| {
                GemColumn::new(
                    (0..40)
                        .map(|i| (c * 60) as f64 + (i % 9) as f64 * 2.0)
                        .collect(),
                    format!("col_{c}"),
                )
            })
            .collect()
    }

    fn start_server() -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
        let config = GemConfig::fast();
        let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 8);
        service.register_gem_family(&config);
        let server = GemServer::bind(Arc::new(service), ("127.0.0.1", 0))
            .unwrap()
            .with_workers(4);
        let handle = server.handle().unwrap();
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    #[test]
    fn poisoned_work_queue_recovers_instead_of_wedging() {
        // Regression: a worker panicking while holding the queue mutex used to poison
        // it, so the next `push`/`pop` aborted the reader or executor that touched it —
        // one panicked worker wedged the whole replica. Now both paths recover and the
        // event is counted.
        let counters = Arc::new(ServerCounters::default());
        let metrics = Arc::new(ServerMetrics::new());
        let queue = Arc::new(WorkQueue::new(
            Arc::clone(&counters),
            Arc::clone(&metrics),
            DEFAULT_QUEUE_CAPACITY,
        ));
        {
            let queue = Arc::clone(&queue);
            let _ = std::thread::spawn(move || {
                let _guard = queue.frames.lock();
                panic!("worker dies while holding the queue lock");
            })
            .join();
        }
        assert!(queue.frames.lock().is_err(), "the mutex must be poisoned");

        let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
        let pushed = queue.push(Frame {
            payload: FramePayload::JsonLine(b"{}".to_vec()),
            codec: Codec::Json,
            reply: reply_tx,
            enqueued_at: Instant::now(),
            depth: Arc::new(AtomicU64::new(1)),
        });
        assert!(pushed.is_ok(), "an empty queue admits the frame");
        assert_eq!(metrics.queue_depth(), 1);
        let inputs_closed = AtomicBool::new(false);
        let frame = queue
            .pop(&inputs_closed)
            .expect("the pushed frame survives");
        match &frame.payload {
            FramePayload::JsonLine(line) => assert_eq!(line, b"{}"),
            _ => panic!("expected the JSON line back, got a different payload shape"),
        }
        assert_eq!(metrics.queue_depth(), 0, "the depth gauge tracks the drain");
        assert!(counters.lock_recoveries() >= 1);
        drop(reply_rx);

        // Drained + closed: pop still works on the recovered mutex and retires cleanly.
        inputs_closed.store(true, Ordering::SeqCst);
        assert!(queue.pop(&inputs_closed).is_none());
    }

    #[test]
    fn full_queues_shed_with_typed_overloaded_responses() {
        let counters = Arc::new(ServerCounters::default());
        let metrics = Arc::new(ServerMetrics::new());
        let queue = WorkQueue::new(Arc::clone(&counters), Arc::clone(&metrics), 2);
        let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
        let frame = |id: u64| Frame {
            payload: FramePayload::JsonLine(
                format!("{{\"id\":{id},\"version\":5,\"body\":{{\"type\":\"stats\"}}}}")
                    .into_bytes(),
            ),
            codec: Codec::Json,
            reply: reply_tx.clone(),
            enqueued_at: Instant::now(),
            depth: Arc::new(AtomicU64::new(1)),
        };
        assert!(queue.push(frame(1)).is_ok());
        assert!(queue.push(frame(2)).is_ok());
        assert_eq!(metrics.queue_depth(), 2);

        // The third frame is refused, shed, and answered without ever executing.
        let refused = match queue.push(frame(7)) {
            Err(frame) => frame,
            Ok(()) => panic!("a full queue must refuse the frame"),
        };
        queue.shed(refused);
        assert_eq!(counters.requests_shed(), 1);
        assert_eq!(counters.requests(), 0, "shed work is never executed");
        let bytes = reply_rx.try_recv().expect("the shed response is immediate");
        let line = std::str::from_utf8(&bytes).unwrap();
        let response = proto::decode_response(line).unwrap();
        assert_eq!(
            response.in_reply_to,
            Some(7),
            "correlated via the salvaged id"
        );
        match response.body {
            ResponseBody::Error {
                code,
                message,
                retry_after_ms,
            } => {
                assert_eq!(code, "overloaded");
                assert!(
                    retry_after_ms.is_some(),
                    "shed responses carry a retry hint"
                );
                assert!(message.contains("retry"), "{message}");
            }
            other => panic!("expected an overloaded error, got {other:?}"),
        }

        // A garbage line sheds too, with `in_reply_to: null` (nothing salvageable).
        let garbage = Frame {
            payload: FramePayload::JsonLine(b"\xff\xfe not even utf-8".to_vec()),
            codec: Codec::Json,
            reply: reply_tx.clone(),
            enqueued_at: Instant::now(),
            depth: Arc::new(AtomicU64::new(1)),
        };
        queue.shed(garbage);
        let bytes = reply_rx.try_recv().unwrap();
        let line = std::str::from_utf8(&bytes).unwrap();
        assert_eq!(proto::decode_response(line).unwrap().in_reply_to, None);
    }

    #[test]
    fn fit_embed_round_trip_is_bit_identical_over_tcp() {
        let (server, join) = start_server();
        let mut client = GemClient::connect(server.addr()).unwrap();
        let cols = corpus();
        let config = GemConfig::fast();

        let fitted = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
        assert_eq!(fitted.served_from, ServedFrom::ColdFit);
        let served = client.embed(fitted.handle, &cols).unwrap();
        assert!(served.served_from != ServedFrom::ColdFit);

        // The matrix that crossed the wire equals the in-process fit+transform exactly.
        let direct = GemModel::fit(&cols, &config, FeatureSet::ds())
            .unwrap()
            .transform(&cols)
            .unwrap();
        assert_eq!(served.matrix, direct.matrix);

        // Idempotent fit: same handle, now cache-served.
        let again = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
        assert_eq!(again.handle, fitted.handle);
        assert_eq!(again.served_from, ServedFrom::MemoryCache);

        server.shutdown();
        join.join().unwrap().unwrap();
        assert_eq!(server.counters().connections(), 1);
        assert_eq!(server.counters().requests(), 3);
        assert_eq!(server.counters().protocol_errors(), 0);
        assert!(server.counters().workers_high_water() >= 1);
    }

    #[test]
    fn fit_update_chains_resolve_end_to_end_over_tcp() {
        let (server, join) = start_server();
        let mut client = GemClient::connect(server.addr()).unwrap();
        let cols = corpus();
        let config = GemConfig::fast();
        let growth_a = vec![GemColumn::new(
            (0..40).map(|i| 900.0 + (i % 7) as f64 * 4.0).collect(),
            "grown_a",
        )];
        let growth_b = vec![GemColumn::new(
            (0..40).map(|i| 1500.0 + (i % 5) as f64 * 11.0).collect(),
            "grown_b",
        )];

        // Three steps: fit, grow, grow again — each handle chains off the previous.
        let fitted = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
        let step_1 = client.fit_update(fitted.handle, &growth_a).unwrap();
        let step_2 = client.fit_update(step_1.handle, &growth_b).unwrap();
        assert_ne!(step_1.handle, fitted.handle);
        assert_ne!(step_2.handle, step_1.handle);
        assert_eq!(step_1.served_from, ServedFrom::ColdFit);
        assert_eq!(step_2.served_from, ServedFrom::ColdFit);
        assert_eq!(step_1.dim, fitted.dim);

        // The chained handle embeds the original columns bit-identically to the
        // in-process parent fit: components were frozen, never re-estimated.
        let served = client.embed(step_2.handle, &cols).unwrap();
        let direct = GemModel::fit(&cols, &config, FeatureSet::ds())
            .unwrap()
            .transform(&cols)
            .unwrap();
        assert_eq!(served.matrix, direct.matrix);

        // Replaying the chain is pure cache: same handles, no cold work.
        let replay = client.fit_update(fitted.handle, &growth_a).unwrap();
        assert_eq!(replay.handle, step_1.handle);
        assert_eq!(replay.served_from, ServedFrom::MemoryCache);

        // The fit-cost breakdown crossed the wire: exactly one EM run was paid.
        let stats = client.stats().unwrap();
        assert!(stats.fit_micros > 0);
        assert!(stats.em_iterations > 0);

        server.shutdown();
        join.join().unwrap().unwrap();
        assert_eq!(server.counters().protocol_errors(), 0);
    }

    #[test]
    fn unknown_handles_surface_their_stable_code_over_tcp() {
        let (server, join) = start_server();
        let mut client = GemClient::connect(server.addr()).unwrap();
        let bogus = ModelHandle::from_hex("00000000000000aa-00000000000000bb").unwrap();
        let err = client.embed(bogus, &corpus()).unwrap_err();
        match &err {
            ClientError::Server { code, message, .. } => {
                assert_eq!(code, "unknown_model");
                assert!(
                    message.contains("Fit"),
                    "message names the remedy: {message}"
                );
            }
            other => panic!("expected a server error, got {other:?}"),
        }
        assert_eq!(err.code(), Some("unknown_model"));
        server.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn stats_list_evict_and_embed_corpus_work_over_tcp() {
        let (server, join) = start_server();
        let mut client = GemClient::connect(server.addr()).unwrap();
        let cols = corpus();
        let config = GemConfig::fast();

        // One-shot path (no handle): a Gem variant by registry name.
        let one_shot = client.embed_corpus("Gem (D+S)", &cols, None, None).unwrap();
        assert_eq!(one_shot.matrix.rows(), cols.len());

        let fitted = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
        let models = client.list_models().unwrap();
        assert!(models.iter().any(|m| m.handle == fitted.handle.to_hex()));
        let stats = client.stats().unwrap();
        assert!(stats.resident_models >= 1);
        assert!(stats.requests >= 2);

        assert!(client.evict(fitted.handle).unwrap());
        assert!(
            !client.evict(fitted.handle).unwrap(),
            "second evict is a no-op"
        );
        let err = client.embed(fitted.handle, &cols).unwrap_err();
        assert_eq!(err.code(), Some("unknown_model"));

        server.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_lines_get_protocol_error_responses_not_disconnects() {
        let (server, join) = start_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                b"this is not json\n{\"id\":7,\"version\":99,\"body\":{\"type\":\"stats\"}}\n",
            )
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        // The two error responses may return in either order (shared executor pool);
        // collect both and match on correlation.
        let mut replies = Vec::new();
        let mut line = String::new();
        for _ in 0..2 {
            line.clear();
            reader.read_line(&mut line).unwrap();
            replies.push(gem_proto::decode_response(&line).unwrap());
        }
        let unsalvageable = replies
            .iter()
            .find(|r| r.in_reply_to.is_none())
            .expect("the non-JSON line has no salvageable id");
        assert!(matches!(
            &unsalvageable.body,
            ResponseBody::Error { code, .. } if code == "protocol_error"
        ));
        let salvaged = replies
            .iter()
            .find(|r| r.in_reply_to == Some(7))
            .expect("the id is salvaged from version-mismatched lines");
        assert!(matches!(
            &salvaged.body,
            ResponseBody::Error { code, .. } if code == "version_mismatch"
        ));
        // The connection survived both bad lines: a valid request still answers.
        let mut client = GemClient::connect(server.addr()).unwrap();
        assert!(client.stats().is_ok());
        assert_eq!(server.counters().protocol_errors(), 2);
        server.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn concurrent_clients_share_the_executor_pool() {
        let (server, join) = start_server();
        let addr = server.addr();
        let cols = Arc::new(corpus());
        let config = GemConfig::fast();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let cols = Arc::clone(&cols);
                let config = config.clone();
                std::thread::spawn(move || {
                    let mut client = GemClient::connect(addr).unwrap();
                    let fitted = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
                    client.embed(fitted.handle, &cols).unwrap().matrix
                })
            })
            .collect();
        let matrices: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        for m in &matrices[1..] {
            assert_eq!(m, &matrices[0], "all clients see bit-identical output");
        }
        assert_eq!(server.counters().connections(), 4);
        server.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn connect_negotiates_binary_and_counts_wire_bytes() {
        let (server, join) = start_server();
        let mut client = GemClient::connect(server.addr()).unwrap();
        assert_eq!(client.codec_name(), "binary");
        let cols = corpus();
        let config = GemConfig::fast();
        let fitted = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
        let served = client.embed(fitted.handle, &cols).unwrap();

        // The raw-IEEE-754 path is bit-identical to the in-process fit+transform.
        let direct = GemModel::fit(&cols, &config, FeatureSet::ds())
            .unwrap()
            .transform(&cols)
            .unwrap();
        assert_eq!(served.matrix, direct.matrix);

        // The wire-bytes telemetry saw both directions, and the fairness gauge saw
        // this connection's in-flight frames.
        assert!(server.metrics().wire_bytes_read() > 0);
        assert!(server.metrics().wire_bytes_written() > 0);
        assert!(server.metrics().connection_inflight_peak() >= 1);
        server.shutdown();
        join.join().unwrap().unwrap();
        assert_eq!(server.counters().protocol_errors(), 0);
    }

    #[test]
    fn json_only_servers_downgrade_negotiating_clients_on_the_same_connection() {
        let config = GemConfig::fast();
        let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 8);
        service.register_gem_family(&config);
        let server = GemServer::bind(Arc::new(service), ("127.0.0.1", 0))
            .unwrap()
            .with_workers(2)
            .with_json_only();
        let handle = server.handle().unwrap();
        let join = std::thread::spawn(move || server.run());

        // The hello is answered like any malformed JSON line; the client consumes the
        // decline and keeps working — same connection, JSON codec.
        let mut client = GemClient::connect(handle.addr()).unwrap();
        assert_eq!(client.codec_name(), "json");
        let cols = corpus();
        let fitted = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
        let served = client.embed(fitted.handle, &cols).unwrap();
        let direct = GemModel::fit(&cols, &config, FeatureSet::ds())
            .unwrap()
            .transform(&cols)
            .unwrap();
        assert_eq!(served.matrix, direct.matrix);
        assert_eq!(
            handle.counters().connections(),
            1,
            "the downgrade must not reconnect"
        );
        // The declined hello is the connection's one protocol error.
        assert_eq!(handle.counters().protocol_errors(), 1);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn chunked_fit_handles_match_one_shot_fits_and_in_process_keys() {
        let (server, join) = start_server();
        let cols = corpus();
        let config = GemConfig::fast();

        // A 1 KiB chunk budget (the clamp floor) forces this corpus through the
        // begin/chunk/end upload path.
        assert!(gem_proto::binary::corpus_wire_bytes(&cols) > 1024);
        let mut chunked = GemClient::connect(server.addr())
            .unwrap()
            .with_chunk_bytes(1);
        assert_eq!(chunked.codec_name(), "binary");
        let via_chunks = chunked.fit(&cols, &config, FeatureSet::ds()).unwrap();

        // One-shot over the same wire, and the in-process key derivation, agree.
        let mut one_shot = GemClient::connect(server.addr()).unwrap();
        let direct = one_shot.fit(&cols, &config, FeatureSet::ds()).unwrap();
        assert_eq!(via_chunks.handle, direct.handle);
        assert_eq!(
            via_chunks.handle,
            ModelHandle::from(crate::model_key(&cols, &config, FeatureSet::ds())),
            "the chunked upload fingerprints to the same ModelKey as in-process"
        );
        assert_eq!(direct.served_from, ServedFrom::MemoryCache);

        // The chunked handle serves embeds bit-identically.
        let served = chunked.embed(via_chunks.handle, &cols).unwrap();
        let in_process = GemModel::fit(&cols, &config, FeatureSet::ds())
            .unwrap()
            .transform(&cols)
            .unwrap();
        assert_eq!(served.matrix, in_process.matrix);
        server.shutdown();
        join.join().unwrap().unwrap();
        assert_eq!(server.counters().protocol_errors(), 0);
    }

    #[test]
    fn chunk_sequence_violations_answer_typed_errors_and_spare_the_connection() {
        let (server, join) = start_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(binary::hello_line().as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut accept = String::new();
        reader.read_line(&mut accept).unwrap();
        assert_eq!(binary::parse_accept(&accept), Some(5));

        // A corpus_chunk with no begin_fit before it: a payload-level violation inside
        // valid framing. Payload = correlation header only (has_id=1, id=9) plus a
        // column count of zero.
        let mut payload = vec![1u8];
        payload.extend_from_slice(&9u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        let frame = binary::frame_bytes(binary::KIND_CORPUS_CHUNK, &payload).unwrap();
        stream.write_all(&frame).unwrap();

        let mut assembler = binary::FrameAssembler::new();
        let mut partials = binary::EmbedPartials::new();
        let envelope = loop {
            let mut buf = [0u8; 4096];
            let n = std::io::Read::read(&mut reader, &mut buf).unwrap();
            assert!(n > 0, "server must answer, not hang up");
            assembler.push(&buf[..n]);
            if let Some(frame) = assembler.next_frame().unwrap() {
                if let Some(envelope) =
                    binary::decode_response_frame(&frame, &mut partials).unwrap()
                {
                    break envelope;
                }
            }
        };
        assert_eq!(
            envelope.in_reply_to,
            Some(9),
            "correlated via the chunk's id"
        );
        assert!(matches!(
            &envelope.body,
            ResponseBody::Error { code, .. } if code == "protocol_error"
        ));

        // Framing stayed intact: the same connection still serves real requests.
        drop(stream);
        let mut client = GemClient::connect(server.addr()).unwrap();
        assert!(client.stats().is_ok());
        assert!(server.counters().protocol_errors() >= 1);
        server.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_length_prefixes_close_the_connection_with_a_typed_error() {
        let (server, join) = start_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(binary::hello_line().as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut accept = String::new();
        reader.read_line(&mut accept).unwrap();
        assert_eq!(binary::parse_accept(&accept), Some(5));

        // A length prefix beyond MAX_FRAME_LEN: framing is unrecoverable.
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&(u32::MAX).to_le_bytes());
        bogus.push(binary::KIND_EMBED);
        stream.write_all(&bogus).unwrap();

        let mut assembler = binary::FrameAssembler::new();
        let mut partials = binary::EmbedPartials::new();
        let mut closed = false;
        let mut saw_error = false;
        while !saw_error {
            let mut buf = [0u8; 4096];
            let n = std::io::Read::read(&mut reader, &mut buf).unwrap_or(0);
            if n == 0 {
                closed = true;
                break;
            }
            assembler.push(&buf[..n]);
            while let Ok(Some(frame)) = assembler.next_frame() {
                if let Ok(Some(envelope)) = binary::decode_response_frame(&frame, &mut partials) {
                    assert_eq!(envelope.in_reply_to, None, "nothing is salvageable");
                    assert!(matches!(
                        &envelope.body,
                        ResponseBody::Error { code, .. } if code == "protocol_error"
                    ));
                    saw_error = true;
                }
            }
        }
        assert!(
            saw_error,
            "the framing error must be answered before closing"
        );
        // The server closes its half after the uncorrelated error; the next read
        // reports EOF.
        if !closed {
            let mut buf = [0u8; 64];
            assert_eq!(std::io::Read::read(&mut reader, &mut buf).unwrap_or(0), 0);
        }
        assert!(server.counters().protocol_errors() >= 1);
        server.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_json_lines_answer_a_typed_cap_error_and_keep_the_connection() {
        let (server, join) = start_server();
        let mut client = GemClient::connect_json(server.addr()).unwrap();
        assert_eq!(client.codec_name(), "json");

        // A raw oversized line on a second connection (the client API cannot produce
        // one without a real giant corpus, which would make the test slow).
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut line = String::from("{\"id\":42,\"version\":5,\"padding\":\"");
        line.push_str(&"x".repeat(proto::MAX_JSON_LINE_BYTES));
        line.push_str("\"}\n");
        stream.write_all(line.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let envelope = proto::decode_response(&response).unwrap();
        assert_eq!(envelope.in_reply_to, Some(42), "the id is salvaged");
        match &envelope.body {
            ResponseBody::Error { code, message, .. } => {
                assert_eq!(code, "protocol_error");
                assert!(
                    message.contains("chunked"),
                    "points at the remedy: {message}"
                );
            }
            other => panic!("expected the cap error, got {other:?}"),
        }
        // The connection survives: a well-formed request on the same socket answers.
        stream
            .write_all(b"{\"id\":43,\"version\":5,\"body\":{\"type\":\"stats\"}}\n")
            .unwrap();
        response.clear();
        reader.read_line(&mut response).unwrap();
        assert_eq!(
            proto::decode_response(&response).unwrap().in_reply_to,
            Some(43)
        );
        assert!(client.stats().is_ok());
        server.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn push_and_pull_ship_models_without_the_corpus() {
        let (origin, origin_join) = start_server();
        let (replica, replica_join) = start_server();
        let cols = corpus();
        let config = GemConfig::fast();

        // Fit on the origin, pull its snapshot.
        let mut origin_client = GemClient::connect(origin.addr()).unwrap();
        let fitted = origin_client.fit(&cols, &config, FeatureSet::ds()).unwrap();
        let pulled = origin_client.pull_model(fitted.handle).unwrap();
        assert_eq!(pulled.handle, fitted.handle);

        // Push to a fresh replica that has never seen the corpus; the handle resolves
        // and embeds bit-identically to the origin.
        let mut replica_client = GemClient::connect(replica.addr()).unwrap();
        let pushed = replica_client.push_model(&pulled.snapshot).unwrap();
        assert_eq!(pushed.handle, fitted.handle);
        assert_eq!(pushed.dim, fitted.dim);
        let from_replica = replica_client.embed(fitted.handle, &cols).unwrap();
        let from_origin = origin_client.embed(fitted.handle, &cols).unwrap();
        assert_eq!(from_replica.matrix, from_origin.matrix);

        // Pulling an unknown handle is the typed unknown_model, and a garbage snapshot
        // is a typed invalid_request — never a crash or a silent accept.
        let bogus = ModelHandle::from_hex("00000000000000aa-00000000000000bb").unwrap();
        assert_eq!(
            replica_client.pull_model(bogus).unwrap_err().code(),
            Some("unknown_model")
        );
        let garbage = gem_json::object(vec![("magic", gem_json::string("nope"))]);
        assert_eq!(
            replica_client.push_model(&garbage).unwrap_err().code(),
            Some("invalid_request")
        );

        origin.shutdown();
        replica.shutdown();
        origin_join.join().unwrap().unwrap();
        replica_join.join().unwrap().unwrap();
    }
}
