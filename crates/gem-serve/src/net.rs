//! The socket front-end: [`GemServer`] serves the handle-based protocol over TCP.
//!
//! Framing is newline-delimited `gem-proto` JSON (one [`gem_proto::RequestEnvelope`]
//! per line in, one [`gem_proto::ResponseEnvelope`] per line out), so any language with
//! sockets and JSON can speak to it. The server is deliberately `std::net`-only — one
//! OS thread per connection, the same scoped-thread idiom `gem-parallel` builds on —
//! because the expensive work (EM fits, transforms) is CPU-bound and already fanned out
//! inside [`EmbedService`]; an async reactor would add a dependency without adding
//! throughput here.
//!
//! Operational properties:
//!
//! * **Graceful shutdown** — [`ServerHandle::shutdown`] flips a flag and nudges the
//!   acceptor awake; connection threads notice within their read-timeout tick, finish
//!   the request in flight, and are joined before [`GemServer::run`] returns.
//! * **Request counters** — connections accepted, requests served and protocol errors
//!   are counted on shared atomics ([`ServerCounters`]), readable while running.
//! * **Typed errors end-to-end** — serving failures travel as their stable
//!   [`crate::ServeError::code`]s; malformed lines get `protocol_error` /
//!   `version_mismatch` bodies (with the request id salvaged when possible) instead of
//!   a dropped connection.

use crate::error::ServeError;
use crate::handle::ModelHandle;
use crate::service::{EmbedService, ModelInfo, ServeRequest, ServeResponse, ServiceStats};
use crate::{CacheTier, ServedFrom};
use gem_proto::{self as proto, RequestBody, ResponseBody};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often an idle connection thread wakes to check the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(100);

/// Pause after a failed `accept` so persistent errors (e.g. fd exhaustion) degrade to
/// slow retries instead of a busy spin.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(20);

/// Monotonic counters shared by every connection thread.
#[derive(Debug, Default)]
pub struct ServerCounters {
    connections: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
}

impl ServerCounters {
    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Protocol lines answered so far (including error responses).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Lines that failed to decode (answered with `protocol_error`/`version_mismatch`).
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }
}

/// A remote control for a running [`GemServer`]: address, counters, shutdown.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
}

impl ServerHandle {
    /// The address the server is listening on (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live request counters.
    pub fn counters(&self) -> &ServerCounters {
        &self.counters
    }

    /// Ask the server to stop: no new connections are accepted, in-flight requests
    /// finish, idle connections close within one read-timeout tick. Safe to call more
    /// than once.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The acceptor blocks in `accept`; a throwaway connection wakes it so it can
        // observe the flag without waiting for real traffic.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A TCP server over an [`EmbedService`]. Bind, then [`GemServer::run`] (blocking) or
/// hold the [`ServerHandle`] from [`GemServer::handle`] to stop it from another thread.
#[derive(Debug)]
pub struct GemServer {
    listener: TcpListener,
    service: Arc<EmbedService>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
}

impl GemServer {
    /// Bind `addr` (use port 0 for an ephemeral port; read it back with
    /// [`GemServer::local_addr`]).
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(service: Arc<EmbedService>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(GemServer {
            listener: TcpListener::bind(addr)?,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            counters: Arc::new(ServerCounters::default()),
        })
    }

    /// The bound address (ephemeral port resolved).
    ///
    /// # Errors
    /// Propagates the socket-introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for observing and stopping the server from other threads.
    ///
    /// # Errors
    /// Propagates the socket-introspection failure.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.listener.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
            counters: Arc::clone(&self.counters),
        })
    }

    /// Accept connections until [`ServerHandle::shutdown`] is called, one thread per
    /// connection. Joins every connection thread before returning, so when this returns
    /// no request is still in flight.
    ///
    /// # Errors
    /// Propagates accept failures (transient per-connection errors are skipped).
    pub fn run(self) -> std::io::Result<()> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for incoming in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(stream) => stream,
                // A failed accept (peer vanished mid-handshake, fd exhaustion, …)
                // should not take the server down — but a *persistent* error (EMFILE
                // under a connection flood) would otherwise turn this loop into a
                // 100%-CPU spin, so back off briefly before retrying.
                Err(_) => {
                    std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                    continue;
                }
            };
            self.counters.connections.fetch_add(1, Ordering::Relaxed);
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&self.shutdown);
            let counters = Arc::clone(&self.counters);
            workers.push(std::thread::spawn(move || {
                serve_connection(stream, &service, &shutdown, &counters);
            }));
            workers.retain(|w| !w.is_finished());
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// One connection: read protocol lines, answer each, until EOF or shutdown.
fn serve_connection(
    stream: TcpStream,
    service: &EmbedService,
    shutdown: &AtomicBool,
    counters: &ServerCounters,
) {
    // The read timeout is a shutdown tick, not a deadline: on timeout the partial line
    // is kept and reading resumes, so slow writers lose nothing.
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    // Lines are accumulated as raw bytes, NOT via `read_line`: `read_line`'s built-in
    // UTF-8 validation (a) turns any invalid byte into an error that would drop the
    // connection without a response, and (b) *discards* bytes already consumed from the
    // stream when a read-timeout tick fires mid-multibyte character — a slow writer
    // would silently lose part of a valid request. `read_until` keeps every byte across
    // ticks; UTF-8 is validated here, where a failure can be answered properly.
    let mut line: Vec<u8> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                // Invalid UTF-8 is *rejected*, not lossily replaced: replacement
                // characters inside a JSON string would parse fine and silently mutate
                // a header that participates in the corpus fingerprint.
                let response = match std::str::from_utf8(&line) {
                    Ok(text) if text.trim().is_empty() => {
                        line.clear();
                        continue;
                    }
                    Ok(text) => {
                        counters.requests.fetch_add(1, Ordering::Relaxed);
                        respond(service, text, counters)
                    }
                    Err(_) => {
                        counters.requests.fetch_add(1, Ordering::Relaxed);
                        counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        proto::encode_response(&proto::ResponseEnvelope::new(
                            0,
                            ResponseBody::Error {
                                code: "protocol_error".to_string(),
                                message: "request line is not valid UTF-8".to_string(),
                            },
                        ))
                    }
                };
                if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
                    return;
                }
                // A line without a trailing newline means EOF-mid-line; it was answered
                // best-effort above, and the next read will report EOF.
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // shutdown tick; keep any partial line (bytes, not chars)
            }
            Err(_) => return,
        }
    }
}

/// Decode, execute and encode one protocol line. Never panics on foreign input: every
/// failure becomes an error response body with a stable code.
fn respond(service: &EmbedService, line: &str, counters: &ServerCounters) -> String {
    let envelope = match proto::decode_request(line) {
        Ok(envelope) => envelope,
        Err(error) => {
            counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return proto::encode_response(&proto::ResponseEnvelope::new(
                proto::salvage_request_id(line),
                ResponseBody::Error {
                    code: error.code().to_string(),
                    message: error.to_string(),
                },
            ));
        }
    };
    let body = match wire_to_request(envelope.body) {
        Ok(request) => match service.serve_one(request) {
            Ok(response) => response_to_wire(response),
            Err(error) => error_body(&error),
        },
        Err(error) => error_body(&error),
    };
    proto::encode_response(&proto::ResponseEnvelope::new(envelope.id, body))
}

fn parse_handle(text: &str) -> Result<ModelHandle, ServeError> {
    ModelHandle::parse(text).map_err(|reason| ServeError::InvalidRequest { reason })
}

/// Lower a wire request body into the service's typed request.
pub(crate) fn wire_to_request(body: RequestBody) -> Result<ServeRequest, ServeError> {
    Ok(match body {
        RequestBody::Fit {
            corpus,
            config,
            features,
            composition,
        } => ServeRequest::Fit {
            corpus: Arc::new(corpus),
            config,
            features,
            composition,
        },
        RequestBody::Embed { handle, queries } => ServeRequest::Embed {
            handle: parse_handle(&handle)?,
            queries,
        },
        RequestBody::EmbedCorpus {
            method,
            corpus,
            queries,
            labels,
        } => ServeRequest::EmbedCorpus {
            method,
            corpus: Arc::new(corpus),
            queries,
            labels,
        },
        RequestBody::Stats => ServeRequest::Stats,
        RequestBody::ListModels => ServeRequest::ListModels,
        RequestBody::Evict { handle } => ServeRequest::Evict {
            handle: parse_handle(&handle)?,
        },
    })
}

fn tier_wire_name(tier: CacheTier) -> &'static str {
    match tier {
        CacheTier::Memory => "memory",
        CacheTier::Disk => "disk",
    }
}

fn stats_to_wire(stats: ServiceStats) -> proto::WireStats {
    proto::WireStats {
        hits: stats.cache.hits,
        warm_starts: stats.cache.warm_starts,
        misses: stats.cache.misses,
        evictions: stats.cache.evictions,
        expirations: stats.cache.expirations,
        spills: stats.cache.spills,
        store_errors: stats.cache.store_errors,
        resident_models: stats.resident_models as u64,
        resident_bytes: stats.resident_bytes,
        store_entries: stats.store_entries,
        store_bytes: stats.store_bytes,
        requests: stats.requests,
    }
}

fn model_info_to_wire(info: ModelInfo) -> proto::WireModelInfo {
    proto::WireModelInfo {
        handle: info.handle.to_hex(),
        tier: tier_wire_name(info.tier).to_string(),
        dim: info.dim.map(|d| d as u64),
        bytes: info.bytes,
    }
}

/// Raise a service response into its wire body.
pub(crate) fn response_to_wire(response: ServeResponse) -> ResponseBody {
    match response {
        ServeResponse::Fitted {
            handle,
            dim,
            served_from,
        } => ResponseBody::Fitted {
            handle: handle.to_hex(),
            dim: dim as u64,
            served_from: served_from.wire_name().to_string(),
        },
        ServeResponse::Embedded {
            matrix,
            served_from,
        } => ResponseBody::Embedded {
            matrix,
            served_from: served_from.wire_name().to_string(),
        },
        ServeResponse::Stats(stats) => ResponseBody::Stats(stats_to_wire(stats)),
        ServeResponse::Models(models) => {
            ResponseBody::Models(models.into_iter().map(model_info_to_wire).collect())
        }
        ServeResponse::Evicted { existed } => ResponseBody::Evicted { existed },
    }
}

fn error_body(error: &ServeError) -> ResponseBody {
    ResponseBody::Error {
        code: error.code().to_string(),
        message: error.to_string(),
    }
}

/// Parse a wire `served_from` back into the typed provenance (client side).
pub(crate) fn served_from_of(name: &str) -> Result<ServedFrom, crate::client::ClientError> {
    ServedFrom::from_wire_name(name).ok_or_else(|| crate::client::ClientError::Unexpected {
        detail: format!("unknown served_from `{name}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientError, GemClient};
    use gem_core::{FeatureSet, GemColumn, GemConfig, GemModel, MethodRegistry};

    fn corpus() -> Vec<GemColumn> {
        (0..5)
            .map(|c| {
                GemColumn::new(
                    (0..40)
                        .map(|i| (c * 60) as f64 + (i % 9) as f64 * 2.0)
                        .collect(),
                    format!("col_{c}"),
                )
            })
            .collect()
    }

    fn start_server() -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
        let config = GemConfig::fast();
        let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 8);
        service.register_gem_family(&config);
        let server = GemServer::bind(Arc::new(service), ("127.0.0.1", 0)).unwrap();
        let handle = server.handle().unwrap();
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    #[test]
    fn fit_embed_round_trip_is_bit_identical_over_tcp() {
        let (server, join) = start_server();
        let mut client = GemClient::connect(server.addr()).unwrap();
        let cols = corpus();
        let config = GemConfig::fast();

        let fitted = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
        assert_eq!(fitted.served_from, ServedFrom::ColdFit);
        let served = client.embed(fitted.handle, &cols).unwrap();
        assert!(served.served_from != ServedFrom::ColdFit);

        // The matrix that crossed the wire equals the in-process fit+transform exactly.
        let direct = GemModel::fit(&cols, &config, FeatureSet::ds())
            .unwrap()
            .transform(&cols)
            .unwrap();
        assert_eq!(served.matrix, direct.matrix);

        // Idempotent fit: same handle, now cache-served.
        let again = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
        assert_eq!(again.handle, fitted.handle);
        assert_eq!(again.served_from, ServedFrom::MemoryCache);

        server.shutdown();
        join.join().unwrap().unwrap();
        assert_eq!(server.counters().connections(), 1);
        assert_eq!(server.counters().requests(), 3);
        assert_eq!(server.counters().protocol_errors(), 0);
    }

    #[test]
    fn unknown_handles_surface_their_stable_code_over_tcp() {
        let (server, join) = start_server();
        let mut client = GemClient::connect(server.addr()).unwrap();
        let bogus = ModelHandle::from_hex("00000000000000aa-00000000000000bb").unwrap();
        let err = client.embed(bogus, &corpus()).unwrap_err();
        match &err {
            ClientError::Server { code, message } => {
                assert_eq!(code, "unknown_model");
                assert!(
                    message.contains("Fit"),
                    "message names the remedy: {message}"
                );
            }
            other => panic!("expected a server error, got {other:?}"),
        }
        assert_eq!(err.code(), Some("unknown_model"));
        server.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn stats_list_evict_and_embed_corpus_work_over_tcp() {
        let (server, join) = start_server();
        let mut client = GemClient::connect(server.addr()).unwrap();
        let cols = corpus();
        let config = GemConfig::fast();

        // One-shot path (no handle): a Gem variant by registry name.
        let one_shot = client.embed_corpus("Gem (D+S)", &cols, None, None).unwrap();
        assert_eq!(one_shot.matrix.rows(), cols.len());

        let fitted = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
        let models = client.list_models().unwrap();
        assert!(models.iter().any(|m| m.handle == fitted.handle.to_hex()));
        let stats = client.stats().unwrap();
        assert!(stats.resident_models >= 1);
        assert!(stats.requests >= 2);

        assert!(client.evict(fitted.handle).unwrap());
        assert!(
            !client.evict(fitted.handle).unwrap(),
            "second evict is a no-op"
        );
        let err = client.embed(fitted.handle, &cols).unwrap_err();
        assert_eq!(err.code(), Some("unknown_model"));

        server.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_lines_get_protocol_error_responses_not_disconnects() {
        let (server, join) = start_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                b"this is not json\n{\"id\":7,\"version\":99,\"body\":{\"type\":\"stats\"}}\n",
            )
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let first = gem_proto::decode_response(&line).unwrap();
        assert_eq!(first.id, 0, "unsalvageable id defaults to 0");
        assert!(
            matches!(&first.body, ResponseBody::Error { code, .. } if code == "protocol_error")
        );
        line.clear();
        reader.read_line(&mut line).unwrap();
        let second = gem_proto::decode_response(&line).unwrap();
        assert_eq!(second.id, 7, "id is salvaged from version-mismatched lines");
        assert!(
            matches!(&second.body, ResponseBody::Error { code, .. } if code == "version_mismatch")
        );
        // The connection survived both bad lines: a valid request still answers.
        let mut client = GemClient::connect(server.addr()).unwrap();
        assert!(client.stats().is_ok());
        assert_eq!(server.counters().protocol_errors(), 2);
        server.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn concurrent_clients_are_served_on_separate_threads() {
        let (server, join) = start_server();
        let addr = server.addr();
        let cols = Arc::new(corpus());
        let config = GemConfig::fast();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let cols = Arc::clone(&cols);
                let config = config.clone();
                std::thread::spawn(move || {
                    let mut client = GemClient::connect(addr).unwrap();
                    let fitted = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
                    client.embed(fitted.handle, &cols).unwrap().matrix
                })
            })
            .collect();
        let matrices: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        for m in &matrices[1..] {
            assert_eq!(m, &matrices[0], "all clients see bit-identical output");
        }
        assert_eq!(server.counters().connections(), 4);
        server.shutdown();
        join.join().unwrap().unwrap();
    }
}
