//! Codec-agnostic socket plumbing shared by every connection: the byte-counting
//! response writer and the binary-frame read pump.
//!
//! Both codecs produce **exact wire blobs** upstream of this module (JSON senders
//! include their trailing `\n`; binary senders produce complete frames), so the writer
//! here never re-frames anything — it writes what it is handed, coalescing
//! already-completed responses into one flush so streamed embed rows and pipelined
//! responses ride a single TCP push (the sockets run `TCP_NODELAY`, so every flush is
//! a segment on the wire).
//!
//! This module is inside the lint gate's wire scope (L3 panic-free, L5 bit-exact):
//! nothing here may panic on foreign bytes, and no float ever passes through a lossy
//! cast or formatting.

use crate::metrics::ServerMetrics;
use gem_proto::binary::FrameAssembler;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc;

/// What one pump step observed on the socket.
pub(crate) enum ReadStep {
    /// Bytes arrived and were pushed into the assembler.
    Bytes,
    /// The read timed out (the shutdown-check tick) — nothing was lost.
    Tick,
    /// The peer closed the stream.
    Eof,
    /// The read failed for good (connection reset, …).
    Failed,
}

/// Pull whatever the socket has buffered into the frame assembler, counting the bytes
/// into the wire-read telemetry. A read-timeout tick loses nothing: the assembler
/// keeps partial frames across calls.
pub(crate) fn pump_frames(
    reader: &mut BufReader<TcpStream>,
    assembler: &mut FrameAssembler,
    metrics: &ServerMetrics,
) -> ReadStep {
    match reader.fill_buf() {
        Ok([]) => ReadStep::Eof,
        Ok(bytes) => {
            let read = bytes.len();
            assembler.push(bytes);
            reader.consume(read);
            metrics.count_wire_read(read as u64);
            ReadStep::Bytes
        }
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            ReadStep::Tick
        }
        Err(_) => ReadStep::Failed,
    }
}

/// One connection's writer loop: write completed responses in the order executors
/// finish them, counting every byte into the wire-written telemetry. Exits when every
/// sender is gone or on the first write failure (the peer vanished). Responses already
/// waiting in the channel are coalesced into one flush.
pub(crate) fn write_responses(
    mut stream: TcpStream,
    responses: &mpsc::Receiver<Vec<u8>>,
    metrics: &ServerMetrics,
) {
    for response in responses {
        if stream.write_all(&response).is_err() {
            return;
        }
        let mut written = response.len() as u64;
        while let Ok(next) = responses.try_recv() {
            if stream.write_all(&next).is_err() {
                return;
            }
            written = written.saturating_add(next.len() as u64);
        }
        metrics.count_wire_written(written);
        if stream.flush().is_err() {
            return;
        }
    }
}
