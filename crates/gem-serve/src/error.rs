//! The serving error taxonomy.
//!
//! Every way a serving request can fail is a typed [`ServeError`] variant with a
//! **stable machine-readable code** ([`ServeError::code`]) and a self-explanatory
//! message that names the remedy, not just the failure. The codes are part of the wire
//! protocol (`gem-proto` carries them verbatim in error response bodies), so clients
//! branch on `code()` — e.g. `unknown_model` ⇒ re-`Fit` and retry — instead of parsing
//! prose, and the prose can improve without breaking anyone.

use crate::handle::ModelHandle;
use gem_core::GemError;
use std::fmt;

/// A failed serving request. See [`ServeError::code`] for the stable code taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// An `Embed` named a handle that resolves in neither cache tier. The service never
    /// refits implicitly (a handle carries no corpus): the client must `Fit` first.
    UnknownModel {
        /// The handle that failed to resolve.
        handle: ModelHandle,
    },
    /// An `EmbedCorpus` named a method the registry does not know.
    UnknownMethod {
        /// The unknown method name.
        method: String,
    },
    /// The request was structurally invalid (malformed handle, missing labels, label
    /// count mismatch, …) — re-sending it unchanged can never succeed.
    InvalidRequest {
        /// Why the request was rejected.
        reason: String,
    },
    /// Fitting the model failed (empty corpus, empty feature set, EM failure, …).
    Fit(GemError),
    /// The model resolved but transforming the query columns failed.
    Transform(GemError),
    /// The store tier failed during an operation that needed it (listing models).
    Store {
        /// The underlying store error.
        message: String,
    },
    /// The work queue was full when the request arrived, so it was shed at admission
    /// instead of stalling every connection behind an unbounded backlog. The request
    /// was **not** executed; retrying after the hint is expected to succeed once the
    /// queue drains.
    Overloaded {
        /// Frames already waiting when this one was shed.
        queue_depth: u64,
        /// Suggested client backoff before retrying, milliseconds.
        retry_after_ms: u64,
    },
}

impl ServeError {
    /// Every stable error code, in declaration order — the protocol's error taxonomy.
    pub const CODES: [&'static str; 7] = [
        "unknown_model",
        "unknown_method",
        "invalid_request",
        "fit_failed",
        "transform_failed",
        "store_error",
        "overloaded",
    ];

    /// The stable machine-readable code of this error. Codes never change meaning;
    /// clients branch on them (`unknown_model` ⇒ `Fit` then retry).
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::UnknownModel { .. } => "unknown_model",
            ServeError::UnknownMethod { .. } => "unknown_method",
            ServeError::InvalidRequest { .. } => "invalid_request",
            ServeError::Fit(_) => "fit_failed",
            ServeError::Transform(_) => "transform_failed",
            ServeError::Store { .. } => "store_error",
            ServeError::Overloaded { .. } => "overloaded",
        }
    }

    /// Classify a method-layer [`GemError`]: label problems are the *request's* fault
    /// (retrying unchanged cannot help), everything else is a pipeline failure.
    pub(crate) fn from_method_error(error: GemError) -> Self {
        match error {
            GemError::MissingLabels(_) | GemError::LabelCountMismatch { .. } => {
                ServeError::InvalidRequest {
                    reason: error.to_string(),
                }
            }
            other => ServeError::Fit(other),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel { handle } => write!(
                f,
                "no model for handle {handle}: it was never fitted here, or was evicted \
                 — send a Fit request for the corpus first (handles are resolved, never \
                 refitted implicitly)"
            ),
            ServeError::UnknownMethod { method } => {
                write!(
                    f,
                    "no method named `{method}` is registered with this service"
                )
            }
            ServeError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            ServeError::Fit(e) => write!(f, "fitting the model failed: {e}"),
            ServeError::Transform(e) => write!(f, "transforming the queries failed: {e}"),
            ServeError::Store { message } => write!(f, "model store operation failed: {message}"),
            ServeError::Overloaded {
                queue_depth,
                retry_after_ms,
            } => write!(
                f,
                "work queue is full ({queue_depth} requests waiting): this request was \
                 shed without being executed — retry after {retry_after_ms} ms or send \
                 it to another replica"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::ModelKey;

    #[test]
    fn every_variant_has_a_distinct_stable_code() {
        let handle = ModelHandle::from(ModelKey {
            corpus: 1,
            config: 2,
        });
        let variants = [
            ServeError::UnknownModel { handle },
            ServeError::UnknownMethod { method: "x".into() },
            ServeError::InvalidRequest { reason: "r".into() },
            ServeError::Fit(GemError::NoValues),
            ServeError::Transform(GemError::NoColumns),
            ServeError::Store {
                message: "m".into(),
            },
            ServeError::Overloaded {
                queue_depth: 64,
                retry_after_ms: 100,
            },
        ];
        let codes: Vec<&str> = variants.iter().map(|v| v.code()).collect();
        assert_eq!(codes, ServeError::CODES);
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Messages are self-explanatory: the unknown-model one names the remedy.
        assert!(variants[0].to_string().contains("Fit"));
    }

    #[test]
    fn label_errors_classify_as_invalid_requests() {
        assert_eq!(
            ServeError::from_method_error(GemError::MissingLabels("Sherlock".into())).code(),
            "invalid_request"
        );
        assert_eq!(
            ServeError::from_method_error(GemError::NoValues).code(),
            "fit_failed"
        );
    }
}
