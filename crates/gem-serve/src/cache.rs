//! The fingerprint-keyed, bounded, two-tier model cache.
//!
//! Fitting a [`GemModel`] is the expensive step of the pipeline (the EM fit over the
//! stacked corpus); transforming against a fitted model is cheap. A serving system
//! therefore caches fitted models keyed by [`ModelKey`] — the corpus fingerprint plus
//! the configuration hash.
//!
//! The cache is bounded along three axes ([`CachePolicy`]): an entry-count capacity, an
//! optional TTL (entries older than the TTL are expired on the next access), and an
//! optional approximate-memory bound computed from [`GemModel::approx_mem_bytes`].
//!
//! Attaching a [`ModelStore`] turns it into a two-tier cache:
//!
//! * models evicted for the capacity or memory bound **spill** to the store (a disk
//!   write instead of losing the fit), and
//! * a lookup that misses memory **warm-starts** from the store — a deserialisation
//!   (~ms) instead of an EM re-fit (~90ms on the bench corpus), with bit-identical
//!   transform output.
//!
//! TTL-expired entries are *not* spilled: expiry says the entry has outlived its
//! freshness budget, so writing it out would just move stale data to disk. Store I/O
//! failures never fail a lookup — they count in [`CacheStats::store_errors`] and the
//! cache falls back to the cold path, keeping a broken disk from taking serving down.
//!
//! **Spills are deferred, not written in place.** An eviction only *records* that the
//! model should be written ([`ModelCache::take_pending_spills`] hands the work out as
//! [`SpillTask`]s); whoever owns the cache executes the tasks wherever it likes — the
//! [`crate::BatchEngine`] runs them *after releasing its cache lock*, so a slow or hung
//! disk never blocks concurrent cache hits. The standalone conveniences
//! ([`ModelCache::get`], [`ModelCache::get_or_fit`], [`ModelCache::flush_spills`])
//! execute pending spills synchronously, preserving the simple single-owner behaviour.
//! Spill outcomes are counted through atomics shared between the cache and its tasks, so
//! off-lock completions are never lost from [`CacheStats`].

use crate::fingerprint::{model_key, ModelKey};
use gem_core::{FeatureSet, GemColumn, GemConfig, GemError, GemModel};
use gem_store::ModelStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spill-path counters plus the per-key eviction generations, shared between the cache
/// and every in-flight [`SpillTask`] so completions recorded off-lock are never lost —
/// and so an explicit [`ModelCache::evict`] can invalidate tasks that are already out
/// of the cache's hands.
#[derive(Debug, Default)]
struct SpillCounters {
    spills: AtomicU64,
    store_errors: AtomicU64,
    /// Per-key eviction generation, bumped by every explicit eviction of that key. A
    /// [`SpillTask`] records its key's generation at creation and refuses to leave a
    /// snapshot behind once it has moved: without this, an `Evict` racing an in-flight
    /// spill would have the spill re-write the snapshot the eviction just deleted,
    /// resurrecting the handle. Cancellation is per-key so evicting one model never
    /// discards in-flight spills of unrelated ones. (The map grows by one small entry
    /// per distinct explicitly-evicted key — operator actions, negligible next to the
    /// models themselves — and is never consulted under the cache's own lock.)
    evict_generations: std::sync::Mutex<std::collections::HashMap<ModelKey, u64>>,
    /// Models whose spill has been handed out but not yet completed. Lookups consult
    /// this map after missing the resident entries, so a policy-evicted model never
    /// becomes transiently unresolvable while its (possibly slow) store write is in
    /// flight — the resolvability guarantee of the old write-under-the-lock design,
    /// kept without the lock.
    in_flight_spills: std::sync::Mutex<std::collections::HashMap<ModelKey, Arc<GemModel>>>,
}

impl SpillCounters {
    fn generation_of(&self, key: ModelKey) -> u64 {
        crate::sync::lock_or_recover(&self.evict_generations)
            .get(&key)
            .copied()
            .unwrap_or(0)
    }

    fn bump_generation(&self, key: ModelKey) {
        *crate::sync::lock_or_recover(&self.evict_generations)
            .entry(key)
            .or_insert(0) += 1;
    }

    fn in_flight(&self, key: ModelKey) -> Option<Arc<GemModel>> {
        crate::sync::lock_or_recover(&self.in_flight_spills)
            .get(&key)
            .cloned()
    }

    fn register_in_flight(&self, key: ModelKey, model: Arc<GemModel>) {
        crate::sync::lock_or_recover(&self.in_flight_spills).insert(key, model);
    }

    fn clear_in_flight(&self, key: ModelKey) {
        crate::sync::lock_or_recover(&self.in_flight_spills).remove(&key);
    }
}

/// One deferred store write: a model evicted from memory that should be persisted to the
/// store tier. Produced by [`ModelCache::take_pending_spills`]; self-contained (it owns
/// the model handle, the store handle and the stat counters), so it can be executed on
/// any thread without touching — or locking — the cache again.
#[derive(Debug)]
pub struct SpillTask {
    key: ModelKey,
    model: Arc<GemModel>,
    store: Arc<ModelStore>,
    counters: Arc<SpillCounters>,
    /// The key's eviction generation this task was created under (see
    /// `SpillCounters::evict_generations`).
    generation: u64,
}

impl SpillTask {
    /// The key of the model this task would persist.
    pub fn key(&self) -> ModelKey {
        self.key
    }

    fn cancelled(&self) -> bool {
        self.counters.generation_of(self.key) != self.generation
    }

    /// Write the snapshot (skipping keys already on disk — the fit is deterministic in
    /// (corpus, config), so an existing snapshot is already identical) and record the
    /// outcome in the owning cache's [`CacheStats`]. Returns whether a write happened
    /// and survived.
    ///
    /// Tasks outlive the cache lock, so an explicit [`ModelCache::evict`] can race a
    /// task that is already in flight. Eviction bumps the key's generation *before*
    /// touching the store; a task from an older generation skips the write — and if the
    /// generation moved while the write was happening, deletes what it just wrote — so
    /// "evict returned ⇒ the handle stops resolving" holds even mid-spill. Cancellation
    /// is per-key: evicting one model never discards in-flight spills of others.
    pub fn execute(self) -> bool {
        let written = self.write();
        // However the write went, the model is no longer "in flight": it is now either
        // on disk, resident again (a lookup re-promoted it), or deliberately gone.
        self.counters.clear_in_flight(self.key);
        written
    }

    fn write(&self) -> bool {
        if self.cancelled() || self.store.contains(self.key) {
            return false;
        }
        match self.store.save(self.key, &self.model) {
            Ok(_) => {
                if self.cancelled() {
                    // An evict of this key landed between our pre-check and the write
                    // completing; it already deleted the old snapshot, so delete ours.
                    let _ = self.store.remove(self.key);
                    return false;
                }
                self.counters.spills.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.counters.store_errors.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }
}

/// The store-tier half of an explicit eviction: the snapshot delete, packaged so the
/// caller can run it *after* releasing whatever lock guards the cache (symmetric with
/// [`SpillTask`] — no store I/O under the lock). Returns whether a snapshot existed;
/// delete failures count as store errors and report the snapshot as still existing.
#[derive(Debug)]
pub struct EvictTask {
    key: ModelKey,
    store: Arc<ModelStore>,
    counters: Arc<SpillCounters>,
}

impl EvictTask {
    /// Delete the snapshot (if any). See the type docs for semantics.
    pub fn execute(self) -> bool {
        match self.store.remove(self.key) {
            Ok(removed) => removed,
            Err(_) => {
                self.counters.store_errors.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
    }
}

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from resident memory.
    pub hits: u64,
    /// Lookups served by rehydrating a spilled model from the attached store.
    pub warm_starts: u64,
    /// Lookups that found the model in neither tier.
    pub misses: u64,
    /// Entries evicted to respect the capacity or memory bound.
    pub evictions: u64,
    /// Entries dropped because they outlived the TTL.
    pub expirations: u64,
    /// Duplicate in-flight fits coalesced onto another request's computation. The cache
    /// itself never fits, so this stays zero here; [`crate::BatchEngine`] — which owns
    /// the single-flight registry — fills it in when reporting merged stats.
    pub coalesced_fits: u64,
    /// Evicted entries successfully written to the attached store.
    pub spills: u64,
    /// Store reads or writes that failed (the lookup then proceeded as a miss).
    pub store_errors: u64,
    /// Total microseconds spent inside cold-fit EM runs. Like `coalesced_fits` this is
    /// engine-owned — the cache itself never fits, so it stays zero here and
    /// [`crate::BatchEngine`] fills it in when reporting merged stats. Cache hits, disk
    /// warm starts and incremental `fit_update`s add nothing: the counter is exactly
    /// the time the fused EM kernels ran.
    pub fit_micros: u64,
    /// Total EM iterations across those cold fits' winning restarts (engine-owned,
    /// like `fit_micros`). `fit_micros / em_iterations` approximates the per-iteration
    /// kernel cost a deployment actually pays.
    pub em_iterations: u64,
}

/// Which tier satisfied a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The model was resident in memory.
    Memory,
    /// The model was rehydrated from the attached on-disk store.
    Disk,
}

/// Eviction policy of a [`ModelCache`]. `capacity` always applies; the TTL and memory
/// bounds are opt-in.
#[derive(Debug, Clone, Copy)]
pub struct CachePolicy {
    /// Maximum number of resident models.
    pub capacity: usize,
    /// Entries older than this are expired (checked on every access). `None` disables.
    pub ttl: Option<Duration>,
    /// Approximate resident-memory bound over [`GemModel::approx_mem_bytes`]. When
    /// exceeded, least-recently-used entries are evicted — but the most recently used
    /// entry always stays, so a single over-budget model still serves. `None` disables.
    pub max_bytes: Option<u64>,
}

impl CachePolicy {
    /// Capacity-only policy (the PR 2 behaviour).
    pub fn with_capacity(capacity: usize) -> Self {
        CachePolicy {
            capacity,
            ttl: None,
            max_bytes: None,
        }
    }

    /// Builder-style TTL bound.
    pub fn ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Builder-style approximate-memory bound.
    pub fn max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }
}

#[derive(Debug)]
struct Entry {
    key: ModelKey,
    model: Arc<GemModel>,
    inserted_at: Instant,
    bytes: u64,
}

/// A bounded LRU cache of fitted models, optionally backed by an on-disk store tier.
///
/// Models are stored behind [`Arc`] so a cache hit hands out a shared handle: transforms
/// can proceed on many threads while the cache itself is only locked for the (cheap)
/// lookup. The entry list is kept in recency order — front is most recently used — which
/// for serving-sized capacities (tens of models) makes the linear scan cheaper than a
/// hash map plus intrusive list.
#[derive(Debug)]
pub struct ModelCache {
    policy: CachePolicy,
    /// Most recently used first.
    entries: Vec<Entry>,
    store: Option<Arc<ModelStore>>,
    stats: CacheStats,
    /// Evicted models awaiting a store write (see [`ModelCache::take_pending_spills`]).
    pending_spills: Vec<(ModelKey, Arc<GemModel>)>,
    spill_counters: Arc<SpillCounters>,
}

impl ModelCache {
    /// Create a capacity-bounded cache holding at most `capacity` fitted models.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(CachePolicy::with_capacity(capacity))
    }

    /// Create a cache with a full eviction policy.
    ///
    /// # Panics
    /// Panics when `policy.capacity` is zero.
    pub fn with_policy(policy: CachePolicy) -> Self {
        assert!(policy.capacity > 0, "model cache capacity must be positive");
        ModelCache {
            policy,
            entries: Vec::new(),
            store: None,
            stats: CacheStats::default(),
            pending_spills: Vec::new(),
            spill_counters: Arc::new(SpillCounters::default()),
        }
    }

    /// Attach an on-disk store as the second tier: capacity/memory evictions spill to
    /// it and lookups that miss memory warm-start from it.
    pub fn with_store(mut self, store: Arc<ModelStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached store tier, if any.
    pub fn store(&self) -> Option<&Arc<ModelStore>> {
        self.store.as_ref()
    }

    /// Drop entries that outlived the TTL. Called on every access so expiry needs no
    /// background thread; expired entries are not spilled (they are stale by policy).
    fn expire(&mut self) {
        let Some(ttl) = self.policy.ttl else {
            return;
        };
        let before = self.entries.len();
        self.entries.retain(|e| e.inserted_at.elapsed() < ttl);
        self.stats.expirations += (before - self.entries.len()) as u64;
    }

    fn resident_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Evict from the LRU end until the capacity and memory bounds hold, queueing each
    /// eviction for a (deferred) spill to the store tier. The memory bound never evicts
    /// the final entry: a single model larger than the budget must still be servable.
    fn enforce_bounds(&mut self) {
        while self.entries.len() > self.policy.capacity
            || (self.entries.len() > 1
                && self
                    .policy
                    .max_bytes
                    .is_some_and(|max| self.resident_bytes() > max))
        {
            let evicted = self.entries.pop().expect("loop guard ensures non-empty");
            self.stats.evictions += 1;
            if self.store.is_some() {
                self.pending_spills.push((evicted.key, evicted.model));
            }
        }
    }

    /// Hand out the queued store writes as self-contained [`SpillTask`]s. Callers that
    /// guard the cache with a lock (the [`crate::BatchEngine`]) call this *inside* the
    /// critical section and execute the tasks *after* releasing it, so store I/O —
    /// including the serialisation of the snapshot — happens off-lock and a slow disk
    /// never blocks concurrent lookups. Task outcomes flow back into [`CacheStats`]
    /// through shared atomic counters, whenever and wherever the tasks run.
    pub fn take_pending_spills(&mut self) -> Vec<SpillTask> {
        if self.pending_spills.is_empty() {
            return Vec::new();
        }
        let store = self
            .store
            .as_ref()
            .expect("spills are only queued when a store is attached");
        self.pending_spills
            .drain(..)
            .map(|(key, model)| {
                // While the task is in flight the model stays resolvable through the
                // shared in-flight map (cleared by SpillTask::execute).
                self.spill_counters
                    .register_in_flight(key, Arc::clone(&model));
                SpillTask {
                    key,
                    model,
                    store: Arc::clone(store),
                    counters: Arc::clone(&self.spill_counters),
                    generation: self.spill_counters.generation_of(key),
                }
            })
            .collect()
    }

    /// Execute every queued spill synchronously — the single-owner convenience.
    /// ([`ModelCache::get`] and [`ModelCache::get_or_fit`] call this implicitly; callers
    /// sharing the cache behind a lock should prefer [`ModelCache::take_pending_spills`]
    /// and run the tasks off-lock.)
    pub fn flush_spills(&mut self) {
        for task in self.take_pending_spills() {
            task.execute();
        }
    }

    /// Look up a model, marking it most recently used on a hit and reporting which tier
    /// satisfied the lookup. A miss on the resident entries consults, in order:
    ///
    /// 1. the **spill pipeline** — models evicted but whose store write is still queued
    ///    or in flight are re-promoted to resident and served as [`CacheTier::Memory`]
    ///    (without this, deferring spills would make a handle transiently unresolvable
    ///    for exactly as long as the disk is slow — the case deferral exists for);
    /// 2. the **store tier** (when attached) — a rehydrated model is inserted as most
    ///    recently used and returned as [`CacheTier::Disk`]. Store read failures count
    ///    as [`CacheStats::store_errors`] and degrade to a miss; a snapshot rejected as
    ///    *corrupt* is additionally deleted, so the next eviction of a freshly fitted
    ///    model re-writes a good one (without the delete, the spill's existence check
    ///    would preserve the bad file forever). Version mismatches are kept — they may
    ///    belong to a newer deployment sharing the store.
    pub fn get_with_tier(&mut self, key: ModelKey) -> Option<(Arc<GemModel>, CacheTier)> {
        self.expire();
        if let Some(pos) = self.entries.iter().position(|e| e.key == key) {
            self.stats.hits += 1;
            let entry = self.entries.remove(pos);
            let model = Arc::clone(&entry.model);
            self.entries.insert(0, entry);
            return Some((model, CacheTier::Memory));
        }
        // Evicted but not yet written: still in this cache's queue, or in a task some
        // thread is executing right now. Either way the model is at hand — re-promote.
        let queued = self
            .pending_spills
            .iter()
            .position(|(k, _)| *k == key)
            .map(|pos| self.pending_spills.remove(pos).1)
            .or_else(|| self.spill_counters.in_flight(key));
        if let Some(model) = queued {
            self.stats.hits += 1;
            self.insert_resident(key, Arc::clone(&model));
            return Some((model, CacheTier::Memory));
        }
        if let Some(store) = &self.store {
            match store.load(key) {
                Ok(Some(model)) => {
                    self.stats.warm_starts += 1;
                    let model = Arc::new(model);
                    self.insert_resident(key, Arc::clone(&model));
                    return Some((model, CacheTier::Disk));
                }
                Ok(None) => {}
                Err(error) => {
                    self.spill_counters
                        .store_errors
                        .fetch_add(1, Ordering::Relaxed);
                    if matches!(error, gem_store::StoreError::Corrupt { .. }) {
                        let _ = store.remove(key);
                    }
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Look up a model, marking it most recently used on a hit (either tier). Pending
    /// spills (a warm-start insert can evict) are executed synchronously; lock-guarded
    /// callers should use [`ModelCache::get_with_tier`] + [`ModelCache::take_pending_spills`]
    /// instead.
    pub fn get(&mut self, key: ModelKey) -> Option<Arc<GemModel>> {
        let found = self.get_with_tier(key).map(|(model, _)| model);
        self.flush_spills();
        found
    }

    fn insert_resident(&mut self, key: ModelKey, model: Arc<GemModel>) {
        self.entries.retain(|e| e.key != key);
        let bytes = model.approx_mem_bytes();
        self.entries.insert(
            0,
            Entry {
                key,
                model,
                inserted_at: Instant::now(),
                bytes,
            },
        );
        self.enforce_bounds();
    }

    /// Insert (or refresh) a model as most recently used, evicting from the LRU end when
    /// the capacity or memory bound is exceeded. Evictions *queue* their store writes;
    /// call [`ModelCache::take_pending_spills`] (off-lock execution) or
    /// [`ModelCache::flush_spills`] (synchronous) to run them.
    pub fn insert(&mut self, key: ModelKey, model: Arc<GemModel>) {
        self.expire();
        self.insert_resident(key, model);
    }

    /// Fetch the model for (`columns`, `config`, `features`): from memory, else from the
    /// store tier, else by fitting (and caching) it. Returns the model and whether a fit
    /// was avoided (either tier).
    ///
    /// # Errors
    /// Propagates the [`GemError`] of a failed fit; failures are not cached.
    pub fn get_or_fit(
        &mut self,
        columns: &[GemColumn],
        config: &GemConfig,
        features: FeatureSet,
    ) -> Result<(Arc<GemModel>, bool), GemError> {
        let key = model_key(columns, config, features);
        if let Some(model) = self.get(key) {
            return Ok((model, true));
        }
        let model = Arc::new(GemModel::fit(columns, config, features)?);
        self.insert(key, Arc::clone(&model));
        self.flush_spills();
        Ok((model, false))
    }

    /// The memory-tier half of an explicit eviction: remove the resident entry (if any)
    /// and any spill still queued for `key`, and bump the key's eviction generation so
    /// spill tasks of this key already in flight cannot re-write the snapshot
    /// afterwards (spills of other keys are untouched). Returns whether the memory tier
    /// held the key, plus an [`EvictTask`] for the store-tier delete — execute it
    /// *after* releasing whatever lock guards the cache (the snapshot unlink is
    /// filesystem I/O, and the whole point of the task split is that store I/O never
    /// runs under the cache lock).
    ///
    /// Unlike a policy eviction the model is deliberately discarded, so nothing is
    /// spilled and the [`CacheStats::evictions`] counter (which tracks *policy*
    /// evictions) is untouched.
    pub fn evict_resident(&mut self, key: ModelKey) -> (bool, Option<EvictTask>) {
        // Generation first: any task of this key that checks after this point sees the
        // bump, so no pre-eviction spill can complete once we start removing. The
        // in-flight entry goes too, so a lookup can't re-promote the evicted model.
        self.spill_counters.bump_generation(key);
        self.spill_counters.clear_in_flight(key);
        let before = self.entries.len() + self.pending_spills.len();
        self.entries.retain(|e| e.key != key);
        self.pending_spills.retain(|(k, _)| *k != key);
        let existed = before > self.entries.len() + self.pending_spills.len();
        let task = self.store.as_ref().map(|store| EvictTask {
            key,
            store: Arc::clone(store),
            counters: Arc::clone(&self.spill_counters),
        });
        (existed, task)
    }

    /// Remove the model for `key` from *both* tiers synchronously — the single-owner
    /// convenience over [`ModelCache::evict_resident`]. Returns whether the key existed
    /// in either tier; a failed snapshot delete counts a store error and reports the
    /// tier as still existing.
    pub fn evict(&mut self, key: ModelKey) -> bool {
        let (in_memory, task) = self.evict_resident(key);
        let on_disk = task.is_some_and(EvictTask::execute);
        in_memory || on_disk
    }

    /// Stats-free, recency-free lookup of the resident entries and the spill pipeline
    /// (queued and in-flight spills; **not** the store tier, and TTL is not enforced).
    /// This is the single-flight re-check path in [`crate::BatchEngine`]: a second
    /// would-be fit leader must see a fit the first leader just published, without
    /// perturbing the hit/miss counters that the stat-conservation tests pin down.
    pub fn peek(&self, key: ModelKey) -> Option<Arc<GemModel>> {
        self.entries
            .iter()
            .find(|e| e.key == key)
            .map(|e| Arc::clone(&e.model))
            .or_else(|| {
                self.pending_spills
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, m)| Arc::clone(m))
            })
            .or_else(|| self.spill_counters.in_flight(key))
    }

    /// The resident models, most recently used first (no recency or stat side effects).
    pub fn resident_models(&self) -> Vec<(ModelKey, Arc<GemModel>)> {
        self.entries
            .iter()
            .map(|e| (e.key, Arc::clone(&e.model)))
            .collect()
    }

    /// Whether a model for `key` is currently resident in memory (does not consult the
    /// store tier and does not touch recency or stats).
    pub fn contains(&self, key: ModelKey) -> bool {
        self.entries.iter().any(|e| e.key == key)
    }

    /// Number of resident models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no models are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry-count capacity bound.
    pub fn capacity(&self) -> usize {
        self.policy.capacity
    }

    /// The full eviction policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Approximate resident memory of the cached models, in bytes.
    pub fn approx_bytes(&self) -> u64 {
        self.resident_bytes()
    }

    /// Cumulative counters. Spill-path counts come from atomics shared with every
    /// [`SpillTask`] this cache has handed out, so writes completed off-lock (or on other
    /// threads) are reflected as soon as they finish.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            spills: self.spill_counters.spills.load(Ordering::Relaxed),
            store_errors: self.spill_counters.store_errors.load(Ordering::Relaxed),
            ..self.stats
        }
    }

    /// Drop every resident model without spilling (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(seed: u64) -> Vec<GemColumn> {
        (0..4)
            .map(|c| {
                GemColumn::new(
                    (0..50)
                        .map(|i| (seed * 100 + c * 10) as f64 + (i % 13) as f64)
                        .collect(),
                    format!("col_{seed}_{c}"),
                )
            })
            .collect()
    }

    struct TempStore {
        dir: std::path::PathBuf,
        store: Arc<ModelStore>,
    }

    impl TempStore {
        fn new(name: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "gem-serve-cache-test-{}-{name}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = Arc::new(ModelStore::open(&dir).unwrap());
            TempStore { dir, store }
        }
    }

    impl Drop for TempStore {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    #[test]
    fn hit_miss_and_stats() {
        let mut cache = ModelCache::new(2);
        let cfg = GemConfig::fast();
        let (_, hit) = cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(!hit);
        let (_, hit) = cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(hit);
        assert_eq!(cache.stats().hits, 1);
        // get_or_fit's internal lookup on the cold call counted one miss.
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        assert_eq!(cache.capacity(), 2);
        assert!(cache.approx_bytes() > 0);
    }

    #[test]
    fn same_corpus_different_config_is_a_different_entry() {
        let mut cache = ModelCache::new(4);
        let cfg = GemConfig::fast();
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        let (_, hit) = cache.get_or_fit(&corpus(1), &cfg, FeatureSet::d()).unwrap();
        assert!(!hit, "feature-set change must miss");
        let mut other = cfg.clone();
        other.gmm.n_components += 1;
        let (_, hit) = cache
            .get_or_fit(&corpus(1), &other, FeatureSet::ds())
            .unwrap();
        assert!(!hit, "component-count change must miss");
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn data_change_is_a_different_entry() {
        let mut cache = ModelCache::new(4);
        let cfg = GemConfig::fast();
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        let mut perturbed = corpus(1);
        perturbed[0].values[7] += 1e-9;
        let (_, hit) = cache
            .get_or_fit(&perturbed, &cfg, FeatureSet::ds())
            .unwrap();
        assert!(!hit, "a single perturbed value must miss");
    }

    #[test]
    fn lru_eviction_drops_the_least_recently_used() {
        let mut cache = ModelCache::new(2);
        let cfg = GemConfig::fast();
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let k2 = model_key(&corpus(2), &cfg, FeatureSet::ds());
        let k3 = model_key(&corpus(3), &cfg, FeatureSet::ds());
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap();
        // Touch corpus 1 so corpus 2 becomes least recently used.
        assert!(cache.get(k1).is_some());
        cache
            .get_or_fit(&corpus(3), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(cache.contains(k1));
        assert!(!cache.contains(k2), "LRU entry must be evicted");
        assert!(cache.contains(k3));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failed_fits_are_not_cached() {
        let mut cache = ModelCache::new(2);
        let cfg = GemConfig::fast();
        let empty = vec![GemColumn::values_only(vec![])];
        assert!(cache.get_or_fit(&empty, &cfg, FeatureSet::ds()).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_keeps_counters() {
        let mut cache = ModelCache::new(2);
        let cfg = GemConfig::fast();
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        ModelCache::new(0);
    }

    #[test]
    fn ttl_expires_entries_and_counts_expirations() {
        let cfg = GemConfig::fast();
        // Zero TTL: every entry is already expired at the next access.
        let mut cache = ModelCache::with_policy(CachePolicy::with_capacity(4).ttl(Duration::ZERO));
        let key = model_key(&corpus(1), &cfg, FeatureSet::ds());
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(cache.get(key).is_none(), "zero TTL must expire immediately");
        assert_eq!(cache.stats().expirations, 1);
        assert_eq!(cache.stats().misses, 2); // cold lookup + post-expiry lookup
                                             // A generous TTL keeps entries alive.
        let mut cache =
            ModelCache::with_policy(CachePolicy::with_capacity(4).ttl(Duration::from_secs(3600)));
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(cache.get(key).is_some());
        assert_eq!(cache.stats().expirations, 0);
    }

    #[test]
    fn memory_bound_evicts_lru_but_never_the_newest_entry() {
        let cfg = GemConfig::fast();
        // A 1-byte budget forces every insert over budget; the newest entry must
        // survive anyway so the cache can still serve.
        let mut cache = ModelCache::with_policy(CachePolicy::with_capacity(10).max_bytes(1));
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let k2 = model_key(&corpus(2), &cfg, FeatureSet::ds());
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert_eq!(cache.len(), 1, "single over-budget entry stays resident");
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap();
        assert_eq!(cache.len(), 1);
        assert!(!cache.contains(k1), "older entry evicted for memory");
        assert!(cache.contains(k2));
        assert_eq!(cache.stats().evictions, 1);
        // A budget comfortably above both models keeps both.
        let mut cache =
            ModelCache::with_policy(CachePolicy::with_capacity(10).max_bytes(64 * 1024 * 1024));
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn evictions_spill_to_the_store_and_misses_warm_start_from_it() {
        let tmp = TempStore::new("spill");
        let cfg = GemConfig::fast();
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let mut cache = ModelCache::new(1).with_store(Arc::clone(&tmp.store));
        let (fitted, _) = cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        // Second model evicts the first, which spills to disk.
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(!cache.contains(k1));
        assert_eq!(cache.stats().spills, 1);
        assert!(tmp.store.contains(k1));
        // The next lookup warm-starts from disk — no fit — and the rehydrated model
        // transforms bit-identically.
        let (model, tier) = cache.get_with_tier(k1).unwrap();
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(cache.stats().warm_starts, 1);
        assert!(cache.contains(k1), "warm-started model becomes resident");
        let cols = corpus(1);
        assert_eq!(
            model.transform(&cols).unwrap().matrix,
            fitted.transform(&cols).unwrap().matrix
        );
        // A fresh cache (fresh process) over the same store warm-starts too: the fit
        // survives the restart.
        let mut fresh = ModelCache::new(2).with_store(Arc::clone(&tmp.store));
        let (_, avoided_fit) = fresh
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(avoided_fit, "restart must not re-pay the EM fit");
        assert_eq!(fresh.stats().warm_starts, 1);
        assert_eq!(fresh.stats().misses, 0);
    }

    #[test]
    fn spilling_skips_keys_already_on_disk() {
        let tmp = TempStore::new("skip");
        let cfg = GemConfig::fast();
        let mut cache = ModelCache::new(1).with_store(Arc::clone(&tmp.store));
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap(); // spills corpus 1
                       // Warm-start corpus 1 back in (evicting + spilling corpus 2), then evict
                       // corpus 1 again: its snapshot already exists, so no second spill.
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        assert!(cache.get(k1).is_some());
        cache
            .get_or_fit(&corpus(3), &cfg, FeatureSet::ds())
            .unwrap(); // evicts corpus 1 again
        assert_eq!(
            cache.stats().spills,
            2,
            "corpus 1 spilled once, corpus 2 once"
        );
        assert_eq!(tmp.store.stats().unwrap().entries, 2);
    }

    #[test]
    fn corrupt_store_entries_degrade_to_a_cold_fit() {
        let tmp = TempStore::new("corrupt");
        let cfg = GemConfig::fast();
        let key = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let mut cache = ModelCache::new(1).with_store(Arc::clone(&tmp.store));
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap(); // spill corpus 1
        std::fs::write(tmp.store.path_of(key), "{ not json").unwrap();
        // The lookup surfaces no error: the corrupt snapshot counts a store_error, is
        // deleted (so it cannot shadow future spills), and the caller proceeds to a
        // cold fit.
        assert!(cache.get(key).is_none());
        assert_eq!(cache.stats().store_errors, 1);
        assert!(
            !tmp.store.contains(key),
            "corrupt snapshot must be deleted, not preserved"
        );
        let (_, avoided_fit) = cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(!avoided_fit, "corrupt snapshot must fall back to fitting");
        // Evicting the re-fitted model now re-writes a good snapshot in its place.
        cache
            .get_or_fit(&corpus(3), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(tmp.store.contains(key), "eviction repairs the snapshot");
        assert!(tmp.store.load(key).unwrap().is_some());
    }

    #[test]
    fn spills_execute_off_lock_so_a_slow_store_cannot_block_hits() {
        // Regression test for the off-lock store I/O design: an eviction only *queues*
        // the store write, so a cache shared behind a mutex keeps serving hits while the
        // write is in flight. (Previously the eviction wrote the snapshot in place —
        // under whatever lock guarded the cache — so a slow disk stalled every lookup.)
        let tmp = TempStore::new("off-lock");
        let cfg = GemConfig::fast();
        let cache = Arc::new(std::sync::Mutex::new(
            ModelCache::new(1).with_store(Arc::clone(&tmp.store)),
        ));
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let k2 = model_key(&corpus(2), &cfg, FeatureSet::ds());
        let m1 = Arc::new(GemModel::fit(&corpus(1), &cfg, FeatureSet::ds()).unwrap());
        let m2 = Arc::new(GemModel::fit(&corpus(2), &cfg, FeatureSet::ds()).unwrap());
        // Inserting the second model evicts the first; its spill is queued, not written.
        let tasks = {
            let mut cache = cache.lock().unwrap();
            cache.insert(k1, m1);
            cache.insert(k2, m2);
            cache.take_pending_spills()
        };
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].key(), k1);
        // The "slow store": a writer thread that holds the task un-executed until
        // signalled — the exact window in which the old design kept the lock taken.
        let (signal, wait) = std::sync::mpsc::channel::<()>();
        let writer = std::thread::spawn(move || {
            wait.recv().unwrap();
            for task in tasks {
                assert!(task.execute());
            }
        });
        // While the write is pending, concurrent hits acquire the lock immediately.
        {
            let mut cache = cache.lock().unwrap();
            let (_, tier) = cache.get_with_tier(k2).unwrap();
            assert_eq!(tier, CacheTier::Memory);
            assert_eq!(cache.stats().hits, 1);
            assert_eq!(cache.stats().spills, 0, "write has not happened yet");
            assert!(!tmp.store.contains(k1));
        }
        signal.send(()).unwrap();
        writer.join().unwrap();
        // The off-lock completion still lands in this cache's stats (shared atomics).
        assert_eq!(cache.lock().unwrap().stats().spills, 1);
        assert!(tmp.store.contains(k1));
    }

    #[test]
    fn evict_removes_both_tiers_and_cancels_queued_spills() {
        let tmp = TempStore::new("evict");
        let cfg = GemConfig::fast();
        let mut cache = ModelCache::new(1).with_store(Arc::clone(&tmp.store));
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let k2 = model_key(&corpus(2), &cfg, FeatureSet::ds());
        assert!(!cache.evict(k1), "nothing to evict yet");
        // Resident-tier eviction.
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(cache.evict(k1));
        assert!(!cache.contains(k1));
        assert_eq!(
            cache.stats().evictions,
            0,
            "request evictions are not policy evictions"
        );
        // Disk-tier eviction: spill corpus 1, then evict removes the snapshot too.
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap(); // evicts + spills corpus 1 (get_or_fit flushes)
        assert!(tmp.store.contains(k1));
        assert!(cache.evict(k1));
        assert!(!tmp.store.contains(k1));
        // A spill still queued for an evicted key is cancelled, not written later.
        let m1 = Arc::new(GemModel::fit(&corpus(1), &cfg, FeatureSet::ds()).unwrap());
        cache.insert(k1, m1); // evicts corpus 2, queueing its spill
        assert!(cache.evict(k2), "queued spill counts as existing");
        cache.flush_spills();
        assert!(
            !tmp.store.contains(k2),
            "cancelled spill must not be written"
        );
    }

    #[test]
    fn evict_invalidates_spill_tasks_already_in_flight() {
        // The race: a policy eviction hands out a SpillTask; before it executes, an
        // explicit evict removes the model from every tier. The in-flight task must
        // not re-write the snapshot afterwards — that would resurrect the handle the
        // eviction just killed.
        let tmp = TempStore::new("evict-race");
        let cfg = GemConfig::fast();
        let mut cache = ModelCache::new(1).with_store(Arc::clone(&tmp.store));
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let m1 = Arc::new(GemModel::fit(&corpus(1), &cfg, FeatureSet::ds()).unwrap());
        let m2 = Arc::new(GemModel::fit(&corpus(2), &cfg, FeatureSet::ds()).unwrap());
        cache.insert(k1, m1);
        cache.insert(
            model_key(&corpus(2), &cfg, FeatureSet::ds()),
            Arc::clone(&m2),
        );
        let tasks = cache.take_pending_spills(); // k1's spill, now "in flight"
        assert_eq!(tasks.len(), 1);
        cache.evict(k1); // lands while the spill is still un-executed
        for task in tasks {
            assert!(!task.execute(), "cancelled spill must not write");
        }
        assert!(
            !tmp.store.contains(k1),
            "an in-flight spill must not resurrect an evicted model"
        );
        assert_eq!(cache.stats().spills, 0);
        // Spills queued *after* the eviction belong to the key's new generation and
        // still work.
        let m1_again = Arc::new(GemModel::fit(&corpus(1), &cfg, FeatureSet::ds()).unwrap());
        cache.insert(k1, m1_again);
        cache.insert(model_key(&corpus(3), &cfg, FeatureSet::ds()), m2); // evicts k1
        cache.flush_spills(); // writes k1 and the corpus-2 model it displaced
        assert!(tmp.store.contains(k1), "post-evict refits spill normally");
        assert_eq!(cache.stats().spills, 2);
    }

    #[test]
    fn models_remain_resolvable_while_their_spill_is_queued_or_in_flight() {
        // Deferring spills must not open a window in which an evicted model resolves
        // nowhere: between the eviction and the (possibly slow) store write, lookups
        // re-promote the model from the spill pipeline instead of missing.
        let tmp = TempStore::new("resolvable");
        let cfg = GemConfig::fast();
        let mut cache = ModelCache::new(1).with_store(Arc::clone(&tmp.store));
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let k2 = model_key(&corpus(2), &cfg, FeatureSet::ds());
        let m1 = Arc::new(GemModel::fit(&corpus(1), &cfg, FeatureSet::ds()).unwrap());
        let m2 = Arc::new(GemModel::fit(&corpus(2), &cfg, FeatureSet::ds()).unwrap());
        cache.insert(k1, m1);
        cache.insert(k2, m2); // k1 evicted, spill queued (not written)
        assert!(!tmp.store.contains(k1));
        // (a) Queued: k1 resolves from the pending queue, re-promoted as a memory hit.
        let (_, tier) = cache.get_with_tier(k1).expect("queued spill must resolve");
        assert_eq!(tier, CacheTier::Memory);
        assert!(cache.contains(k1));
        // The re-promotion displaced k2; hand its spill out as an in-flight task.
        let tasks = cache.take_pending_spills();
        assert!(tasks.iter().any(|t| t.key() == k2));
        // (b) In flight (handed out, not yet executed): k2 still resolves.
        let (_, tier) = cache
            .get_with_tier(k2)
            .expect("in-flight spill must resolve");
        assert_eq!(tier, CacheTier::Memory);
        assert_eq!(
            cache.stats().misses,
            0,
            "the spill pipeline is never a miss"
        );
        // Executing the now-stale tasks afterwards is harmless.
        for task in tasks {
            task.execute();
        }
        assert!(cache.get_with_tier(k2).is_some());
    }

    #[test]
    fn evicting_one_key_does_not_cancel_in_flight_spills_of_others() {
        // Cancellation is per-key: an Evict for one handle must not discard the spill
        // of an unrelated model that happens to be in flight at the same moment —
        // that model's handle is supposed to survive eviction-and-restart.
        let tmp = TempStore::new("evict-unrelated");
        let cfg = GemConfig::fast();
        let mut cache = ModelCache::new(1).with_store(Arc::clone(&tmp.store));
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let m1 = Arc::new(GemModel::fit(&corpus(1), &cfg, FeatureSet::ds()).unwrap());
        let m2 = Arc::new(GemModel::fit(&corpus(2), &cfg, FeatureSet::ds()).unwrap());
        cache.insert(k1, m1);
        cache.insert(model_key(&corpus(2), &cfg, FeatureSet::ds()), m2);
        let tasks = cache.take_pending_spills(); // k1's spill, in flight
        assert_eq!(tasks.len(), 1);
        cache.evict(model_key(&corpus(3), &cfg, FeatureSet::ds())); // unrelated key
        for task in tasks {
            assert!(task.execute(), "unrelated evict must not cancel this spill");
        }
        assert!(tmp.store.contains(k1));
        assert_eq!(cache.stats().spills, 1);
    }

    #[test]
    fn ttl_expiry_does_not_spill() {
        let tmp = TempStore::new("no-spill-on-expiry");
        let cfg = GemConfig::fast();
        let mut cache = ModelCache::with_policy(CachePolicy::with_capacity(4).ttl(Duration::ZERO))
            .with_store(Arc::clone(&tmp.store));
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        let key = model_key(&corpus(1), &cfg, FeatureSet::ds());
        assert!(cache.get(key).is_none()); // expired
        assert_eq!(cache.stats().expirations, 1);
        assert_eq!(
            cache.stats().spills,
            0,
            "expired entries are stale, not spilled"
        );
        assert_eq!(tmp.store.stats().unwrap().entries, 0);
    }
}
