//! The fingerprint-keyed, bounded, two-tier model cache.
//!
//! Fitting a [`GemModel`] is the expensive step of the pipeline (the EM fit over the
//! stacked corpus); transforming against a fitted model is cheap. A serving system
//! therefore caches fitted models keyed by [`ModelKey`] — the corpus fingerprint plus
//! the configuration hash.
//!
//! The cache is bounded along three axes ([`CachePolicy`]): an entry-count capacity, an
//! optional TTL (entries older than the TTL are expired on the next access), and an
//! optional approximate-memory bound computed from [`GemModel::approx_mem_bytes`].
//!
//! Attaching a [`ModelStore`] turns it into a two-tier cache:
//!
//! * models evicted for the capacity or memory bound **spill** to the store (a disk
//!   write instead of losing the fit), and
//! * a lookup that misses memory **warm-starts** from the store — a deserialisation
//!   (~ms) instead of an EM re-fit (~90ms on the bench corpus), with bit-identical
//!   transform output.
//!
//! TTL-expired entries are *not* spilled: expiry says the entry has outlived its
//! freshness budget, so writing it out would just move stale data to disk. Store I/O
//! failures never fail a lookup — they count in [`CacheStats::store_errors`] and the
//! cache falls back to the cold path, keeping a broken disk from taking serving down.

use crate::fingerprint::{model_key, ModelKey};
use gem_core::{FeatureSet, GemColumn, GemConfig, GemError, GemModel};
use gem_store::ModelStore;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from resident memory.
    pub hits: u64,
    /// Lookups served by rehydrating a spilled model from the attached store.
    pub warm_starts: u64,
    /// Lookups that found the model in neither tier.
    pub misses: u64,
    /// Entries evicted to respect the capacity or memory bound.
    pub evictions: u64,
    /// Entries dropped because they outlived the TTL.
    pub expirations: u64,
    /// Evicted entries successfully written to the attached store.
    pub spills: u64,
    /// Store reads or writes that failed (the lookup then proceeded as a miss).
    pub store_errors: u64,
}

/// Which tier satisfied a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The model was resident in memory.
    Memory,
    /// The model was rehydrated from the attached on-disk store.
    Disk,
}

/// Eviction policy of a [`ModelCache`]. `capacity` always applies; the TTL and memory
/// bounds are opt-in.
#[derive(Debug, Clone, Copy)]
pub struct CachePolicy {
    /// Maximum number of resident models.
    pub capacity: usize,
    /// Entries older than this are expired (checked on every access). `None` disables.
    pub ttl: Option<Duration>,
    /// Approximate resident-memory bound over [`GemModel::approx_mem_bytes`]. When
    /// exceeded, least-recently-used entries are evicted — but the most recently used
    /// entry always stays, so a single over-budget model still serves. `None` disables.
    pub max_bytes: Option<u64>,
}

impl CachePolicy {
    /// Capacity-only policy (the PR 2 behaviour).
    pub fn with_capacity(capacity: usize) -> Self {
        CachePolicy {
            capacity,
            ttl: None,
            max_bytes: None,
        }
    }

    /// Builder-style TTL bound.
    pub fn ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Builder-style approximate-memory bound.
    pub fn max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }
}

#[derive(Debug)]
struct Entry {
    key: ModelKey,
    model: Arc<GemModel>,
    inserted_at: Instant,
    bytes: u64,
}

/// A bounded LRU cache of fitted models, optionally backed by an on-disk store tier.
///
/// Models are stored behind [`Arc`] so a cache hit hands out a shared handle: transforms
/// can proceed on many threads while the cache itself is only locked for the (cheap)
/// lookup. The entry list is kept in recency order — front is most recently used — which
/// for serving-sized capacities (tens of models) makes the linear scan cheaper than a
/// hash map plus intrusive list.
#[derive(Debug)]
pub struct ModelCache {
    policy: CachePolicy,
    /// Most recently used first.
    entries: Vec<Entry>,
    store: Option<Arc<ModelStore>>,
    stats: CacheStats,
}

impl ModelCache {
    /// Create a capacity-bounded cache holding at most `capacity` fitted models.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(CachePolicy::with_capacity(capacity))
    }

    /// Create a cache with a full eviction policy.
    ///
    /// # Panics
    /// Panics when `policy.capacity` is zero.
    pub fn with_policy(policy: CachePolicy) -> Self {
        assert!(policy.capacity > 0, "model cache capacity must be positive");
        ModelCache {
            policy,
            entries: Vec::new(),
            store: None,
            stats: CacheStats::default(),
        }
    }

    /// Attach an on-disk store as the second tier: capacity/memory evictions spill to
    /// it and lookups that miss memory warm-start from it.
    pub fn with_store(mut self, store: Arc<ModelStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached store tier, if any.
    pub fn store(&self) -> Option<&Arc<ModelStore>> {
        self.store.as_ref()
    }

    /// Drop entries that outlived the TTL. Called on every access so expiry needs no
    /// background thread; expired entries are not spilled (they are stale by policy).
    fn expire(&mut self) {
        let Some(ttl) = self.policy.ttl else {
            return;
        };
        let before = self.entries.len();
        self.entries.retain(|e| e.inserted_at.elapsed() < ttl);
        self.stats.expirations += (before - self.entries.len()) as u64;
    }

    fn resident_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Evict from the LRU end until the capacity and memory bounds hold, spilling each
    /// eviction to the store tier. The memory bound never evicts the final entry: a
    /// single model larger than the budget must still be servable.
    fn enforce_bounds(&mut self) {
        while self.entries.len() > self.policy.capacity
            || (self.entries.len() > 1
                && self
                    .policy
                    .max_bytes
                    .is_some_and(|max| self.resident_bytes() > max))
        {
            let evicted = self.entries.pop().expect("loop guard ensures non-empty");
            self.stats.evictions += 1;
            self.spill(&evicted);
        }
    }

    fn spill(&mut self, entry: &Entry) {
        let Some(store) = &self.store else {
            return;
        };
        // The fit is deterministic in (corpus, config), so an existing snapshot is
        // already identical — skip the rewrite.
        if store.contains(entry.key) {
            return;
        }
        match store.save(entry.key, &entry.model) {
            Ok(_) => self.stats.spills += 1,
            Err(_) => self.stats.store_errors += 1,
        }
    }

    /// Look up a model, marking it most recently used on a hit and reporting which tier
    /// satisfied the lookup. A memory miss consults the store tier (when attached):
    /// a rehydrated model is inserted as most recently used and returned as
    /// [`CacheTier::Disk`]. Store read failures count as [`CacheStats::store_errors`]
    /// and degrade to a miss; a snapshot rejected as *corrupt* is additionally deleted,
    /// so the next eviction of a freshly fitted model re-writes a good one (without the
    /// delete, `spill`'s existence check would preserve the bad file forever). Version
    /// mismatches are kept — they may belong to a newer deployment sharing the store.
    pub fn get_with_tier(&mut self, key: ModelKey) -> Option<(Arc<GemModel>, CacheTier)> {
        self.expire();
        if let Some(pos) = self.entries.iter().position(|e| e.key == key) {
            self.stats.hits += 1;
            let entry = self.entries.remove(pos);
            let model = Arc::clone(&entry.model);
            self.entries.insert(0, entry);
            return Some((model, CacheTier::Memory));
        }
        if let Some(store) = &self.store {
            match store.load(key) {
                Ok(Some(model)) => {
                    self.stats.warm_starts += 1;
                    let model = Arc::new(model);
                    self.insert_resident(key, Arc::clone(&model));
                    return Some((model, CacheTier::Disk));
                }
                Ok(None) => {}
                Err(error) => {
                    self.stats.store_errors += 1;
                    if matches!(error, gem_store::StoreError::Corrupt { .. }) {
                        let _ = store.remove(key);
                    }
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Look up a model, marking it most recently used on a hit (either tier).
    pub fn get(&mut self, key: ModelKey) -> Option<Arc<GemModel>> {
        self.get_with_tier(key).map(|(model, _)| model)
    }

    fn insert_resident(&mut self, key: ModelKey, model: Arc<GemModel>) {
        self.entries.retain(|e| e.key != key);
        let bytes = model.approx_mem_bytes();
        self.entries.insert(
            0,
            Entry {
                key,
                model,
                inserted_at: Instant::now(),
                bytes,
            },
        );
        self.enforce_bounds();
    }

    /// Insert (or refresh) a model as most recently used, evicting from the LRU end
    /// (spilling to the store tier) when the capacity or memory bound is exceeded.
    pub fn insert(&mut self, key: ModelKey, model: Arc<GemModel>) {
        self.expire();
        self.insert_resident(key, model);
    }

    /// Fetch the model for (`columns`, `config`, `features`): from memory, else from the
    /// store tier, else by fitting (and caching) it. Returns the model and whether a fit
    /// was avoided (either tier).
    ///
    /// # Errors
    /// Propagates the [`GemError`] of a failed fit; failures are not cached.
    pub fn get_or_fit(
        &mut self,
        columns: &[GemColumn],
        config: &GemConfig,
        features: FeatureSet,
    ) -> Result<(Arc<GemModel>, bool), GemError> {
        let key = model_key(columns, config, features);
        if let Some(model) = self.get(key) {
            return Ok((model, true));
        }
        let model = Arc::new(GemModel::fit(columns, config, features)?);
        self.insert(key, Arc::clone(&model));
        Ok((model, false))
    }

    /// Whether a model for `key` is currently resident in memory (does not consult the
    /// store tier and does not touch recency or stats).
    pub fn contains(&self, key: ModelKey) -> bool {
        self.entries.iter().any(|e| e.key == key)
    }

    /// Number of resident models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no models are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry-count capacity bound.
    pub fn capacity(&self) -> usize {
        self.policy.capacity
    }

    /// The full eviction policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Approximate resident memory of the cached models, in bytes.
    pub fn approx_bytes(&self) -> u64 {
        self.resident_bytes()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop every resident model without spilling (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(seed: u64) -> Vec<GemColumn> {
        (0..4)
            .map(|c| {
                GemColumn::new(
                    (0..50)
                        .map(|i| (seed * 100 + c * 10) as f64 + (i % 13) as f64)
                        .collect(),
                    format!("col_{seed}_{c}"),
                )
            })
            .collect()
    }

    struct TempStore {
        dir: std::path::PathBuf,
        store: Arc<ModelStore>,
    }

    impl TempStore {
        fn new(name: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "gem-serve-cache-test-{}-{name}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = Arc::new(ModelStore::open(&dir).unwrap());
            TempStore { dir, store }
        }
    }

    impl Drop for TempStore {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    #[test]
    fn hit_miss_and_stats() {
        let mut cache = ModelCache::new(2);
        let cfg = GemConfig::fast();
        let (_, hit) = cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(!hit);
        let (_, hit) = cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(hit);
        assert_eq!(cache.stats().hits, 1);
        // get_or_fit's internal lookup on the cold call counted one miss.
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        assert_eq!(cache.capacity(), 2);
        assert!(cache.approx_bytes() > 0);
    }

    #[test]
    fn same_corpus_different_config_is_a_different_entry() {
        let mut cache = ModelCache::new(4);
        let cfg = GemConfig::fast();
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        let (_, hit) = cache.get_or_fit(&corpus(1), &cfg, FeatureSet::d()).unwrap();
        assert!(!hit, "feature-set change must miss");
        let mut other = cfg.clone();
        other.gmm.n_components += 1;
        let (_, hit) = cache
            .get_or_fit(&corpus(1), &other, FeatureSet::ds())
            .unwrap();
        assert!(!hit, "component-count change must miss");
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn data_change_is_a_different_entry() {
        let mut cache = ModelCache::new(4);
        let cfg = GemConfig::fast();
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        let mut perturbed = corpus(1);
        perturbed[0].values[7] += 1e-9;
        let (_, hit) = cache
            .get_or_fit(&perturbed, &cfg, FeatureSet::ds())
            .unwrap();
        assert!(!hit, "a single perturbed value must miss");
    }

    #[test]
    fn lru_eviction_drops_the_least_recently_used() {
        let mut cache = ModelCache::new(2);
        let cfg = GemConfig::fast();
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let k2 = model_key(&corpus(2), &cfg, FeatureSet::ds());
        let k3 = model_key(&corpus(3), &cfg, FeatureSet::ds());
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap();
        // Touch corpus 1 so corpus 2 becomes least recently used.
        assert!(cache.get(k1).is_some());
        cache
            .get_or_fit(&corpus(3), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(cache.contains(k1));
        assert!(!cache.contains(k2), "LRU entry must be evicted");
        assert!(cache.contains(k3));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failed_fits_are_not_cached() {
        let mut cache = ModelCache::new(2);
        let cfg = GemConfig::fast();
        let empty = vec![GemColumn::values_only(vec![])];
        assert!(cache.get_or_fit(&empty, &cfg, FeatureSet::ds()).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_keeps_counters() {
        let mut cache = ModelCache::new(2);
        let cfg = GemConfig::fast();
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        ModelCache::new(0);
    }

    #[test]
    fn ttl_expires_entries_and_counts_expirations() {
        let cfg = GemConfig::fast();
        // Zero TTL: every entry is already expired at the next access.
        let mut cache = ModelCache::with_policy(CachePolicy::with_capacity(4).ttl(Duration::ZERO));
        let key = model_key(&corpus(1), &cfg, FeatureSet::ds());
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(cache.get(key).is_none(), "zero TTL must expire immediately");
        assert_eq!(cache.stats().expirations, 1);
        assert_eq!(cache.stats().misses, 2); // cold lookup + post-expiry lookup
                                             // A generous TTL keeps entries alive.
        let mut cache =
            ModelCache::with_policy(CachePolicy::with_capacity(4).ttl(Duration::from_secs(3600)));
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(cache.get(key).is_some());
        assert_eq!(cache.stats().expirations, 0);
    }

    #[test]
    fn memory_bound_evicts_lru_but_never_the_newest_entry() {
        let cfg = GemConfig::fast();
        // A 1-byte budget forces every insert over budget; the newest entry must
        // survive anyway so the cache can still serve.
        let mut cache = ModelCache::with_policy(CachePolicy::with_capacity(10).max_bytes(1));
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let k2 = model_key(&corpus(2), &cfg, FeatureSet::ds());
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert_eq!(cache.len(), 1, "single over-budget entry stays resident");
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap();
        assert_eq!(cache.len(), 1);
        assert!(!cache.contains(k1), "older entry evicted for memory");
        assert!(cache.contains(k2));
        assert_eq!(cache.stats().evictions, 1);
        // A budget comfortably above both models keeps both.
        let mut cache =
            ModelCache::with_policy(CachePolicy::with_capacity(10).max_bytes(64 * 1024 * 1024));
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn evictions_spill_to_the_store_and_misses_warm_start_from_it() {
        let tmp = TempStore::new("spill");
        let cfg = GemConfig::fast();
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let mut cache = ModelCache::new(1).with_store(Arc::clone(&tmp.store));
        let (fitted, _) = cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        // Second model evicts the first, which spills to disk.
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(!cache.contains(k1));
        assert_eq!(cache.stats().spills, 1);
        assert!(tmp.store.contains(k1));
        // The next lookup warm-starts from disk — no fit — and the rehydrated model
        // transforms bit-identically.
        let (model, tier) = cache.get_with_tier(k1).unwrap();
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(cache.stats().warm_starts, 1);
        assert!(cache.contains(k1), "warm-started model becomes resident");
        let cols = corpus(1);
        assert_eq!(
            model.transform(&cols).unwrap().matrix,
            fitted.transform(&cols).unwrap().matrix
        );
        // A fresh cache (fresh process) over the same store warm-starts too: the fit
        // survives the restart.
        let mut fresh = ModelCache::new(2).with_store(Arc::clone(&tmp.store));
        let (_, avoided_fit) = fresh
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(avoided_fit, "restart must not re-pay the EM fit");
        assert_eq!(fresh.stats().warm_starts, 1);
        assert_eq!(fresh.stats().misses, 0);
    }

    #[test]
    fn spilling_skips_keys_already_on_disk() {
        let tmp = TempStore::new("skip");
        let cfg = GemConfig::fast();
        let mut cache = ModelCache::new(1).with_store(Arc::clone(&tmp.store));
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap(); // spills corpus 1
                       // Warm-start corpus 1 back in (evicting + spilling corpus 2), then evict
                       // corpus 1 again: its snapshot already exists, so no second spill.
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        assert!(cache.get(k1).is_some());
        cache
            .get_or_fit(&corpus(3), &cfg, FeatureSet::ds())
            .unwrap(); // evicts corpus 1 again
        assert_eq!(
            cache.stats().spills,
            2,
            "corpus 1 spilled once, corpus 2 once"
        );
        assert_eq!(tmp.store.stats().unwrap().entries, 2);
    }

    #[test]
    fn corrupt_store_entries_degrade_to_a_cold_fit() {
        let tmp = TempStore::new("corrupt");
        let cfg = GemConfig::fast();
        let key = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let mut cache = ModelCache::new(1).with_store(Arc::clone(&tmp.store));
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap(); // spill corpus 1
        std::fs::write(tmp.store.path_of(key), "{ not json").unwrap();
        // The lookup surfaces no error: the corrupt snapshot counts a store_error, is
        // deleted (so it cannot shadow future spills), and the caller proceeds to a
        // cold fit.
        assert!(cache.get(key).is_none());
        assert_eq!(cache.stats().store_errors, 1);
        assert!(
            !tmp.store.contains(key),
            "corrupt snapshot must be deleted, not preserved"
        );
        let (_, avoided_fit) = cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(!avoided_fit, "corrupt snapshot must fall back to fitting");
        // Evicting the re-fitted model now re-writes a good snapshot in its place.
        cache
            .get_or_fit(&corpus(3), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(tmp.store.contains(key), "eviction repairs the snapshot");
        assert!(tmp.store.load(key).unwrap().is_some());
    }

    #[test]
    fn ttl_expiry_does_not_spill() {
        let tmp = TempStore::new("no-spill-on-expiry");
        let cfg = GemConfig::fast();
        let mut cache = ModelCache::with_policy(CachePolicy::with_capacity(4).ttl(Duration::ZERO))
            .with_store(Arc::clone(&tmp.store));
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        let key = model_key(&corpus(1), &cfg, FeatureSet::ds());
        assert!(cache.get(key).is_none()); // expired
        assert_eq!(cache.stats().expirations, 1);
        assert_eq!(
            cache.stats().spills,
            0,
            "expired entries are stale, not spilled"
        );
        assert_eq!(tmp.store.stats().unwrap().entries, 0);
    }
}
