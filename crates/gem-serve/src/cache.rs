//! The fingerprint-keyed, capacity-bounded LRU model cache.
//!
//! Fitting a [`GemModel`] is the expensive step of the pipeline (the EM fit over the
//! stacked corpus); transforming against a fitted model is cheap. A serving system
//! therefore caches fitted models keyed by [`ModelKey`] — the corpus fingerprint plus
//! the configuration hash — and evicts least-recently-used models when the configured
//! capacity is exceeded, bounding resident model memory.

use crate::fingerprint::{model_key, ModelKey};
use gem_core::{FeatureSet, GemColumn, GemConfig, GemError, GemModel};
use std::sync::Arc;

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

/// A capacity-bounded LRU cache of fitted models.
///
/// Models are stored behind [`Arc`] so a cache hit hands out a shared handle: transforms
/// can proceed on many threads while the cache itself is only locked for the (cheap)
/// lookup. The entry list is kept in recency order — front is most recently used — which
/// for serving-sized capacities (tens of models) makes the linear scan cheaper than a
/// hash map plus intrusive list.
#[derive(Debug)]
pub struct ModelCache {
    capacity: usize,
    /// Most recently used first.
    entries: Vec<(ModelKey, Arc<GemModel>)>,
    stats: CacheStats,
}

impl ModelCache {
    /// Create a cache holding at most `capacity` fitted models.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "model cache capacity must be positive");
        ModelCache {
            capacity,
            entries: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look up a model, marking it most recently used on a hit.
    pub fn get(&mut self, key: ModelKey) -> Option<Arc<GemModel>> {
        match self.entries.iter().position(|(k, _)| *k == key) {
            Some(pos) => {
                self.stats.hits += 1;
                let entry = self.entries.remove(pos);
                let model = Arc::clone(&entry.1);
                self.entries.insert(0, entry);
                Some(model)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a model as most recently used, evicting from the LRU end when
    /// the capacity is exceeded.
    pub fn insert(&mut self, key: ModelKey, model: Arc<GemModel>) {
        self.entries.retain(|(k, _)| *k != key);
        self.entries.insert(0, (key, model));
        while self.entries.len() > self.capacity {
            self.entries.pop();
            self.stats.evictions += 1;
        }
    }

    /// Fetch the model for (`columns`, `config`, `features`), fitting and caching it on a
    /// miss. Returns the model and whether it was served from the cache.
    ///
    /// # Errors
    /// Propagates the [`GemError`] of a failed fit; failures are not cached.
    pub fn get_or_fit(
        &mut self,
        columns: &[GemColumn],
        config: &GemConfig,
        features: FeatureSet,
    ) -> Result<(Arc<GemModel>, bool), GemError> {
        let key = model_key(columns, config, features);
        if let Some(model) = self.get(key) {
            return Ok((model, true));
        }
        let model = Arc::new(GemModel::fit(columns, config, features)?);
        self.insert(key, Arc::clone(&model));
        Ok((model, false))
    }

    /// Whether a model for `key` is currently cached (does not touch recency or stats).
    pub fn contains(&self, key: ModelKey) -> bool {
        self.entries.iter().any(|(k, _)| *k == key)
    }

    /// Number of cached models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop every cached model (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(seed: u64) -> Vec<GemColumn> {
        (0..4)
            .map(|c| {
                GemColumn::new(
                    (0..50)
                        .map(|i| (seed * 100 + c * 10) as f64 + (i % 13) as f64)
                        .collect(),
                    format!("col_{seed}_{c}"),
                )
            })
            .collect()
    }

    #[test]
    fn hit_miss_and_stats() {
        let mut cache = ModelCache::new(2);
        let cfg = GemConfig::fast();
        let (_, hit) = cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(!hit);
        let (_, hit) = cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(hit);
        assert_eq!(cache.stats().hits, 1);
        // get_or_fit's internal lookup on the cold call counted one miss.
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        assert_eq!(cache.capacity(), 2);
    }

    #[test]
    fn same_corpus_different_config_is_a_different_entry() {
        let mut cache = ModelCache::new(4);
        let cfg = GemConfig::fast();
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        let (_, hit) = cache.get_or_fit(&corpus(1), &cfg, FeatureSet::d()).unwrap();
        assert!(!hit, "feature-set change must miss");
        let mut other = cfg.clone();
        other.gmm.n_components += 1;
        let (_, hit) = cache
            .get_or_fit(&corpus(1), &other, FeatureSet::ds())
            .unwrap();
        assert!(!hit, "component-count change must miss");
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn data_change_is_a_different_entry() {
        let mut cache = ModelCache::new(4);
        let cfg = GemConfig::fast();
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        let mut perturbed = corpus(1);
        perturbed[0].values[7] += 1e-9;
        let (_, hit) = cache
            .get_or_fit(&perturbed, &cfg, FeatureSet::ds())
            .unwrap();
        assert!(!hit, "a single perturbed value must miss");
    }

    #[test]
    fn lru_eviction_drops_the_least_recently_used() {
        let mut cache = ModelCache::new(2);
        let cfg = GemConfig::fast();
        let k1 = model_key(&corpus(1), &cfg, FeatureSet::ds());
        let k2 = model_key(&corpus(2), &cfg, FeatureSet::ds());
        let k3 = model_key(&corpus(3), &cfg, FeatureSet::ds());
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        cache
            .get_or_fit(&corpus(2), &cfg, FeatureSet::ds())
            .unwrap();
        // Touch corpus 1 so corpus 2 becomes least recently used.
        assert!(cache.get(k1).is_some());
        cache
            .get_or_fit(&corpus(3), &cfg, FeatureSet::ds())
            .unwrap();
        assert!(cache.contains(k1));
        assert!(!cache.contains(k2), "LRU entry must be evicted");
        assert!(cache.contains(k3));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failed_fits_are_not_cached() {
        let mut cache = ModelCache::new(2);
        let cfg = GemConfig::fast();
        let empty = vec![GemColumn::values_only(vec![])];
        assert!(cache.get_or_fit(&empty, &cfg, FeatureSet::ds()).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_keeps_counters() {
        let mut cache = ModelCache::new(2);
        let cfg = GemConfig::fast();
        cache
            .get_or_fit(&corpus(1), &cfg, FeatureSet::ds())
            .unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        ModelCache::new(0);
    }
}
