//! Deterministic synthetic corpora for demos, CLIs and smoke tests.
//!
//! One definition shared by the `gem-client gen-corpus` subcommand, the serving
//! examples and the CI smoke test, so the demo data cannot silently diverge between
//! surfaces. No RNG — plain integer arithmetic — so the same arguments produce the same
//! corpus (and therefore the same model fingerprint) on every machine.

use gem_core::GemColumn;

/// A deterministic synthetic corpus: `n_columns` columns × `rows` values, cycling
/// through four semantic families (ages, prices, ranks, years) with headers like
/// `age_0`, `price_1`, … — enough spread for a meaningful GMM fit. `seed` perturbs the
/// per-column phase so different seeds produce different (but still deterministic)
/// corpora.
pub fn synthetic_corpus(n_columns: usize, rows: usize, seed: u64) -> Vec<GemColumn> {
    let mut columns = Vec::with_capacity(n_columns);
    for c in 0..n_columns {
        let family = c % 4;
        let s = (seed + c as u64) % 97;
        let value = |i: usize| -> f64 {
            let i = i as u64;
            match family {
                0 => 18.0 + ((i * 7 + s) % 60) as f64,
                1 => 9_000.0 + 410.0 * ((i * 3 + s) % 70) as f64,
                2 => 1.0 + ((i * 11 + s) % 100) as f64,
                _ => 1950.0 + ((i + s) % 74) as f64,
            }
        };
        let header = match family {
            0 => format!("age_{c}"),
            1 => format!("price_{c}"),
            2 => format!("rank_{c}"),
            _ => format!("year_{c}"),
        };
        columns.push(GemColumn::new((0..rows).map(value).collect(), header));
    }
    columns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_corpus_is_deterministic_and_seed_sensitive() {
        let a = synthetic_corpus(8, 20, 3);
        let b = synthetic_corpus(8, 20, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|c| c.values.len() == 20));
        assert_eq!(a[0].header, "age_0");
        assert_eq!(a[1].header, "price_1");
        let other = synthetic_corpus(8, 20, 4);
        assert_ne!(a, other, "different seeds produce different corpora");
    }
}
