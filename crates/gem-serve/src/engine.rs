//! The batch engine: group incoming embed requests by the model they need, fit each
//! distinct model at most once, and fan the transforms out across threads.
//!
//! A naive server would fit one model per request; under real traffic most requests in a
//! batch share a corpus (the data lake being searched), so the engine pays one EM fit per
//! *distinct* (corpus, configuration) pair per cache miss — the amortise-by-caching move
//! that makes repeated serving tractable. Distinct cold models are themselves fitted in
//! parallel, and every transform in the batch runs in parallel, both via `gem-parallel`.
//!
//! **Fits are single-flight across concurrent callers.** With many executor threads
//! serving one engine (the worker-pool server), N simultaneous requests for the same
//! missing key must not pay N EM fits: the first caller becomes the *leader* and fits;
//! the rest *coalesce* — they block on the leader's in-flight entry and receive the
//! very same `Arc<GemModel>` (counted in [`CacheStats::coalesced_fits`]). The leader
//! publishes to the cache *before* retiring its in-flight entry, and a new leader
//! re-checks the cache after taking leadership, so exactly one cold fit happens per key
//! no matter how the threads interleave.

use crate::cache::{CachePolicy, CacheStats, CacheTier, ModelCache};
use crate::fingerprint::ModelKey;
use gem_core::{FeatureSet, GemColumn, GemConfig, GemEmbedding, GemError, GemModel};
use gem_store::ModelStore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One embed request: embed `queries` against the model fitted on `corpus` (or embed the
/// corpus itself when `queries` is `None`). The corpus is shared behind an [`Arc`] so
/// many requests against the same corpus don't duplicate it.
#[derive(Debug, Clone)]
pub struct EngineRequest {
    /// Pipeline configuration of the model to fit (or reuse).
    pub config: GemConfig,
    /// Feature set of the model to fit (or reuse).
    pub features: FeatureSet,
    /// The corpus defining the model.
    pub corpus: Arc<Vec<GemColumn>>,
    /// Columns to embed against the model; `None` embeds the corpus itself.
    pub queries: Option<Vec<GemColumn>>,
}

impl EngineRequest {
    /// A request that embeds the corpus itself.
    pub fn corpus_only(
        config: GemConfig,
        features: FeatureSet,
        corpus: Arc<Vec<GemColumn>>,
    ) -> Self {
        EngineRequest {
            config,
            features,
            corpus,
            queries: None,
        }
    }

    /// A request that embeds `queries` against the model fitted on `corpus`.
    pub fn with_queries(
        config: GemConfig,
        features: FeatureSet,
        corpus: Arc<Vec<GemColumn>>,
        queries: Vec<GemColumn>,
    ) -> Self {
        EngineRequest {
            config,
            features,
            corpus,
            queries: Some(queries),
        }
    }
}

/// Where the model that served a request came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// This batch fitted the model (or the fit failed).
    ColdFit,
    /// The model was resident in the in-memory cache.
    MemoryCache,
    /// The model was rehydrated from the on-disk store (warm start: deserialisation
    /// instead of an EM re-fit).
    DiskStore,
}

impl ServedFrom {
    /// The stable wire rendering used by the serving protocol (`gem-proto`).
    pub fn wire_name(self) -> &'static str {
        match self {
            ServedFrom::ColdFit => "cold_fit",
            ServedFrom::MemoryCache => "memory_cache",
            ServedFrom::DiskStore => "disk_store",
        }
    }

    /// Parse a [`ServedFrom::wire_name`] rendering.
    pub fn from_wire_name(name: &str) -> Option<Self> {
        match name {
            "cold_fit" => Some(ServedFrom::ColdFit),
            "memory_cache" => Some(ServedFrom::MemoryCache),
            "disk_store" => Some(ServedFrom::DiskStore),
            _ => None,
        }
    }
}

impl From<CacheTier> for ServedFrom {
    fn from(tier: CacheTier) -> Self {
        match tier {
            CacheTier::Memory => ServedFrom::MemoryCache,
            CacheTier::Disk => ServedFrom::DiskStore,
        }
    }
}

/// One fit-only job for [`BatchEngine::fit_models`]: materialise (or reuse) the model
/// `key` addresses, without transforming anything — the request shape behind the
/// protocol's fit-once/embed-by-handle split.
#[derive(Debug, Clone)]
pub struct FitJob {
    /// The model key (callers compute it once so it can double as the returned handle).
    pub key: ModelKey,
    /// The corpus defining the model.
    pub corpus: Arc<Vec<GemColumn>>,
    /// Pipeline configuration of the model.
    pub config: GemConfig,
    /// Feature set of the model.
    pub features: FeatureSet,
}

/// The outcome of one request.
#[derive(Debug)]
pub struct EngineResponse {
    /// The embedding (or the fit/transform error).
    pub embedding: Result<GemEmbedding, GemError>,
    /// Whether a fit was avoided — the model came from either cache tier (`false` when
    /// this batch fitted it, or when the fit failed).
    pub cache_hit: bool,
    /// Which tier (or cold fit) produced the model.
    pub served_from: ServedFrom,
}

/// One in-flight fit: the leader computes, concurrent duplicates block on the condvar
/// until the outcome is published and then share it.
#[derive(Debug, Default)]
struct InFlightFit {
    outcome: Mutex<Option<Result<Arc<GemModel>, GemError>>>,
    done: Condvar,
}

impl InFlightFit {
    fn publish(&self, result: Result<Arc<GemModel>, GemError>) {
        *crate::sync::lock_or_recover(&self.outcome) = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Arc<GemModel>, GemError> {
        let mut outcome = crate::sync::lock_or_recover(&self.outcome);
        while outcome.is_none() {
            outcome = crate::sync::wait_or_recover(&self.done, outcome);
        }
        outcome.clone().expect("loop guard ensures an outcome")
    }
}

/// Groups requests per model, fits each distinct cold model once (in parallel), caches
/// the fits, and fans all transforms out across threads.
#[derive(Debug)]
pub struct BatchEngine {
    cache: Mutex<ModelCache>,
    parallel: bool,
    /// Single-flight registry: keys whose fit is currently being computed, shared so
    /// concurrent callers coalesce instead of re-fitting (see the module docs).
    in_flight_fits: Mutex<HashMap<ModelKey, Arc<InFlightFit>>>,
    /// How many fits coalesced onto another caller's computation.
    coalesced_fits: AtomicU64,
    /// Total microseconds spent inside cold-fit EM runs (leaders only — coalesced
    /// callers, cache hits, warm starts and incremental updates add nothing).
    fit_micros: AtomicU64,
    /// Total EM iterations across those fits' winning restarts.
    em_iterations: AtomicU64,
    /// Lineage-save failures from `fit_update` (folded into the merged stats'
    /// `store_errors`; the update itself still succeeds — the store is best-effort).
    update_store_errors: AtomicU64,
}

impl BatchEngine {
    /// An engine whose cache holds at most `cache_capacity` fitted models.
    ///
    /// # Panics
    /// Panics when `cache_capacity` is zero.
    pub fn new(cache_capacity: usize) -> Self {
        Self::with_policy(CachePolicy::with_capacity(cache_capacity))
    }

    /// An engine with a full cache eviction policy (capacity, TTL, memory bound).
    ///
    /// # Panics
    /// Panics when `policy.capacity` is zero.
    pub fn with_policy(policy: CachePolicy) -> Self {
        BatchEngine {
            cache: Mutex::new(ModelCache::with_policy(policy)),
            parallel: true,
            in_flight_fits: Mutex::new(HashMap::new()),
            coalesced_fits: AtomicU64::new(0),
            fit_micros: AtomicU64::new(0),
            em_iterations: AtomicU64::new(0),
            update_store_errors: AtomicU64::new(0),
        }
    }

    /// Attach an on-disk store as the cache's second tier: evictions spill to it and
    /// misses warm-start from it before falling back to a cold fit.
    pub fn with_store(self, store: Arc<ModelStore>) -> Self {
        let cache = self
            .cache
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .with_store(store);
        BatchEngine {
            cache: Mutex::new(cache),
            parallel: self.parallel,
            in_flight_fits: self.in_flight_fits,
            coalesced_fits: self.coalesced_fits,
            fit_micros: self.fit_micros,
            em_iterations: self.em_iterations,
            update_store_errors: self.update_store_errors,
        }
    }

    /// Disable (or re-enable) the thread fan-out; results are identical either way.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Insert an externally produced model (a `PushModel` snapshot) under `key`, making
    /// the handle resolvable exactly as if this engine had fitted it; any eviction the
    /// insert causes spills off-lock as usual.
    pub fn publish(&self, key: ModelKey, model: Arc<GemModel>) {
        let spills = {
            let mut cache = crate::sync::lock_or_recover(&self.cache);
            cache.insert(key, model);
            cache.take_pending_spills()
        };
        for task in spills {
            task.execute();
        }
    }

    /// Materialise the model for a key that missed both cache tiers, single-flight:
    /// exactly one concurrent caller (the leader) runs the EM fit and publishes it; the
    /// rest coalesce onto that computation and share its `Arc`. Returns the outcome and
    /// its provenance — `ColdFit` only for the leader that actually fitted, so "number
    /// of cold fits" counts EM runs exactly.
    fn fit_single_flight(
        &self,
        key: ModelKey,
        corpus: &[GemColumn],
        config: &GemConfig,
        features: FeatureSet,
    ) -> (Result<Arc<GemModel>, GemError>, ServedFrom) {
        self.single_flight(key, || {
            let started = std::time::Instant::now();
            let model = GemModel::fit(corpus, config, features)?;
            // Leader-only accounting: this is exactly the time (and iteration count)
            // the fused EM kernels ran — hits, warm starts and coalesced callers never
            // reach this closure.
            self.fit_micros
                .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
            self.em_iterations
                .fetch_add(model.em_iterations() as u64, Ordering::Relaxed);
            Ok(model)
        })
    }

    /// The single-flight protocol around an arbitrary model-producing computation:
    /// exactly one concurrent caller per key (the leader) runs `produce` and publishes
    /// the result to the cache; the rest coalesce and share its `Arc`.
    fn single_flight(
        &self,
        key: ModelKey,
        produce: impl FnOnce() -> Result<GemModel, GemError>,
    ) -> (Result<Arc<GemModel>, GemError>, ServedFrom) {
        // Join (or open) the key's in-flight entry.
        let (flight, leader) = {
            let mut in_flight = crate::sync::lock_or_recover(&self.in_flight_fits);
            match in_flight.get(&key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(InFlightFit::default());
                    in_flight.insert(key, Arc::clone(&flight));
                    (flight, true)
                }
            }
        };
        if !leader {
            // Coalesce: block until the leader's outcome, then share it. By the time
            // the wait returns the model is resident (the leader publishes before
            // retiring its entry), so the provenance is the memory tier.
            self.coalesced_fits.fetch_add(1, Ordering::Relaxed);
            let result = flight.wait();
            let served_from = if result.is_ok() {
                ServedFrom::MemoryCache
            } else {
                ServedFrom::ColdFit // a shared *failure* is still the fit's failure
            };
            return (result, served_from);
        }
        // Leader. Re-check the cache stats-free first: a previous leader may have
        // published between this caller's lookup miss and its taking leadership (the
        // registry entry is removed only after the cache insert, so a completed fit
        // cannot hide from this peek). This too is a coalesced fit — the work was done
        // by another request's computation — so the counter keeps the exact invariant
        // "duplicate fits = hits + coalesced_fits".
        let already = crate::sync::lock_or_recover(&self.cache).peek(key);
        if let Some(model) = already {
            self.coalesced_fits.fetch_add(1, Ordering::Relaxed);
            flight.publish(Ok(Arc::clone(&model)));
            self.retire_flight(key);
            return (Ok(model), ServedFrom::MemoryCache);
        }
        let result = produce().map(Arc::new);
        if let Ok(model) = &result {
            self.publish(key, Arc::clone(model));
        }
        flight.publish(result.clone());
        self.retire_flight(key);
        (result, ServedFrom::ColdFit)
    }

    fn retire_flight(&self, key: ModelKey) {
        crate::sync::lock_or_recover(&self.in_flight_fits).remove(&key);
    }

    /// Process a batch of requests, returning one response per request in input order.
    ///
    /// Phases:
    /// 1. key every request and look the keys up in the cache (one short lock),
    /// 2. fit each *distinct* missing model, fanning distinct fits out across threads,
    /// 3. publish successful fits to the cache (second short lock),
    /// 4. fan every transform out across threads against the shared frozen models.
    ///
    /// The cache lock is never held while fitting or transforming.
    pub fn run(&self, requests: &[EngineRequest]) -> Vec<EngineResponse> {
        // Corpus fingerprints cost O(total values); requests in a batch usually share
        // their corpus behind one Arc, so hash each distinct allocation once and reuse
        // the digest for every aliasing request.
        let mut corpus_fps: Vec<u64> = Vec::with_capacity(requests.len());
        for (i, request) in requests.iter().enumerate() {
            let fp = match requests[..i]
                .iter()
                .position(|earlier| Arc::ptr_eq(&earlier.corpus, &request.corpus))
            {
                Some(j) => corpus_fps[j],
                None => crate::fingerprint::corpus_fingerprint(&request.corpus),
            };
            corpus_fps.push(fp);
        }
        let keys: Vec<ModelKey> = requests
            .iter()
            .zip(&corpus_fps)
            .map(|(r, &corpus)| ModelKey {
                corpus,
                config: crate::fingerprint::config_fingerprint(&r.config, r.features),
            })
            .collect();

        // Phase 1: cache lookups, both tiers (a disk warm-start is a deserialisation,
        // far cheaper than the EM fit it replaces, so it stays inside the lock). Spill
        // *writes* queued by warm-start evictions run after the lock drops.
        let mut resolved: Vec<Option<(Arc<GemModel>, CacheTier)>> =
            Vec::with_capacity(requests.len());
        let spills = {
            let mut cache = crate::sync::lock_or_recover(&self.cache);
            for &key in &keys {
                resolved.push(cache.get_with_tier(key));
            }
            cache.take_pending_spills()
        };
        for task in spills {
            task.execute();
        }

        // Phase 2+3: one representative request per distinct missing key, each run
        // through the single-flight protocol (the leader fits and publishes to the
        // cache; duplicates racing in from other threads coalesce), distinct keys
        // fanned out across threads.
        let mut missing: Vec<(ModelKey, &EngineRequest)> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            if resolved[i].is_none() && !missing.iter().any(|(k, _)| *k == keys[i]) {
                missing.push((keys[i], request));
            }
        }
        let fitted: Vec<(ModelKey, Result<Arc<GemModel>, GemError>, ServedFrom)> =
            gem_parallel::par_map(&missing, self.parallel, |(key, request)| {
                let (result, served_from) = self.fit_single_flight(
                    *key,
                    &request.corpus,
                    &request.config,
                    request.features,
                );
                (*key, result, served_from)
            });

        // Phase 4: transforms, fanned out over the whole batch.
        let jobs: Vec<(usize, Result<Arc<GemModel>, GemError>, ServedFrom)> = resolved
            .into_iter()
            .enumerate()
            .map(|(i, cached)| match cached {
                Some((model, CacheTier::Memory)) => (i, Ok(model), ServedFrom::MemoryCache),
                Some((model, CacheTier::Disk)) => (i, Ok(model), ServedFrom::DiskStore),
                None => {
                    let (fit, served_from) = fitted
                        .iter()
                        .find(|(k, _, _)| *k == keys[i])
                        .map(|(_, r, sf)| (r.clone(), *sf))
                        .expect("every missing key was fitted");
                    (i, fit, served_from)
                }
            })
            .collect();
        gem_parallel::par_map(&jobs, self.parallel, |(i, model, served_from)| {
            let request = &requests[*i];
            let embedding =
                model
                    .as_ref()
                    .map_err(GemError::clone)
                    .and_then(|m| match &request.queries {
                        Some(queries) => m.transform(queries),
                        None => m.transform(&request.corpus),
                    });
            EngineResponse {
                embedding,
                cache_hit: !matches!(served_from, ServedFrom::ColdFit),
                served_from: *served_from,
            }
        })
    }

    /// Convenience: run a single request.
    pub fn run_one(&self, request: EngineRequest) -> EngineResponse {
        self.run(std::slice::from_ref(&request))
            .into_iter()
            .next()
            .expect("one response per request")
    }

    /// Resolve `key` through both cache tiers — memory, then the attached store — and
    /// report which tier satisfied it. **Never fits**: a model that exists in neither
    /// tier is `None`, which the serving layer surfaces as its typed `UnknownModel`
    /// error. This is the lookup behind embed-by-handle.
    pub fn resolve(&self, key: ModelKey) -> Option<(Arc<GemModel>, CacheTier)> {
        let (found, spills) = {
            let mut cache = crate::sync::lock_or_recover(&self.cache);
            let found = cache.get_with_tier(key);
            (found, cache.take_pending_spills())
        };
        for task in spills {
            task.execute();
        }
        found
    }

    /// Materialise the model behind every job: cache hit, disk warm-start, or — for keys
    /// in neither tier — one fit per *distinct* key, distinct fits fanned out across
    /// threads. Returns one `(model, provenance)` result per job, in input order.
    /// Successful fits are published to the cache; eviction spill writes run off-lock.
    pub fn fit_models(
        &self,
        jobs: &[FitJob],
    ) -> Vec<(Result<Arc<GemModel>, GemError>, ServedFrom)> {
        // Lookup pass (one lock).
        let mut resolved: Vec<Option<(Arc<GemModel>, CacheTier)>> = Vec::with_capacity(jobs.len());
        let spills = {
            let mut cache = crate::sync::lock_or_recover(&self.cache);
            for job in jobs {
                resolved.push(cache.get_with_tier(job.key));
            }
            cache.take_pending_spills()
        };
        for task in spills {
            task.execute();
        }
        // One representative job per distinct missing key; each runs the single-flight
        // protocol (leader fits and publishes, concurrent duplicates — typically the
        // same Fit arriving on many executor threads — coalesce), distinct keys in
        // parallel.
        let mut missing: Vec<&FitJob> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            if resolved[i].is_none() && !missing.iter().any(|m| m.key == job.key) {
                missing.push(job);
            }
        }
        let fitted: Vec<(ModelKey, Result<Arc<GemModel>, GemError>, ServedFrom)> =
            gem_parallel::par_map(&missing, self.parallel, |job| {
                let (result, served_from) =
                    self.fit_single_flight(job.key, &job.corpus, &job.config, job.features);
                (job.key, result, served_from)
            });
        jobs.iter()
            .zip(resolved)
            .map(|(job, cached)| match cached {
                Some((model, tier)) => (Ok(model), ServedFrom::from(tier)),
                None => fitted
                    .iter()
                    .find(|(k, _, _)| *k == job.key)
                    .map(|(_, r, sf)| (r.clone(), *sf))
                    .expect("every missing key was fitted"),
            })
            .collect()
    }

    /// Fold `new_columns` into the fitted model `parent` names: resolve the parent
    /// through both cache tiers, derive the updated model with
    /// [`GemModel::fit_update`] (frozen components, no EM run — cost proportional to
    /// the *new* columns), and publish it under [`gem_store::updated_model_key`]'s
    /// chain-sensitive key. Returns `None` when the parent resolves in neither tier
    /// (the serving layer's typed `UnknownModel`); otherwise the derived key, the
    /// model (or the update error) and its provenance — `ColdFit` when this call did
    /// the incremental work, a cache tier when an identical update already happened.
    ///
    /// Updates are single-flight like fits, and the lineage (`parent`) is recorded in
    /// the store tier *before* the derived model becomes resolvable; later eviction
    /// spills skip keys that already have a snapshot, so the parent pointer survives.
    pub fn fit_update(
        &self,
        parent: ModelKey,
        new_columns: &[GemColumn],
    ) -> Option<(ModelKey, Result<Arc<GemModel>, GemError>, ServedFrom)> {
        let (parent_model, _) = self.resolve(parent)?;
        let key = gem_store::updated_model_key(parent, new_columns);
        if let Some((model, tier)) = self.resolve(key) {
            return Some((key, Ok(model), ServedFrom::from(tier)));
        }
        let (result, served_from) = self.single_flight(key, || {
            let updated = parent_model.fit_update(new_columns)?;
            if let Some(store) = self.store() {
                if store.save_with_parent(key, Some(parent), &updated).is_err() {
                    // Best-effort like every store write: the update still succeeds,
                    // the failure is visible in the merged stats.
                    self.update_store_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(updated)
        });
        Some((key, result, served_from))
    }

    /// Remove `key` from both cache tiers (resident entry, queued spill, on-disk
    /// snapshot). Returns whether the key existed in either tier. The memory tier is
    /// cleared under the lock; the snapshot unlink — filesystem I/O — runs after the
    /// lock drops, like every other store operation in this engine.
    pub fn evict(&self, key: ModelKey) -> bool {
        let (in_memory, task) = crate::sync::lock_or_recover(&self.cache).evict_resident(key);
        let on_disk = task.is_some_and(crate::cache::EvictTask::execute);
        in_memory || on_disk
    }

    /// The resident models, most recently used first.
    pub fn resident_models(&self) -> Vec<(ModelKey, Arc<GemModel>)> {
        crate::sync::lock_or_recover(&self.cache).resident_models()
    }

    /// One-lock consistent snapshot of the memory tier: cumulative counters, resident
    /// model count, and approximate resident bytes — so a stats report can never show a
    /// count and a byte total from two different instants.
    pub fn cache_snapshot(&self) -> (CacheStats, usize, u64) {
        let cache = crate::sync::lock_or_recover(&self.cache);
        (
            self.merge_engine_stats(cache.stats()),
            cache.len(),
            cache.approx_bytes(),
        )
    }

    /// Overlay the engine-owned counters (single-flight coalescing, fit cost, lineage
    /// write failures) onto the cache's. The fit-cost pair lives on the engine because
    /// only the single-flight leader knows how long the EM run took; lineage-save
    /// failures fold into `store_errors` so one counter covers every store write.
    fn merge_engine_stats(&self, mut stats: CacheStats) -> CacheStats {
        stats.coalesced_fits = self.coalesced_fits.load(Ordering::Relaxed);
        stats.fit_micros = self.fit_micros.load(Ordering::Relaxed);
        stats.em_iterations = self.em_iterations.load(Ordering::Relaxed);
        stats.store_errors = stats
            .store_errors
            .saturating_add(self.update_store_errors.load(Ordering::Relaxed));
        stats
    }

    /// The attached store tier, if any.
    pub fn store(&self) -> Option<Arc<ModelStore>> {
        crate::sync::lock_or_recover(&self.cache)
            .store()
            .map(Arc::clone)
    }

    /// Cumulative cache counters, including the engine's single-flight
    /// [`CacheStats::coalesced_fits`].
    pub fn cache_stats(&self) -> CacheStats {
        let stats = crate::sync::lock_or_recover(&self.cache).stats();
        self.merge_engine_stats(stats)
    }

    /// Number of models currently cached.
    pub fn cached_models(&self) -> usize {
        crate::sync::lock_or_recover(&self.cache).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(seed: u64) -> Arc<Vec<GemColumn>> {
        Arc::new(
            (0..5)
                .map(|c| {
                    GemColumn::new(
                        (0..60)
                            .map(|i| (seed * 1000 + c * 37) as f64 + (i % 11) as f64 * 0.5)
                            .collect(),
                        format!("col_{seed}_{c}"),
                    )
                })
                .collect(),
        )
    }

    fn queries() -> Vec<GemColumn> {
        vec![GemColumn::new(
            (0..30).map(|i| 40.0 + (i % 9) as f64).collect(),
            "query",
        )]
    }

    #[test]
    fn one_fit_serves_a_whole_batch_against_the_same_corpus() {
        let engine = BatchEngine::new(4);
        let cfg = GemConfig::fast();
        let shared = corpus(1);
        let requests: Vec<EngineRequest> = (0..6)
            .map(|_| {
                EngineRequest::with_queries(
                    cfg.clone(),
                    FeatureSet::ds(),
                    Arc::clone(&shared),
                    queries(),
                )
            })
            .collect();
        let responses = engine.run(&requests);
        assert_eq!(responses.len(), 6);
        for r in &responses {
            assert!(r.embedding.is_ok());
        }
        // All six requests shared one fit: one model cached, zero hits yet (the batch
        // grouped them before the cache ever saw the key).
        assert_eq!(engine.cached_models(), 1);
        assert_eq!(engine.cache_stats().hits, 0);
        // A follow-up batch is a pure cache hit.
        let again = engine.run_one(EngineRequest::corpus_only(cfg, FeatureSet::ds(), shared));
        assert!(again.cache_hit);
        assert!(again.embedding.is_ok());
        assert_eq!(engine.cache_stats().hits, 1);
    }

    #[test]
    fn warm_transform_matches_one_shot_embed_exactly() {
        let engine = BatchEngine::new(2);
        let cfg = GemConfig::fast();
        let shared = corpus(2);
        let cold = engine.run_one(EngineRequest::corpus_only(
            cfg.clone(),
            FeatureSet::ds(),
            Arc::clone(&shared),
        ));
        assert!(!cold.cache_hit);
        let warm = engine.run_one(EngineRequest::corpus_only(
            cfg.clone(),
            FeatureSet::ds(),
            Arc::clone(&shared),
        ));
        assert!(warm.cache_hit);
        let direct = gem_core::GemEmbedder::new(cfg)
            .embed(&shared, FeatureSet::ds())
            .unwrap();
        assert_eq!(cold.embedding.unwrap().matrix, direct.matrix);
        assert_eq!(warm.embedding.unwrap().matrix, direct.matrix);
    }

    #[test]
    fn distinct_corpora_get_distinct_models() {
        let engine = BatchEngine::new(4).with_parallel(false);
        let cfg = GemConfig::fast();
        let requests = vec![
            EngineRequest::corpus_only(cfg.clone(), FeatureSet::ds(), corpus(1)),
            EngineRequest::corpus_only(cfg.clone(), FeatureSet::ds(), corpus(2)),
            EngineRequest::corpus_only(cfg, FeatureSet::ds(), corpus(1)),
        ];
        let responses = engine.run(&requests);
        assert!(responses.iter().all(|r| r.embedding.is_ok()));
        assert_eq!(engine.cached_models(), 2);
        // Requests 0 and 2 shared a fit within the batch.
        let (a, c) = (&responses[0], &responses[2]);
        assert_eq!(
            a.embedding.as_ref().unwrap().matrix,
            c.embedding.as_ref().unwrap().matrix
        );
    }

    #[test]
    fn failed_fits_propagate_to_every_request_in_the_group() {
        let engine = BatchEngine::new(2);
        let cfg = GemConfig::fast();
        let broken: Arc<Vec<GemColumn>> = Arc::new(vec![GemColumn::values_only(vec![])]);
        let requests = vec![
            EngineRequest::corpus_only(cfg.clone(), FeatureSet::ds(), Arc::clone(&broken)),
            EngineRequest::with_queries(cfg, FeatureSet::ds(), broken, queries()),
        ];
        let responses = engine.run(&requests);
        for r in responses {
            assert_eq!(r.embedding.unwrap_err(), GemError::NoValues);
            assert!(!r.cache_hit);
        }
        assert_eq!(engine.cached_models(), 0);
    }

    /// Removes the wrapped directory even when the test's assertions fail.
    struct DirGuard(std::path::PathBuf);

    impl Drop for DirGuard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn engine_warm_starts_from_the_store_across_restarts() {
        let dir = std::env::temp_dir().join(format!(
            "gem-serve-engine-test-{}-warm-start",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let _guard = DirGuard(dir.clone());
        let store = Arc::new(ModelStore::open(&dir).unwrap());
        let cfg = GemConfig::fast();
        let shared = corpus(7);

        // Process 1: fit, then force a spill by overflowing the capacity-1 cache.
        let engine = BatchEngine::new(1).with_store(Arc::clone(&store));
        let first = engine.run_one(EngineRequest::corpus_only(
            cfg.clone(),
            FeatureSet::ds(),
            Arc::clone(&shared),
        ));
        assert_eq!(first.served_from, ServedFrom::ColdFit);
        engine.run_one(EngineRequest::corpus_only(
            cfg.clone(),
            FeatureSet::ds(),
            corpus(8),
        ));
        assert_eq!(engine.cache_stats().spills, 1);

        // "Process 2": a fresh engine over the same store directory. The lookup
        // warm-starts from disk — no EM fit — and the output is bit-identical.
        let restarted = BatchEngine::new(4).with_store(store);
        let warm = restarted.run_one(EngineRequest::corpus_only(
            cfg,
            FeatureSet::ds(),
            Arc::clone(&shared),
        ));
        assert_eq!(warm.served_from, ServedFrom::DiskStore);
        assert!(warm.cache_hit);
        assert_eq!(restarted.cache_stats().warm_starts, 1);
        assert_eq!(restarted.cache_stats().misses, 0);
        assert_eq!(
            warm.embedding.unwrap().matrix,
            first.embedding.unwrap().matrix
        );
    }

    #[test]
    fn fit_update_derives_a_lineaged_handle_without_a_new_em_run() {
        let dir = std::env::temp_dir().join(format!(
            "gem-serve-engine-test-{}-fit-update",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let _guard = DirGuard(dir.clone());
        let store = Arc::new(ModelStore::open(&dir).unwrap());
        let engine = BatchEngine::new(4).with_store(Arc::clone(&store));
        let cfg = GemConfig::fast();
        let shared = corpus(11);
        let parent = crate::fingerprint::model_key(&shared, &cfg, FeatureSet::ds());
        let growth = vec![GemColumn::new(
            (0..60).map(|i| 500.0 + (i % 13) as f64 * 2.5).collect(),
            "grown",
        )];

        // An unknown parent is a typed miss, never a fabricated model.
        assert!(engine.fit_update(parent, &growth).is_none());

        let fitted = engine.fit_models(&[FitJob {
            key: parent,
            corpus: Arc::clone(&shared),
            config: cfg,
            features: FeatureSet::ds(),
        }]);
        assert!(fitted[0].0.is_ok());
        let after_fit = engine.cache_stats();
        assert!(after_fit.fit_micros > 0);
        assert!(after_fit.em_iterations > 0);

        let (key, updated, served_from) = engine.fit_update(parent, &growth).unwrap();
        let updated = updated.unwrap();
        assert_ne!(key, parent);
        assert_eq!(served_from, ServedFrom::ColdFit);
        assert_eq!(updated.n_fit_columns(), shared.len() + 1);
        // The update froze the parent's components: no EM ran, so the engine's
        // fit-cost counters did not move.
        let after_update = engine.cache_stats();
        assert_eq!(after_update.fit_micros, after_fit.fit_micros);
        assert_eq!(after_update.em_iterations, after_fit.em_iterations);
        // Lineage was written to the store tier before the handle became resolvable.
        assert_eq!(store.parent_of(key).unwrap(), Some(parent));

        // The same growth again is a pure cache hit on the derived key.
        let (key_again, hit, from_again) = engine.fit_update(parent, &growth).unwrap();
        assert_eq!(key_again, key);
        assert_eq!(from_again, ServedFrom::MemoryCache);
        assert!(Arc::ptr_eq(&hit.unwrap(), &updated));
    }

    #[test]
    fn engine_respects_a_full_cache_policy() {
        use std::time::Duration;
        let engine =
            BatchEngine::with_policy(crate::CachePolicy::with_capacity(4).ttl(Duration::ZERO));
        let cfg = GemConfig::fast();
        let shared = corpus(1);
        engine.run_one(EngineRequest::corpus_only(
            cfg.clone(),
            FeatureSet::ds(),
            Arc::clone(&shared),
        ));
        // Zero TTL: the follow-up request finds an expired entry and re-fits.
        let again = engine.run_one(EngineRequest::corpus_only(cfg, FeatureSet::ds(), shared));
        assert_eq!(again.served_from, ServedFrom::ColdFit);
        assert_eq!(engine.cache_stats().expirations, 1);
    }

    #[test]
    fn concurrent_duplicate_fits_coalesce_onto_one_em_run() {
        // Eight threads race the same cold Fit through one engine (the worker-pool
        // server's shape). Single-flight guarantees exactly one of them pays the EM
        // fit; the rest are either plain cache hits (they looked up after the leader
        // published) or coalesced onto the in-flight computation — and the accounting
        // is exact: duplicates = hits + coalesced_fits.
        const THREADS: usize = 8;
        let engine = BatchEngine::new(4);
        let cfg = GemConfig::fast();
        let shared = corpus(5);
        let barrier = std::sync::Barrier::new(THREADS);
        let outcomes: Vec<ServedFrom> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let (engine, cfg, shared, barrier) = (&engine, &cfg, &shared, &barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        let response = engine.run_one(EngineRequest::corpus_only(
                            cfg.clone(),
                            FeatureSet::ds(),
                            Arc::clone(shared),
                        ));
                        assert!(response.embedding.is_ok());
                        response.served_from
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let cold = outcomes
            .iter()
            .filter(|sf| **sf == ServedFrom::ColdFit)
            .count();
        assert_eq!(cold, 1, "exactly one EM fit across {THREADS}: {outcomes:?}");
        let stats = engine.cache_stats();
        assert_eq!(
            stats.coalesced_fits + stats.hits,
            (THREADS - 1) as u64,
            "every duplicate was a hit or coalesced: {stats:?}"
        );
        assert_eq!(engine.cached_models(), 1);
        // All eight callers hold the same fitted model, bit for bit (same Arc even).
        let again = engine.run_one(EngineRequest::corpus_only(cfg, FeatureSet::ds(), shared));
        assert!(again.cache_hit);
    }

    #[test]
    fn published_models_resolve_like_fitted_ones() {
        // The PushModel path: an externally produced model enters via publish() and
        // the handle resolves without this engine ever fitting.
        let engine = BatchEngine::new(4);
        let cfg = GemConfig::fast();
        let cols = corpus(6);
        let key = crate::fingerprint::model_key(&cols, &cfg, FeatureSet::ds());
        let model = Arc::new(GemModel::fit(&cols, &cfg, FeatureSet::ds()).unwrap());
        assert!(engine.resolve(key).is_none());
        engine.publish(key, Arc::clone(&model));
        let (resolved, tier) = engine.resolve(key).expect("published model resolves");
        assert_eq!(tier, CacheTier::Memory);
        assert!(Arc::ptr_eq(&resolved, &model));
    }

    #[test]
    fn parallel_and_serial_batches_agree() {
        let cfg = GemConfig::fast();
        let make_requests = || {
            vec![
                EngineRequest::corpus_only(cfg.clone(), FeatureSet::ds(), corpus(1)),
                EngineRequest::with_queries(cfg.clone(), FeatureSet::ds(), corpus(1), queries()),
                EngineRequest::corpus_only(cfg.clone(), FeatureSet::d(), corpus(2)),
            ]
        };
        let serial = BatchEngine::new(4)
            .with_parallel(false)
            .run(&make_requests());
        let parallel = BatchEngine::new(4).run(&make_requests());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(
                s.embedding.as_ref().unwrap().matrix,
                p.embedding.as_ref().unwrap().matrix
            );
        }
    }
}
