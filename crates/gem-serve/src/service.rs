//! The serving front-end: embed requests addressed to any registry method by name.
//!
//! [`EmbedService`] wraps a [`MethodRegistry`] (so every method in the workspace — Gem,
//! its variants, all baselines — is addressable by the same names the experiment
//! harnesses use) and a [`BatchEngine`]. Methods registered as *Gem variants* are served
//! through the fit/transform split and the fingerprint-keyed model cache: one EM fit per
//! distinct corpus, cache hits for everything after. All other methods are one-shot by
//! nature (they have no fit/transform seam) and are dispatched straight to the registry,
//! still fanned out across threads per batch.

use crate::cache::CachePolicy;
use crate::engine::{BatchEngine, EngineRequest, ServedFrom};
use gem_core::{
    gem_family_variants, FeatureSet, GemColumn, GemConfig, GemError, GemVariant, MethodRegistry,
};
use gem_numeric::Matrix;
use gem_store::ModelStore;
use std::sync::Arc;

/// One serving request: embed `queries` (or the corpus itself) with the method named
/// `method`, against the model fitted on `corpus` when the method supports the
/// fit/transform split.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Registry name of the method to run (e.g. `"Gem (D+S)"`, `"PLE"`).
    pub method: String,
    /// The corpus defining the model (and the embedding input when `queries` is `None`).
    pub corpus: Arc<Vec<GemColumn>>,
    /// Columns to embed; `None` embeds the corpus itself. Methods without a
    /// fit/transform seam embed these directly.
    pub queries: Option<Vec<GemColumn>>,
    /// Training labels for supervised methods.
    pub labels: Option<Vec<String>>,
}

impl ServeRequest {
    /// A request that embeds the corpus itself with `method`.
    pub fn new(method: impl Into<String>, corpus: Arc<Vec<GemColumn>>) -> Self {
        ServeRequest {
            method: method.into(),
            corpus,
            queries: None,
            labels: None,
        }
    }

    /// Builder-style query columns.
    pub fn with_queries(mut self, queries: Vec<GemColumn>) -> Self {
        self.queries = Some(queries);
        self
    }

    /// Builder-style supervised labels.
    pub fn with_labels(mut self, labels: Vec<String>) -> Self {
        self.labels = Some(labels);
        self
    }
}

/// The outcome of one serving request.
#[derive(Debug)]
pub struct ServeResponse {
    /// The method that was run.
    pub method: String,
    /// One embedding row per requested column, or the error.
    pub matrix: Result<Matrix, GemError>,
    /// Whether a cached model (either tier) served the request (always `false` for
    /// methods without a fit/transform seam).
    pub cache_hit: bool,
    /// Which tier produced the model — [`ServedFrom::ColdFit`] for methods without a
    /// fit/transform seam (they compute fresh by nature) and for unknown methods.
    pub served_from: ServedFrom,
}

/// Serves embed requests for any registered method by name, accelerating Gem variants
/// with the fingerprint-keyed model cache.
#[derive(Debug)]
pub struct EmbedService {
    registry: MethodRegistry,
    engine: BatchEngine,
    variants: Vec<GemVariant>,
    parallel: bool,
}

impl EmbedService {
    /// A service over `registry` whose model cache holds at most `cache_capacity` fitted
    /// models. Register Gem variants with [`EmbedService::register_gem_family`] (or
    /// [`EmbedService::register_gem_variant`]) to serve them through the cache.
    ///
    /// # Panics
    /// Panics when `cache_capacity` is zero.
    pub fn new(registry: MethodRegistry, cache_capacity: usize) -> Self {
        Self::with_policy(registry, CachePolicy::with_capacity(cache_capacity))
    }

    /// A service with a full cache eviction policy (capacity, TTL, memory bound).
    ///
    /// # Panics
    /// Panics when `policy.capacity` is zero.
    pub fn with_policy(registry: MethodRegistry, policy: CachePolicy) -> Self {
        EmbedService {
            registry,
            engine: BatchEngine::with_policy(policy),
            variants: Vec::new(),
            parallel: true,
        }
    }

    /// Attach an on-disk model store as the cache's second tier: models evicted from
    /// memory spill to it, and cache misses warm-start from it (deserialisation instead
    /// of an EM re-fit) before falling back to a cold fit.
    pub fn with_store(mut self, store: Arc<ModelStore>) -> Self {
        self.engine = self.engine.with_store(store);
        self
    }

    /// Disable (or re-enable) thread fan-out; results are identical either way.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.engine = self.engine.with_parallel(parallel);
        self.parallel = parallel;
        self
    }

    /// Register one Gem pipeline variant as cache-servable under `name`. Replaces an
    /// earlier variant with the same name.
    pub fn register_gem_variant(
        &mut self,
        name: impl Into<String>,
        config: GemConfig,
        features: FeatureSet,
    ) {
        let variant = GemVariant {
            name: name.into(),
            config,
            features,
            tags: &[],
        };
        match self.variants.iter_mut().find(|v| v.name == variant.name) {
            Some(existing) => *existing = variant,
            None => self.variants.push(variant),
        }
    }

    /// Register the whole Gem method family derived from `config` as cache-servable.
    /// The name → pipeline table comes from [`gem_core::gem_family_variants`] — the same
    /// single source of truth [`MethodRegistry::register_gem_family`] registers from —
    /// so the service and the registry can never disagree about what a name runs.
    pub fn register_gem_family(&mut self, config: &GemConfig) {
        for variant in gem_family_variants(config) {
            self.register_gem_variant(variant.name, variant.config, variant.features);
        }
    }

    /// All method names the service can run, in registry order.
    pub fn methods(&self) -> Vec<&str> {
        self.registry.names()
    }

    /// Whether `method` is served through the model cache.
    pub fn is_cache_served(&self, method: &str) -> bool {
        self.variants.iter().any(|v| v.name == method)
    }

    /// The underlying registry.
    pub fn registry(&self) -> &MethodRegistry {
        &self.registry
    }

    /// Cumulative model-cache counters.
    pub fn cache_stats(&self) -> crate::CacheStats {
        self.engine.cache_stats()
    }

    /// Process a batch of requests, returning one response per request in input order.
    ///
    /// Requests for cache-servable Gem variants are grouped per model and run through the
    /// [`BatchEngine`] (one fit per distinct corpus+configuration, transforms fanned out
    /// across threads); all other known methods are dispatched to the registry, also
    /// fanned out. Unknown names yield [`GemError::UnknownMethod`].
    pub fn serve(&self, requests: Vec<ServeRequest>) -> Vec<ServeResponse> {
        enum Plan {
            Engine {
                method: String,
                slot: usize,
            },
            Registry {
                method: String,
                corpus: Arc<Vec<GemColumn>>,
                queries: Option<Vec<GemColumn>>,
                labels: Option<Vec<String>>,
            },
            Unknown {
                method: String,
            },
        }
        // Requests are consumed: their corpus handles and query columns move into the
        // plan (no copies of column data on the serving path).
        let mut engine_requests: Vec<EngineRequest> = Vec::new();
        let plans: Vec<Plan> = requests
            .into_iter()
            .map(|request| {
                if let Some(variant) = self.variants.iter().find(|v| v.name == request.method) {
                    engine_requests.push(EngineRequest {
                        config: variant.config.clone(),
                        features: variant.features,
                        corpus: request.corpus,
                        queries: request.queries,
                    });
                    Plan::Engine {
                        method: request.method,
                        slot: engine_requests.len() - 1,
                    }
                } else if self.registry.get(&request.method).is_some() {
                    Plan::Registry {
                        method: request.method,
                        corpus: request.corpus,
                        queries: request.queries,
                        labels: request.labels,
                    }
                } else {
                    Plan::Unknown {
                        method: request.method,
                    }
                }
            })
            .collect();

        // The engine batch (fits + transforms) and the registry fan-out are independent,
        // so run them side by side: a mixed batch pays max(engine, registry) wall-clock,
        // not their sum. Registry-dispatched methods have no fit/transform seam.
        let (engine_out, registry_results): (_, Vec<Option<Result<Matrix, GemError>>>) =
            gem_parallel::join(
                || self.engine.run(&engine_requests),
                || {
                    gem_parallel::par_map(&plans, self.parallel, |plan| match plan {
                        Plan::Registry {
                            method,
                            corpus,
                            queries,
                            labels,
                        } => {
                            let columns: &[GemColumn] = match queries {
                                Some(queries) => queries,
                                None => corpus,
                            };
                            Some(
                                self.registry
                                    .require(method)
                                    .and_then(|m| m.embed(columns, labels.as_deref())),
                            )
                        }
                        _ => None,
                    })
                },
            );
        let mut engine_responses: Vec<Option<crate::EngineResponse>> =
            engine_out.into_iter().map(Some).collect();

        plans
            .into_iter()
            .zip(registry_results)
            .map(|(plan, registry_result)| match plan {
                Plan::Engine { method, slot } => {
                    let response = engine_responses[slot]
                        .take()
                        .expect("one engine response per engine request");
                    ServeResponse {
                        method,
                        matrix: response.embedding.map(|e| e.matrix),
                        cache_hit: response.cache_hit,
                        served_from: response.served_from,
                    }
                }
                Plan::Registry { method, .. } => ServeResponse {
                    method,
                    matrix: registry_result.expect("registry plan produced a result"),
                    cache_hit: false,
                    served_from: ServedFrom::ColdFit,
                },
                Plan::Unknown { method } => {
                    let err = GemError::UnknownMethod(method.clone());
                    ServeResponse {
                        method,
                        matrix: Err(err),
                        cache_hit: false,
                        served_from: ServedFrom::ColdFit,
                    }
                }
            })
            .collect()
    }

    /// Convenience: serve a single request.
    pub fn serve_one(&self, request: ServeRequest) -> ServeResponse {
        self.serve(vec![request])
            .into_iter()
            .next()
            .expect("one response per request")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_core::{ColumnEmbedder, GemEmbedder};

    fn corpus() -> Arc<Vec<GemColumn>> {
        Arc::new(
            (0..6)
                .map(|c| {
                    GemColumn::new(
                        (0..50)
                            .map(|i| (c * 80) as f64 + (i % 14) as f64 * 1.5)
                            .collect(),
                        format!("col_{c}"),
                    )
                })
                .collect(),
        )
    }

    struct Identity;

    impl ColumnEmbedder for Identity {
        fn name(&self) -> &str {
            "Identity"
        }

        fn embed_columns(&self, columns: &[GemColumn]) -> Result<Matrix, GemError> {
            Ok(Matrix::filled(columns.len(), 2, 1.0))
        }
    }

    fn service() -> EmbedService {
        let config = GemConfig::fast();
        let mut registry = MethodRegistry::with_gem(&config);
        registry.register_unsupervised(Identity, &[]);
        let mut service = EmbedService::new(registry, 4);
        service.register_gem_family(&config);
        service
    }

    #[test]
    fn gem_methods_are_cache_served_and_exact() {
        let service = service();
        assert!(service.is_cache_served("Gem (D+S)"));
        assert!(!service.is_cache_served("Identity"));
        let cold = service.serve_one(ServeRequest::new("Gem (D+S)", corpus()));
        assert!(!cold.cache_hit);
        let warm = service.serve_one(ServeRequest::new("Gem (D+S)", corpus()));
        assert!(warm.cache_hit);
        let direct = GemEmbedder::new(GemConfig::fast())
            .embed(&corpus(), FeatureSet::ds())
            .unwrap();
        assert_eq!(cold.matrix.unwrap(), direct.matrix);
        assert_eq!(warm.matrix.unwrap(), direct.matrix);
        assert_eq!(service.cache_stats().hits, 1);
    }

    #[test]
    fn non_gem_methods_dispatch_to_the_registry() {
        let service = service();
        let response = service.serve_one(ServeRequest::new("Identity", corpus()));
        assert!(!response.cache_hit);
        let m = response.matrix.unwrap();
        assert_eq!(m.shape(), (corpus().len(), 2));
    }

    #[test]
    fn unknown_methods_error_without_disturbing_the_batch() {
        let service = service();
        let responses = service.serve(vec![
            ServeRequest::new("Gem (D+S)", corpus()),
            ServeRequest::new("no-such-method", corpus()),
            ServeRequest::new("Identity", corpus()),
        ]);
        assert!(responses[0].matrix.is_ok());
        assert!(matches!(
            responses[1].matrix,
            Err(GemError::UnknownMethod(_))
        ));
        assert!(responses[2].matrix.is_ok());
        assert_eq!(responses[1].method, "no-such-method");
    }

    #[test]
    fn queries_are_embedded_against_the_cached_corpus_model() {
        let service = service();
        // Warm the model.
        service.serve_one(ServeRequest::new("Gem (D+S)", corpus()));
        let queries = vec![GemColumn::new(
            (0..25).map(|i| 100.0 + (i % 7) as f64).collect(),
            "unseen",
        )];
        let response = service
            .serve_one(ServeRequest::new("Gem (D+S)", corpus()).with_queries(queries.clone()));
        assert!(response.cache_hit);
        let m = response.matrix.unwrap();
        assert_eq!(m.rows(), 1);
        assert!(m.all_finite());
        // The width matches the corpus embedding space, as a serving index requires.
        let corpus_emb = service
            .serve_one(ServeRequest::new("Gem (D+S)", corpus()))
            .matrix
            .unwrap();
        assert_eq!(m.cols(), corpus_emb.cols());
    }

    #[test]
    fn supervised_methods_run_with_labels_through_the_service() {
        let config = GemConfig::fast();
        let mut registry = MethodRegistry::with_gem(&config);
        gem_baselines_stub(&mut registry);
        let service = EmbedService::new(registry, 2);
        let cols = corpus();
        let labels: Vec<String> = (0..cols.len()).map(|i| format!("t{}", i % 2)).collect();
        let ok = service
            .serve_one(ServeRequest::new("StubSupervised", Arc::clone(&cols)).with_labels(labels));
        assert!(ok.matrix.is_ok());
        let missing = service.serve_one(ServeRequest::new("StubSupervised", cols));
        assert!(matches!(missing.matrix, Err(GemError::MissingLabels(_))));
    }

    fn gem_baselines_stub(registry: &mut MethodRegistry) {
        struct Stub;
        impl gem_core::SupervisedColumnEmbedder for Stub {
            fn name(&self) -> &str {
                "StubSupervised"
            }

            fn fit_embed(
                &self,
                columns: &[GemColumn],
                _labels: &[String],
            ) -> Result<Matrix, GemError> {
                Ok(Matrix::zeros(columns.len(), 3))
            }
        }
        registry.register_supervised(Stub, &["supervised"]);
    }

    #[test]
    fn every_registry_gem_method_is_cache_served() {
        // register_gem_family consumes gem_core::gem_family_variants — the same table the
        // registry registers from — so every Gem name the registry knows is cache-served.
        let service = service();
        for variant in gem_family_variants(&GemConfig::fast()) {
            assert!(service.is_cache_served(&variant.name), "{}", variant.name);
            assert!(
                service.methods().contains(&variant.name.as_str()),
                "{} not in registry",
                variant.name
            );
        }
    }

    /// Removes the wrapped directory even when the test's assertions fail.
    struct DirGuard(std::path::PathBuf);

    impl Drop for DirGuard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn service_warm_starts_from_an_attached_store() {
        let dir = std::env::temp_dir().join(format!(
            "gem-serve-service-test-{}-warm-start",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let _guard = DirGuard(dir.clone());
        let store = Arc::new(ModelStore::open(&dir).unwrap());
        let config = GemConfig::fast();
        let cols = corpus();

        // Incarnation 1: fit and spill by overflowing a capacity-1 cache.
        let mut service = EmbedService::with_policy(
            MethodRegistry::with_gem(&config),
            CachePolicy::with_capacity(1),
        )
        .with_store(Arc::clone(&store));
        service.register_gem_family(&config);
        let cold = service.serve_one(ServeRequest::new("Gem (D+S)", Arc::clone(&cols)));
        assert_eq!(cold.served_from, ServedFrom::ColdFit);
        service.serve_one(ServeRequest::new("Gem", Arc::clone(&cols))); // evicts + spills D+S
        assert!(service.cache_stats().spills >= 1);

        // Incarnation 2: a fresh service over the same store. The first request is a
        // disk warm start, not a re-fit, and the output is bit-identical.
        let mut restarted =
            EmbedService::new(MethodRegistry::with_gem(&config), 4).with_store(Arc::clone(&store));
        restarted.register_gem_family(&config);
        let warm = restarted.serve_one(ServeRequest::new("Gem (D+S)", Arc::clone(&cols)));
        assert_eq!(warm.served_from, ServedFrom::DiskStore);
        assert!(warm.cache_hit);
        assert_eq!(warm.matrix.unwrap(), cold.matrix.unwrap());
        assert_eq!(restarted.cache_stats().warm_starts, 1);
    }

    #[test]
    fn replacing_a_variant_updates_in_place() {
        let mut service = service();
        let n = service.methods().len();
        service.register_gem_variant("Gem (D+S)", GemConfig::fast(), FeatureSet::d());
        assert_eq!(service.methods().len(), n);
        assert!(service.is_cache_served("Gem (D+S)"));
    }
}
