//! The serving front-end: a typed, handle-based request protocol over the model cache.
//!
//! [`EmbedService`] wraps a [`MethodRegistry`] and a [`BatchEngine`] and answers
//! [`ServeRequest`]s — the same six-shape protocol `gem-proto` carries over a wire:
//!
//! * [`ServeRequest::Fit`] — fit (or reuse) the model for a corpus and return its
//!   [`ModelHandle`]. Fitting is idempotent: an identical corpus + configuration yields
//!   an identical handle, served from whichever cache tier already holds it.
//! * [`ServeRequest::Embed`] — embed query columns against the model a handle names.
//!   Handles are **resolved, never refitted**: the memory tier is consulted, then the
//!   store tier, and a miss is the typed [`ServeError::UnknownModel`] — the corpus is
//!   not on the wire, so a silent refit is impossible by construction.
//! * [`ServeRequest::EmbedCorpus`] — the one-shot path: embed a corpus (or queries
//!   against it) with any registry method by name. Gem pipeline variants registered via
//!   [`EmbedService::register_gem_family`] are served through the model cache; methods
//!   without a fit/transform seam compute fresh.
//! * [`ServeRequest::PushModel`] / [`ServeRequest::PullModel`] — snapshot shipping: a
//!   pulled model is the bit-exact `gem-store` envelope, and pushing it to another
//!   replica makes the same handle resolvable there **without refitting and without the
//!   corpus on the wire** (models travel as pre-verified artifacts).
//! * [`ServeRequest::Stats`], [`ServeRequest::ListModels`], [`ServeRequest::Evict`] —
//!   introspection and lifecycle control.
//!
//! Every outcome is a [`ServeResult`]: a typed [`ServeResponse`] or a [`ServeError`]
//! from the stable-coded taxonomy. Within one batch, control requests (including
//! push/pull) are applied first (in request order), then all fits, then all embeds — so
//! a `Fit` (or a `PushModel`) and an `Embed` of the resulting handle can share a batch.

use crate::cache::CachePolicy;
use crate::engine::{BatchEngine, EngineRequest, FitJob, ServedFrom};
use crate::error::ServeError;
use crate::fingerprint::model_key;
use crate::handle::ModelHandle;
use crate::CacheTier;
use gem_core::{
    gem_family_variants, Composition, FeatureSet, GemColumn, GemConfig, GemVariant, MethodRegistry,
};
use gem_numeric::Matrix;
use gem_store::ModelStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One serving request. See the [module docs](self) for the protocol shape; construct
/// variants with the [`ServeRequest::fit`], [`ServeRequest::fit_update`],
/// [`ServeRequest::embed`], [`ServeRequest::embed_corpus`] and [`ServeRequest::evict`]
/// conveniences.
#[derive(Debug, Clone)]
pub enum ServeRequest {
    /// Fit (or reuse) the model for `corpus` and return its handle.
    Fit {
        /// The corpus defining the model.
        corpus: Arc<Vec<GemColumn>>,
        /// Pipeline configuration to fit with.
        config: GemConfig,
        /// Which evidence types the model uses.
        features: FeatureSet,
        /// Optional composition override applied on top of `config`.
        composition: Option<Composition>,
    },
    /// Fold new corpus columns into the fitted model `handle` names, producing a
    /// derived model under a new handle without a from-scratch EM run. `corpus` holds
    /// the *new* columns only; the parent's components are frozen and reused, so every
    /// old-column embedding is bit-identical under the derived handle and the cost is
    /// proportional to corpus growth, not corpus size. The parent handle is recorded
    /// as lineage in the store tier. An unknown parent is `UnknownModel`, never a
    /// silent full fit.
    FitUpdate {
        /// Handle of the fitted model to grow from.
        handle: ModelHandle,
        /// The new columns only (not the full grown corpus).
        corpus: Arc<Vec<GemColumn>>,
    },
    /// Embed `queries` against the fitted model `handle` names.
    Embed {
        /// Handle returned by an earlier `Fit`.
        handle: ModelHandle,
        /// Columns to embed against the model.
        queries: Vec<GemColumn>,
    },
    /// One-shot: embed `queries` (or the corpus itself) with the registry method
    /// `method`, against the model fitted on `corpus` when the method has a
    /// fit/transform seam.
    EmbedCorpus {
        /// Registry name of the method to run (e.g. `"Gem (D+S)"`, `"PLE"`).
        method: String,
        /// The corpus defining the model (and the embedding input when `queries` is
        /// `None`).
        corpus: Arc<Vec<GemColumn>>,
        /// Columns to embed; `None` embeds the corpus itself.
        queries: Option<Vec<GemColumn>>,
        /// Training labels for supervised methods.
        labels: Option<Vec<String>>,
    },
    /// Install an externally produced model (a shipped snapshot) under `handle`,
    /// making the handle resolvable exactly as if this service had fitted it. The
    /// snapshot's header integrity is validated at the wire layer; the key is trusted
    /// like a store file's filename — snapshot shipping moves *pre-verified* artifacts
    /// between replicas.
    PushModel {
        /// Handle the snapshot's header names.
        handle: ModelHandle,
        /// The rehydrated model.
        model: Arc<gem_core::GemModel>,
    },
    /// Fetch the serialized snapshot of the model `handle` names (resolved, never
    /// fitted), for shipping to another replica or filing into a store directory.
    PullModel {
        /// Handle of the model to ship.
        handle: ModelHandle,
    },
    /// Report cumulative service statistics.
    Stats,
    /// List every model the service can currently resolve, across both cache tiers.
    ListModels,
    /// Remove the model `handle` names from both cache tiers.
    Evict {
        /// Handle of the model to remove.
        handle: ModelHandle,
    },
}

impl ServeRequest {
    /// A `Fit` request (no composition override).
    pub fn fit(corpus: Arc<Vec<GemColumn>>, config: GemConfig, features: FeatureSet) -> Self {
        ServeRequest::Fit {
            corpus,
            config,
            features,
            composition: None,
        }
    }

    /// A `FitUpdate` request: grow the model `handle` names by `corpus` (the new
    /// columns only).
    pub fn fit_update(handle: ModelHandle, corpus: Arc<Vec<GemColumn>>) -> Self {
        ServeRequest::FitUpdate { handle, corpus }
    }

    /// An `Embed` request.
    pub fn embed(handle: ModelHandle, queries: Vec<GemColumn>) -> Self {
        ServeRequest::Embed { handle, queries }
    }

    /// An `EmbedCorpus` request that embeds the corpus itself with `method`.
    pub fn embed_corpus(method: impl Into<String>, corpus: Arc<Vec<GemColumn>>) -> Self {
        ServeRequest::EmbedCorpus {
            method: method.into(),
            corpus,
            queries: None,
            labels: None,
        }
    }

    /// An `Evict` request.
    pub fn evict(handle: ModelHandle) -> Self {
        ServeRequest::Evict { handle }
    }

    /// Builder-style query columns (meaningful on `EmbedCorpus`; no-op otherwise).
    pub fn with_queries(mut self, new_queries: Vec<GemColumn>) -> Self {
        if let ServeRequest::EmbedCorpus { queries, .. } = &mut self {
            *queries = Some(new_queries);
        }
        self
    }

    /// Builder-style supervised labels (meaningful on `EmbedCorpus`; no-op otherwise).
    pub fn with_labels(mut self, new_labels: Vec<String>) -> Self {
        if let ServeRequest::EmbedCorpus { labels, .. } = &mut self {
            *labels = Some(new_labels);
        }
        self
    }

    /// Builder-style composition override (meaningful on `Fit`; no-op otherwise).
    pub fn with_composition(mut self, new_composition: Composition) -> Self {
        if let ServeRequest::Fit { composition, .. } = &mut self {
            *composition = Some(new_composition);
        }
        self
    }
}

/// Cumulative service statistics: the model-cache counters plus resident/store sizing
/// and the number of requests this service instance has processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Model-cache counters (hits, warm starts, spills, …).
    pub cache: crate::CacheStats,
    /// Models resident in the memory tier.
    pub resident_models: usize,
    /// Approximate bytes of the resident models.
    pub resident_bytes: u64,
    /// Snapshots in the store tier (`None` without a store, or when listing it failed).
    pub store_entries: Option<u64>,
    /// Total bytes of the store tier (`None` without a store, or on listing failure).
    pub store_bytes: Option<u64>,
    /// Requests processed by this service (every [`ServeRequest`] counts one).
    pub requests: u64,
}

/// One resolvable model, as listed by [`ServeRequest::ListModels`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// The model's handle.
    pub handle: ModelHandle,
    /// The *closest* tier holding it (memory shadows disk).
    pub tier: CacheTier,
    /// Embedding dimensionality — known for resident models, `None` for disk-only
    /// snapshots (reporting it would require deserialising every file).
    pub dim: Option<usize>,
    /// Approximate resident bytes (memory tier) or snapshot file size (disk tier).
    pub bytes: u64,
}

/// A successful serving response; one variant per request shape.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeResponse {
    /// Outcome of a `Fit`: the model's handle, its embedding dimensionality, and which
    /// tier produced it ([`ServedFrom::ColdFit`] when this request paid the EM fit).
    Fitted {
        /// Handle addressing the fitted model in every later request.
        handle: ModelHandle,
        /// Embedding dimensionality of the model.
        dim: usize,
        /// Where the model came from.
        served_from: ServedFrom,
    },
    /// Outcome of an `Embed` or `EmbedCorpus`: one embedding row per requested column.
    Embedded {
        /// The embedding matrix.
        matrix: Matrix,
        /// Where the model came from ([`ServedFrom::ColdFit`] for one-shot methods).
        served_from: ServedFrom,
    },
    /// Outcome of a `PushModel`: the snapshot is installed and its handle resolves.
    Pushed {
        /// The handle the snapshot named, now resolvable on this service.
        handle: ModelHandle,
        /// Embedding dimensionality of the installed model.
        dim: usize,
    },
    /// Outcome of a `PullModel`: the model's serialized snapshot (the bit-exact
    /// `gem-store` envelope, interchangeable with a store file's contents).
    Snapshot {
        /// The handle the snapshot names.
        handle: ModelHandle,
        /// The snapshot envelope.
        snapshot: gem_json::Json,
        /// Which tier produced the model.
        served_from: ServedFrom,
    },
    /// Outcome of a `Stats` request.
    Stats(ServiceStats),
    /// Outcome of a `ListModels` request, memory tier first.
    Models(Vec<ModelInfo>),
    /// Outcome of an `Evict`: whether the handle existed in either tier.
    Evicted {
        /// `true` when a model was actually removed.
        existed: bool,
    },
}

impl ServeResponse {
    /// The embedding matrix, when this is an `Embedded` response.
    pub fn matrix(&self) -> Option<&Matrix> {
        match self {
            ServeResponse::Embedded { matrix, .. } => Some(matrix),
            _ => None,
        }
    }

    /// Consume into the embedding matrix, when this is an `Embedded` response.
    pub fn into_matrix(self) -> Option<Matrix> {
        match self {
            ServeResponse::Embedded { matrix, .. } => Some(matrix),
            _ => None,
        }
    }

    /// The model handle, when this is a `Fitted` or `Pushed` response.
    pub fn handle(&self) -> Option<ModelHandle> {
        match self {
            ServeResponse::Fitted { handle, .. } | ServeResponse::Pushed { handle, .. } => {
                Some(*handle)
            }
            _ => None,
        }
    }

    /// The model provenance, when this response carries one.
    pub fn served_from(&self) -> Option<ServedFrom> {
        match self {
            ServeResponse::Fitted { served_from, .. }
            | ServeResponse::Embedded { served_from, .. }
            | ServeResponse::Snapshot { served_from, .. } => Some(*served_from),
            _ => None,
        }
    }

    /// Whether a fit was avoided (the model came from either cache tier).
    pub fn cache_hit(&self) -> bool {
        !matches!(self.served_from(), Some(ServedFrom::ColdFit) | None)
    }
}

/// The outcome of one serving request.
pub type ServeResult = Result<ServeResponse, ServeError>;

/// Serves the handle-based protocol for any registered method, accelerating Gem
/// variants with the fingerprint-keyed model cache.
#[derive(Debug)]
pub struct EmbedService {
    registry: MethodRegistry,
    engine: BatchEngine,
    variants: Vec<GemVariant>,
    parallel: bool,
    requests: AtomicU64,
}

impl EmbedService {
    /// A service over `registry` whose model cache holds at most `cache_capacity` fitted
    /// models. Register Gem variants with [`EmbedService::register_gem_family`] (or
    /// [`EmbedService::register_gem_variant`]) to serve them through the cache.
    ///
    /// # Panics
    /// Panics when `cache_capacity` is zero.
    pub fn new(registry: MethodRegistry, cache_capacity: usize) -> Self {
        Self::with_policy(registry, CachePolicy::with_capacity(cache_capacity))
    }

    /// A service with a full cache eviction policy (capacity, TTL, memory bound).
    ///
    /// # Panics
    /// Panics when `policy.capacity` is zero.
    pub fn with_policy(registry: MethodRegistry, policy: CachePolicy) -> Self {
        EmbedService {
            registry,
            engine: BatchEngine::with_policy(policy),
            variants: Vec::new(),
            parallel: true,
            requests: AtomicU64::new(0),
        }
    }

    /// Attach an on-disk model store as the cache's second tier: models evicted from
    /// memory spill to it, cache misses warm-start from it, and handles resolve through
    /// it — so a handle survives both eviction and a process restart.
    pub fn with_store(mut self, store: Arc<ModelStore>) -> Self {
        self.engine = self.engine.with_store(store);
        self
    }

    /// Disable (or re-enable) thread fan-out; results are identical either way.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.engine = self.engine.with_parallel(parallel);
        self.parallel = parallel;
        self
    }

    /// Register one Gem pipeline variant as cache-servable under `name`. Replaces an
    /// earlier variant with the same name.
    pub fn register_gem_variant(
        &mut self,
        name: impl Into<String>,
        config: GemConfig,
        features: FeatureSet,
    ) {
        let variant = GemVariant {
            name: name.into(),
            config,
            features,
            tags: &[],
        };
        match self.variants.iter_mut().find(|v| v.name == variant.name) {
            Some(existing) => *existing = variant,
            None => self.variants.push(variant),
        }
    }

    /// Register the whole Gem method family derived from `config` as cache-servable.
    /// The name → pipeline table comes from [`gem_core::gem_family_variants`] — the same
    /// single source of truth [`MethodRegistry::register_gem_family`] registers from —
    /// so the service and the registry can never disagree about what a name runs.
    pub fn register_gem_family(&mut self, config: &GemConfig) {
        for variant in gem_family_variants(config) {
            self.register_gem_variant(variant.name, variant.config, variant.features);
        }
    }

    /// All method names the service can run, in registry order.
    pub fn methods(&self) -> Vec<&str> {
        self.registry.names()
    }

    /// Whether `method` is served through the model cache.
    pub fn is_cache_served(&self, method: &str) -> bool {
        self.variants.iter().any(|v| v.name == method)
    }

    /// The underlying registry.
    pub fn registry(&self) -> &MethodRegistry {
        &self.registry
    }

    /// Cumulative model-cache counters.
    pub fn cache_stats(&self) -> crate::CacheStats {
        self.engine.cache_stats()
    }

    /// Cumulative service statistics (cache counters, tier sizes, request count). The
    /// memory-tier numbers come from one consistent cache snapshot; the store listing
    /// (filesystem I/O) happens outside the cache lock and degrades to "unknown" on
    /// failure — stats are best-effort, never an error.
    pub fn stats(&self) -> ServiceStats {
        let (cache, resident_models, resident_bytes) = self.engine.cache_snapshot();
        let (store_entries, store_bytes) = match self.engine.store().map(|s| s.stats()) {
            Some(Ok(stats)) => (Some(stats.entries as u64), Some(stats.total_bytes)),
            Some(Err(_)) | None => (None, None),
        };
        ServiceStats {
            cache,
            resident_models,
            resident_bytes,
            store_entries,
            store_bytes,
            requests: self.requests.load(Ordering::Relaxed),
        }
    }

    /// Every model the service can currently resolve: resident models first (most
    /// recently used first), then disk-only snapshots.
    ///
    /// # Errors
    /// Returns [`ServeError::Store`] when the store tier exists but cannot be listed.
    pub fn models(&self) -> Result<Vec<ModelInfo>, ServeError> {
        let resident = self.engine.resident_models();
        let mut infos: Vec<ModelInfo> = resident
            .iter()
            .map(|(key, model)| ModelInfo {
                handle: ModelHandle::from(*key),
                tier: CacheTier::Memory,
                dim: Some(model.dim()),
                bytes: model.approx_mem_bytes(),
            })
            .collect();
        if let Some(store) = self.engine.store() {
            let entries = store.list().map_err(|e| ServeError::Store {
                message: e.to_string(),
            })?;
            for entry in entries {
                if !resident.iter().any(|(key, _)| *key == entry.key) {
                    infos.push(ModelInfo {
                        handle: ModelHandle::from(entry.key),
                        tier: CacheTier::Disk,
                        dim: None,
                        bytes: entry.bytes,
                    });
                }
            }
        }
        Ok(infos)
    }

    /// Process a batch of requests, returning one result per request in input order.
    ///
    /// Execution order within a batch: control requests (`Stats`, `ListModels`,
    /// `Evict`) apply first, in request order; then every `Fit` (one EM fit per
    /// *distinct* key, distinct fits in parallel); then every `FitUpdate` in request
    /// order (so a batch can fit a model and grow it, or chain two updates); then
    /// every embed — so an `Embed` may use a handle `Fit` or `FitUpdate` earlier in
    /// the same batch. Engine-served and one-shot embeds run side by side, each fanned
    /// out across threads.
    pub fn serve(&self, requests: Vec<ServeRequest>) -> Vec<ServeResult> {
        self.requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        let n = requests.len();
        let mut results: Vec<Option<ServeResult>> = (0..n).map(|_| None).collect();

        // Side jobs: one-shot registry methods and embed-by-handle transforms, fanned
        // out together opposite the engine batch.
        enum SideJob {
            Registry {
                index: usize,
                method: String,
                corpus: Arc<Vec<GemColumn>>,
                queries: Option<Vec<GemColumn>>,
                labels: Option<Vec<String>>,
            },
            Transform {
                index: usize,
                model: Arc<gem_core::GemModel>,
                served_from: ServedFrom,
                queries: Vec<GemColumn>,
            },
        }

        // Pass 1: plan. Control requests answer immediately; fit and embed work is
        // collected for the batched passes below.
        let mut fit_slots: Vec<usize> = Vec::new();
        let mut fit_jobs: Vec<FitJob> = Vec::new();
        let mut update_jobs: Vec<(usize, ModelHandle, Arc<Vec<GemColumn>>)> = Vec::new();
        let mut embed_jobs: Vec<(usize, ModelHandle, Vec<GemColumn>)> = Vec::new();
        let mut engine_slots: Vec<usize> = Vec::new();
        let mut engine_requests: Vec<EngineRequest> = Vec::new();
        let mut side_jobs: Vec<SideJob> = Vec::new();
        for (i, request) in requests.into_iter().enumerate() {
            match request {
                ServeRequest::Fit {
                    corpus,
                    mut config,
                    features,
                    composition,
                } => {
                    if let Some(composition) = composition {
                        config.composition = composition;
                    }
                    let key = model_key(&corpus, &config, features);
                    fit_slots.push(i);
                    fit_jobs.push(FitJob {
                        key,
                        corpus,
                        config,
                        features,
                    });
                }
                ServeRequest::FitUpdate { handle, corpus } => {
                    update_jobs.push((i, handle, corpus));
                }
                ServeRequest::Embed { handle, queries } => embed_jobs.push((i, handle, queries)),
                ServeRequest::EmbedCorpus {
                    method,
                    corpus,
                    queries,
                    labels,
                } => {
                    if let Some(variant) = self.variants.iter().find(|v| v.name == method) {
                        engine_slots.push(i);
                        engine_requests.push(EngineRequest {
                            config: variant.config.clone(),
                            features: variant.features,
                            corpus,
                            queries,
                        });
                    } else if self.registry.get(&method).is_some() {
                        side_jobs.push(SideJob::Registry {
                            index: i,
                            method,
                            corpus,
                            queries,
                            labels,
                        });
                    } else {
                        results[i] = Some(Err(ServeError::UnknownMethod { method }));
                    }
                }
                ServeRequest::PushModel { handle, model } => {
                    let dim = model.dim();
                    self.engine.publish(handle.key(), model);
                    results[i] = Some(Ok(ServeResponse::Pushed { handle, dim }));
                }
                ServeRequest::PullModel { handle } => {
                    results[i] = Some(match self.engine.resolve(handle.key()) {
                        Some((model, tier)) => Ok(ServeResponse::Snapshot {
                            handle,
                            snapshot: gem_store::encode_snapshot(handle.key(), &model),
                            served_from: ServedFrom::from(tier),
                        }),
                        None => Err(ServeError::UnknownModel { handle }),
                    });
                }
                ServeRequest::Stats => {
                    results[i] = Some(Ok(ServeResponse::Stats(self.stats())));
                }
                ServeRequest::ListModels => {
                    results[i] = Some(self.models().map(ServeResponse::Models));
                }
                ServeRequest::Evict { handle } => {
                    results[i] = Some(Ok(ServeResponse::Evicted {
                        existed: self.engine.evict(handle.key()),
                    }));
                }
            }
        }

        // Pass 2: fits (before embeds, so a batch can fit and embed the same handle).
        for ((slot, job), (outcome, served_from)) in fit_slots
            .iter()
            .zip(&fit_jobs)
            .zip(self.engine.fit_models(&fit_jobs))
        {
            results[*slot] = Some(match outcome {
                Ok(model) => Ok(ServeResponse::Fitted {
                    handle: ModelHandle::from(job.key),
                    dim: model.dim(),
                    served_from,
                }),
                Err(e) => Err(ServeError::Fit(e)),
            });
        }

        // Pass 2.5: incremental updates, after the fits so a batch can fit a model and
        // grow it in one round trip. Sequential in request order: chained updates
        // (grow, then grow again) within a batch each see the handle the previous one
        // derived.
        for (index, handle, new_columns) in update_jobs {
            results[index] = Some(match self.engine.fit_update(handle.key(), &new_columns) {
                None => Err(ServeError::UnknownModel { handle }),
                Some((key, Ok(model), served_from)) => Ok(ServeResponse::Fitted {
                    handle: ModelHandle::from(key),
                    dim: model.dim(),
                    served_from,
                }),
                Some((_, Err(e), _)) => Err(ServeError::Fit(e)),
            });
        }

        // Pass 3: resolve embed handles (never fitting — a miss is UnknownModel).
        for (index, handle, queries) in embed_jobs {
            match self.engine.resolve(handle.key()) {
                Some((model, tier)) => side_jobs.push(SideJob::Transform {
                    index,
                    model,
                    served_from: ServedFrom::from(tier),
                    queries,
                }),
                None => results[index] = Some(Err(ServeError::UnknownModel { handle })),
            }
        }

        // Pass 4: the engine batch (grouped fits + transforms) and the side jobs are
        // independent, so a mixed batch pays max(engine, side), not their sum.
        let (engine_out, side_out): (_, Vec<(usize, ServeResult)>) = gem_parallel::join(
            || self.engine.run(&engine_requests),
            || {
                gem_parallel::par_map(&side_jobs, self.parallel, |job| match job {
                    SideJob::Registry {
                        index,
                        method,
                        corpus,
                        queries,
                        labels,
                    } => {
                        let columns: &[GemColumn] = match queries {
                            Some(queries) => queries,
                            None => corpus,
                        };
                        let result = self
                            .registry
                            .require(method)
                            .and_then(|m| m.embed(columns, labels.as_deref()))
                            .map(|matrix| ServeResponse::Embedded {
                                matrix,
                                served_from: ServedFrom::ColdFit,
                            })
                            .map_err(ServeError::from_method_error);
                        (*index, result)
                    }
                    SideJob::Transform {
                        index,
                        model,
                        served_from,
                        queries,
                    } => {
                        let result = model
                            .transform(queries)
                            .map(|embedding| ServeResponse::Embedded {
                                matrix: embedding.matrix,
                                served_from: *served_from,
                            })
                            .map_err(ServeError::Transform);
                        (*index, result)
                    }
                })
            },
        );
        for (slot, response) in engine_slots.iter().zip(engine_out) {
            let served_from = response.served_from;
            results[*slot] = Some(match response.embedding {
                Ok(embedding) => Ok(ServeResponse::Embedded {
                    matrix: embedding.matrix,
                    served_from,
                }),
                // The engine conflates fit and transform failures; a cold model means
                // the fit itself (or the fused pipeline) failed.
                Err(e) => Err(match served_from {
                    ServedFrom::ColdFit => ServeError::Fit(e),
                    _ => ServeError::Transform(e),
                }),
            });
        }
        for (index, result) in side_out {
            results[index] = Some(result);
        }

        results
            .into_iter()
            .map(|r| r.expect("every request slot was answered"))
            .collect()
    }

    /// Convenience: serve a single request.
    pub fn serve_one(&self, request: ServeRequest) -> ServeResult {
        self.serve(vec![request])
            .into_iter()
            .next()
            .expect("one response per request")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_core::{ColumnEmbedder, GemEmbedder, GemError, GemModel};

    fn corpus() -> Arc<Vec<GemColumn>> {
        Arc::new(
            (0..6)
                .map(|c| {
                    GemColumn::new(
                        (0..50)
                            .map(|i| (c * 80) as f64 + (i % 14) as f64 * 1.5)
                            .collect(),
                        format!("col_{c}"),
                    )
                })
                .collect(),
        )
    }

    struct Identity;

    impl ColumnEmbedder for Identity {
        fn name(&self) -> &str {
            "Identity"
        }

        fn embed_columns(&self, columns: &[GemColumn]) -> Result<Matrix, GemError> {
            Ok(Matrix::filled(columns.len(), 2, 1.0))
        }
    }

    fn service() -> EmbedService {
        let config = GemConfig::fast();
        let mut registry = MethodRegistry::with_gem(&config);
        registry.register_unsupervised(Identity, &[]);
        let mut service = EmbedService::new(registry, 4);
        service.register_gem_family(&config);
        service
    }

    #[test]
    fn fit_returns_a_handle_and_is_idempotent() {
        let service = service();
        let cols = corpus();
        let cold = service
            .serve_one(ServeRequest::fit(
                Arc::clone(&cols),
                GemConfig::fast(),
                FeatureSet::ds(),
            ))
            .unwrap();
        let handle = cold.handle().expect("fit returns a handle");
        assert_eq!(cold.served_from(), Some(ServedFrom::ColdFit));
        // Same corpus + config: same handle, no second EM fit.
        let warm = service
            .serve_one(ServeRequest::fit(
                Arc::clone(&cols),
                GemConfig::fast(),
                FeatureSet::ds(),
            ))
            .unwrap();
        assert_eq!(warm.handle(), Some(handle));
        assert_eq!(warm.served_from(), Some(ServedFrom::MemoryCache));
        assert_eq!(service.cache_stats().hits, 1);
    }

    #[test]
    fn embed_by_handle_matches_in_process_fit_transform_exactly() {
        let service = service();
        let cols = corpus();
        let handle = service
            .serve_one(ServeRequest::fit(
                Arc::clone(&cols),
                GemConfig::fast(),
                FeatureSet::ds(),
            ))
            .unwrap()
            .handle()
            .unwrap();
        let queries = vec![GemColumn::new(
            (0..25).map(|i| 100.0 + (i % 7) as f64).collect(),
            "unseen",
        )];
        let served = service
            .serve_one(ServeRequest::embed(handle, queries.clone()))
            .unwrap();
        assert!(served.cache_hit());
        let direct = GemModel::fit(&cols, &GemConfig::fast(), FeatureSet::ds())
            .unwrap()
            .transform(&queries)
            .unwrap();
        assert_eq!(served.into_matrix().unwrap(), direct.matrix);
    }

    #[test]
    fn fit_update_grows_a_model_and_keeps_old_embeddings_bit_identical() {
        let service = service();
        let cols = corpus();
        let parent = service
            .serve_one(ServeRequest::fit(
                Arc::clone(&cols),
                GemConfig::fast(),
                FeatureSet::ds(),
            ))
            .unwrap()
            .handle()
            .unwrap();
        let growth = Arc::new(vec![GemColumn::new(
            (0..50).map(|i| 700.0 + (i % 9) as f64 * 3.0).collect(),
            "col_new",
        )]);

        let grown = service
            .serve_one(ServeRequest::fit_update(parent, Arc::clone(&growth)))
            .unwrap();
        let derived = grown.handle().expect("fit_update returns a handle");
        assert_ne!(derived, parent);
        assert_eq!(grown.served_from(), Some(ServedFrom::ColdFit));

        // The derived model froze the parent's components, so the old columns embed
        // bit-identically under either handle, and the new column resolves too.
        let via_parent = service
            .serve_one(ServeRequest::embed(parent, (*cols).clone()))
            .unwrap()
            .into_matrix()
            .unwrap();
        let via_derived = service
            .serve_one(ServeRequest::embed(derived, (*cols).clone()))
            .unwrap()
            .into_matrix()
            .unwrap();
        assert_eq!(via_parent, via_derived);
        let new_embed = service
            .serve_one(ServeRequest::embed(derived, (*growth).clone()))
            .unwrap()
            .into_matrix()
            .unwrap();
        assert_eq!(new_embed.rows(), 1);

        // Growing an unknown handle is a typed error, never a silent full fit.
        let bogus = ModelHandle::from_hex("00000000000000aa-00000000000000bb").unwrap();
        let err = service
            .serve_one(ServeRequest::fit_update(bogus, growth))
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel { .. }));

        // The one EM run is visible in the fit-cost stats; the update added nothing.
        let stats = service.stats();
        assert!(stats.cache.fit_micros > 0);
        assert!(stats.cache.em_iterations > 0);
    }

    #[test]
    fn unknown_handles_error_instead_of_refitting() {
        let service = service();
        let bogus = ModelHandle::from_hex("0000000000000001-0000000000000002").unwrap();
        let err = service
            .serve_one(ServeRequest::embed(bogus, corpus().to_vec()))
            .unwrap_err();
        assert_eq!(err.code(), "unknown_model");
        assert!(matches!(err, ServeError::UnknownModel { handle } if handle == bogus));
        // Nothing was fitted on our behalf.
        assert_eq!(service.stats().resident_models, 0);
    }

    #[test]
    fn fit_and_embed_compose_within_one_batch() {
        let service = service();
        let cols = corpus();
        // The handle is deterministic, so a client that knows the fingerprint can pair
        // a Fit and an Embed in a single batch.
        let handle = ModelHandle::from(model_key(&cols, &GemConfig::fast(), FeatureSet::ds()));
        let results = service.serve(vec![
            ServeRequest::fit(Arc::clone(&cols), GemConfig::fast(), FeatureSet::ds()),
            ServeRequest::embed(handle, cols.to_vec()),
        ]);
        assert_eq!(results[0].as_ref().unwrap().handle(), Some(handle));
        let direct = GemEmbedder::new(GemConfig::fast())
            .embed(&cols, FeatureSet::ds())
            .unwrap();
        assert_eq!(
            results[1].as_ref().unwrap().matrix().unwrap(),
            &direct.matrix
        );
    }

    #[test]
    fn evict_invalidates_a_handle() {
        let service = service();
        let cols = corpus();
        let handle = service
            .serve_one(ServeRequest::fit(
                Arc::clone(&cols),
                GemConfig::fast(),
                FeatureSet::ds(),
            ))
            .unwrap()
            .handle()
            .unwrap();
        let evicted = service.serve_one(ServeRequest::evict(handle)).unwrap();
        assert_eq!(evicted, ServeResponse::Evicted { existed: true });
        let err = service
            .serve_one(ServeRequest::embed(handle, cols.to_vec()))
            .unwrap_err();
        assert_eq!(err.code(), "unknown_model");
        // Evicting again reports the truth.
        let again = service.serve_one(ServeRequest::evict(handle)).unwrap();
        assert_eq!(again, ServeResponse::Evicted { existed: false });
    }

    #[test]
    fn gem_methods_are_cache_served_and_exact() {
        let service = service();
        assert!(service.is_cache_served("Gem (D+S)"));
        assert!(!service.is_cache_served("Identity"));
        let cold = service
            .serve_one(ServeRequest::embed_corpus("Gem (D+S)", corpus()))
            .unwrap();
        assert!(!cold.cache_hit());
        let warm = service
            .serve_one(ServeRequest::embed_corpus("Gem (D+S)", corpus()))
            .unwrap();
        assert!(warm.cache_hit());
        let direct = GemEmbedder::new(GemConfig::fast())
            .embed(&corpus(), FeatureSet::ds())
            .unwrap();
        assert_eq!(cold.into_matrix().unwrap(), direct.matrix);
        assert_eq!(warm.into_matrix().unwrap(), direct.matrix);
        assert_eq!(service.cache_stats().hits, 1);
    }

    #[test]
    fn non_gem_methods_dispatch_to_the_registry() {
        let service = service();
        let response = service
            .serve_one(ServeRequest::embed_corpus("Identity", corpus()))
            .unwrap();
        assert!(!response.cache_hit());
        let m = response.into_matrix().unwrap();
        assert_eq!(m.shape(), (corpus().len(), 2));
    }

    #[test]
    fn unknown_methods_error_without_disturbing_the_batch() {
        let service = service();
        let results = service.serve(vec![
            ServeRequest::embed_corpus("Gem (D+S)", corpus()),
            ServeRequest::embed_corpus("no-such-method", corpus()),
            ServeRequest::embed_corpus("Identity", corpus()),
        ]);
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert_eq!(err.code(), "unknown_method");
        assert!(results[2].is_ok());
    }

    #[test]
    fn queries_are_embedded_against_the_cached_corpus_model() {
        let service = service();
        service
            .serve_one(ServeRequest::embed_corpus("Gem (D+S)", corpus()))
            .unwrap();
        let queries = vec![GemColumn::new(
            (0..25).map(|i| 100.0 + (i % 7) as f64).collect(),
            "unseen",
        )];
        let response = service
            .serve_one(ServeRequest::embed_corpus("Gem (D+S)", corpus()).with_queries(queries))
            .unwrap();
        assert!(response.cache_hit());
        let corpus_emb = service
            .serve_one(ServeRequest::embed_corpus("Gem (D+S)", corpus()))
            .unwrap()
            .into_matrix()
            .unwrap();
        let m = response.into_matrix().unwrap();
        assert_eq!(m.rows(), 1);
        assert!(m.all_finite());
        assert_eq!(m.cols(), corpus_emb.cols());
    }

    #[test]
    fn supervised_methods_run_with_labels_through_the_service() {
        let config = GemConfig::fast();
        let mut registry = MethodRegistry::with_gem(&config);
        gem_baselines_stub(&mut registry);
        let service = EmbedService::new(registry, 2);
        let cols = corpus();
        let labels: Vec<String> = (0..cols.len()).map(|i| format!("t{}", i % 2)).collect();
        let ok = service.serve_one(
            ServeRequest::embed_corpus("StubSupervised", Arc::clone(&cols)).with_labels(labels),
        );
        assert!(ok.is_ok());
        // Missing labels are the request's fault: a typed invalid_request, not a crash.
        let missing = service
            .serve_one(ServeRequest::embed_corpus("StubSupervised", cols))
            .unwrap_err();
        assert_eq!(missing.code(), "invalid_request");
    }

    fn gem_baselines_stub(registry: &mut MethodRegistry) {
        struct Stub;
        impl gem_core::SupervisedColumnEmbedder for Stub {
            fn name(&self) -> &str {
                "StubSupervised"
            }

            fn fit_embed(
                &self,
                columns: &[GemColumn],
                _labels: &[String],
            ) -> Result<Matrix, GemError> {
                Ok(Matrix::zeros(columns.len(), 3))
            }
        }
        registry.register_supervised(Stub, &["supervised"]);
    }

    #[test]
    fn every_registry_gem_method_is_cache_served() {
        let service = service();
        for variant in gem_family_variants(&GemConfig::fast()) {
            assert!(service.is_cache_served(&variant.name), "{}", variant.name);
            assert!(
                service.methods().contains(&variant.name.as_str()),
                "{} not in registry",
                variant.name
            );
        }
    }

    #[test]
    fn stats_and_list_models_report_both_tiers() {
        let service = service();
        let cols = corpus();
        let handle = service
            .serve_one(ServeRequest::fit(
                Arc::clone(&cols),
                GemConfig::fast(),
                FeatureSet::ds(),
            ))
            .unwrap()
            .handle()
            .unwrap();
        let stats = match service.serve_one(ServeRequest::Stats).unwrap() {
            ServeResponse::Stats(stats) => stats,
            other => panic!("expected Stats, got {other:?}"),
        };
        assert_eq!(stats.resident_models, 1);
        assert!(stats.resident_bytes > 0);
        assert_eq!(stats.store_entries, None, "no store attached");
        assert_eq!(stats.requests, 2);
        let models = match service.serve_one(ServeRequest::ListModels).unwrap() {
            ServeResponse::Models(models) => models,
            other => panic!("expected Models, got {other:?}"),
        };
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].handle, handle);
        assert_eq!(models[0].tier, CacheTier::Memory);
        assert!(models[0].dim.is_some());
    }

    /// Removes the wrapped directory even when the test's assertions fail.
    struct DirGuard(std::path::PathBuf);

    impl Drop for DirGuard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn handles_survive_eviction_and_restart_through_the_store() {
        let dir = std::env::temp_dir().join(format!(
            "gem-serve-service-test-{}-warm-start",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let _guard = DirGuard(dir.clone());
        let store = Arc::new(ModelStore::open(&dir).unwrap());
        let config = GemConfig::fast();
        let cols = corpus();

        // Incarnation 1: fit and spill by overflowing a capacity-1 cache.
        let mut service = EmbedService::with_policy(
            MethodRegistry::with_gem(&config),
            CachePolicy::with_capacity(1),
        )
        .with_store(Arc::clone(&store));
        service.register_gem_family(&config);
        let fitted = service
            .serve_one(ServeRequest::fit(
                Arc::clone(&cols),
                config.clone(),
                FeatureSet::ds(),
            ))
            .unwrap();
        let handle = fitted.handle().unwrap();
        let cold = service
            .serve_one(ServeRequest::embed(handle, cols.to_vec()))
            .unwrap();
        service
            .serve_one(ServeRequest::fit(
                Arc::clone(&cols),
                config.clone(),
                FeatureSet::dsc(),
            ))
            .unwrap(); // evicts + spills the D+S model
        assert!(service.cache_stats().spills >= 1);

        // Incarnation 2: a fresh service over the same store. The *handle* still
        // resolves — via a disk warm start — with bit-identical output.
        let mut restarted =
            EmbedService::new(MethodRegistry::with_gem(&config), 4).with_store(Arc::clone(&store));
        restarted.register_gem_family(&config);
        let warm = restarted
            .serve_one(ServeRequest::embed(handle, cols.to_vec()))
            .unwrap();
        assert_eq!(warm.served_from(), Some(ServedFrom::DiskStore));
        assert_eq!(warm.into_matrix(), cold.into_matrix());
        assert_eq!(restarted.cache_stats().warm_starts, 1);
        // ListModels sees the disk-only snapshots too.
        let models = restarted.models().unwrap();
        assert!(models.iter().any(|m| m.handle == handle));
    }

    #[test]
    fn push_and_pull_ship_models_between_services() {
        let origin = service();
        let cols = corpus();
        let handle = origin
            .serve_one(ServeRequest::fit(
                Arc::clone(&cols),
                GemConfig::fast(),
                FeatureSet::ds(),
            ))
            .unwrap()
            .handle()
            .unwrap();
        let pulled = match origin
            .serve_one(ServeRequest::PullModel { handle })
            .unwrap()
        {
            ServeResponse::Snapshot {
                handle: h,
                snapshot,
                served_from,
            } => {
                assert_eq!(h, handle);
                assert_eq!(served_from, ServedFrom::MemoryCache);
                snapshot
            }
            other => panic!("expected Snapshot, got {other:?}"),
        };
        // The snapshot is the store envelope: it validates exactly like a store file.
        let (key, model) = gem_store::decode_snapshot(&pulled, Some(handle.key())).unwrap();
        assert_eq!(key, handle.key());

        // A fresh service that has never seen the corpus acquires the handle by push
        // and embeds bit-identically — no corpus, no refit.
        let replica = service();
        let pushed = replica
            .serve_one(ServeRequest::PushModel {
                handle,
                model: Arc::new(model),
            })
            .unwrap();
        assert_eq!(pushed.handle(), Some(handle));
        let from_origin = origin
            .serve_one(ServeRequest::embed(handle, cols.to_vec()))
            .unwrap()
            .into_matrix()
            .unwrap();
        let from_replica = replica
            .serve_one(ServeRequest::embed(handle, cols.to_vec()))
            .unwrap()
            .into_matrix()
            .unwrap();
        assert_eq!(from_origin, from_replica);
        // The replica never fitted: its only miss-path activity was the push insert.
        assert_eq!(replica.cache_stats().misses, 0);

        // Pulling an unresolvable handle is the typed unknown_model — never a fit.
        let bogus = ModelHandle::from_hex("00000000000000aa-00000000000000bb").unwrap();
        let err = replica
            .serve_one(ServeRequest::PullModel { handle: bogus })
            .unwrap_err();
        assert_eq!(err.code(), "unknown_model");
    }

    #[test]
    fn replacing_a_variant_updates_in_place() {
        let mut service = service();
        let n = service.methods().len();
        service.register_gem_variant("Gem (D+S)", GemConfig::fast(), FeatureSet::d());
        assert_eq!(service.methods().len(), n);
        assert!(service.is_cache_served("Gem (D+S)"));
    }

    #[test]
    fn fit_composition_override_changes_the_handle() {
        let service = service();
        let cols = corpus();
        let plain = service
            .serve_one(ServeRequest::fit(
                Arc::clone(&cols),
                GemConfig::fast(),
                FeatureSet::ds(),
            ))
            .unwrap()
            .handle()
            .unwrap();
        let agg = service
            .serve_one(
                ServeRequest::fit(Arc::clone(&cols), GemConfig::fast(), FeatureSet::ds())
                    .with_composition(Composition::Aggregation),
            )
            .unwrap()
            .handle()
            .unwrap();
        assert_ne!(plain, agg, "composition participates in the fingerprint");
    }
}
