//! # gem-serve
//!
//! The batch serving layer over the Gem pipeline's fit/transform split
//! ([`gem_core::GemModel`]): the subsystem that turns the reproduction into a system that
//! can answer embedding traffic instead of re-running experiments.
//!
//! Layers, bottom to top:
//!
//! * [`fingerprint`] — deterministic [`ModelKey`]s: an FNV-1a corpus fingerprint (every
//!   value bit, every header byte, column order) combined with a configuration hash. Two
//!   requests share a key exactly when they can share a fitted model.
//! * [`ModelCache`] — a capacity-bounded LRU of fitted models behind [`std::sync::Arc`],
//!   with hit/miss/eviction counters. The expensive EM fit is paid once per distinct
//!   corpus+configuration while it stays resident.
//! * [`BatchEngine`] — groups a batch of embed requests per model, fits each distinct
//!   cold model once (distinct fits in parallel), publishes the fits to the cache, and
//!   fans every transform out across threads via `gem-parallel`.
//! * [`EmbedService`] — the front-end: serves any [`gem_core::MethodRegistry`] method by
//!   name. Gem pipeline variants are served through the model cache; methods without a
//!   fit/transform seam dispatch straight to the registry.
//!
//! ```
//! use gem_core::{FeatureSet, GemColumn, GemConfig, MethodRegistry};
//! use gem_serve::{EmbedService, ServeRequest};
//! use std::sync::Arc;
//!
//! let config = GemConfig::fast();
//! let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 8);
//! service.register_gem_family(&config);
//!
//! let corpus = Arc::new(vec![
//!     GemColumn::new((0..40).map(f64::from).collect(), "age"),
//!     GemColumn::new((0..40).map(|i| 500.0 + 3.0 * f64::from(i)).collect(), "price"),
//! ]);
//! let cold = service.serve_one(ServeRequest::new("Gem (D+S)", Arc::clone(&corpus)));
//! assert!(!cold.cache_hit);
//! // Same corpus again: the fitted model is reused, no EM re-fit.
//! let warm = service.serve_one(ServeRequest::new("Gem (D+S)", corpus));
//! assert!(warm.cache_hit);
//! assert_eq!(cold.matrix.unwrap(), warm.matrix.unwrap());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod cache;
mod engine;
pub mod fingerprint;
mod service;

pub use cache::{CacheStats, ModelCache};
pub use engine::{BatchEngine, EngineRequest, EngineResponse};
pub use fingerprint::{config_fingerprint, corpus_fingerprint, model_key, ModelKey};
pub use service::{EmbedService, ServeRequest, ServeResponse};
