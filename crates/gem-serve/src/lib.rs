//! # gem-serve
//!
//! The batch serving layer over the Gem pipeline's fit/transform split
//! ([`gem_core::GemModel`]): the subsystem that turns the reproduction into a system that
//! can answer embedding traffic instead of re-running experiments.
//!
//! Layers, bottom to top:
//!
//! * [`fingerprint`] — deterministic [`ModelKey`]s: an FNV-1a corpus fingerprint (every
//!   value bit, every header byte, column order) combined with a configuration hash. Two
//!   requests share a key exactly when they can share a fitted model. (Hosted by
//!   `gem-store`, re-exported here unchanged: the cache key doubles as the on-disk
//!   address.)
//! * [`ModelCache`] — a bounded LRU of fitted models behind [`std::sync::Arc`]:
//!   capacity-, TTL- and approximate-memory-bounded ([`CachePolicy`]), with
//!   hit/miss/eviction/expiration counters. Attach a [`gem_store::ModelStore`] and the
//!   cache becomes two-tiered: models evicted for capacity/memory **spill** to disk, and
//!   a lookup that misses memory **warm-starts** from disk — deserialisation instead of
//!   an EM re-fit, with bit-identical transforms.
//! * [`BatchEngine`] — groups a batch of embed requests per model, fits each distinct
//!   cold model once (distinct fits in parallel), publishes the fits to the cache, and
//!   fans every transform out across threads via `gem-parallel`. Store writes queued by
//!   evictions execute **after the cache lock is released**, so a slow disk never blocks
//!   concurrent lookups.
//! * [`EmbedService`] — the front-end: the typed, handle-based [`ServeRequest`] protocol
//!   (`Fit` → [`ModelHandle`] → `Embed`/`Evict`, the one-shot `EmbedCorpus` path for
//!   any [`gem_core::MethodRegistry`] method by name, and `PushModel`/`PullModel`
//!   snapshot shipping between replicas) with the stable-coded [`ServeError`] taxonomy.
//!   Duplicate in-flight fits are **single-flight**: N concurrent requests for one
//!   missing handle pay one EM fit ([`CacheStats::coalesced_fits`]).
//! * [`net::GemServer`] / [`client::GemClient`] — the same protocol over TCP (the
//!   `gem-served` and `gem-client` binaries wrap them). Connections start as
//!   newline-delimited `gem-proto` JSON envelopes; the client negotiates the binary
//!   codec (`gem_proto::binary`: length-prefixed frames, raw-IEEE-754 f64 payloads,
//!   chunked corpus upload, streamed embed rows) and falls back to JSON against
//!   servers that decline. The server multiplexes every connection onto one bounded
//!   executor pool and answers **out of order** (a cheap `Embed` overtakes a slow
//!   `Fit`); the client's pipelined mode ([`GemClient::send`] /
//!   [`GemClient::recv_any`]) correlates replies by envelope id.
//!
//! ```
//! use gem_core::{FeatureSet, GemColumn, GemConfig, MethodRegistry};
//! use gem_serve::{EmbedService, ServeRequest};
//! use std::sync::Arc;
//!
//! let config = GemConfig::fast();
//! let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 8);
//! service.register_gem_family(&config);
//!
//! let corpus = Arc::new(vec![
//!     GemColumn::new((0..40).map(f64::from).collect(), "age"),
//!     GemColumn::new((0..40).map(|i| 500.0 + 3.0 * f64::from(i)).collect(), "price"),
//! ]);
//! // Fit once; the returned handle names the model from now on.
//! let fitted = service
//!     .serve_one(ServeRequest::fit(Arc::clone(&corpus), config.clone(), FeatureSet::ds()))
//!     .unwrap();
//! let handle = fitted.handle().unwrap();
//! // Embed by handle: the request carries no corpus, so nothing can be refitted.
//! let served = service
//!     .serve_one(ServeRequest::embed(handle, corpus.to_vec()))
//!     .unwrap();
//! assert!(served.cache_hit());
//! assert_eq!(served.matrix().unwrap().rows(), corpus.len());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod cache;
pub mod client;
pub mod demo;
mod engine;
mod error;
mod framing;
mod handle;
pub mod metrics;
pub mod net;
mod service;
pub mod sync;

pub use cache::{CachePolicy, CacheStats, CacheTier, EvictTask, ModelCache, SpillTask};
pub use client::{
    ClientError, EmbedOutcome, FitOutcome, GemClient, HealthOutcome, HealthState, PipelinedReply,
    PushOutcome, SnapshotOutcome,
};
pub use engine::{BatchEngine, EngineRequest, EngineResponse, FitJob, ServedFrom};
pub use error::ServeError;
pub use gem_store::fingerprint;
pub use gem_store::{
    config_fingerprint, corpus_fingerprint, decode_snapshot, encode_snapshot, model_key, GcPolicy,
    ModelKey, ModelStore, SnapshotError, StoreError, StoreStats,
};
pub use handle::ModelHandle;
pub use metrics::{RequestShape, ServerMetrics, SHAPES};
pub use net::{
    default_workers, shutdown_summary, GemServer, ServerCounters, ServerHandle,
    DEFAULT_QUEUE_CAPACITY,
};
pub use service::{
    EmbedService, ModelInfo, ServeRequest, ServeResponse, ServeResult, ServiceStats,
};
pub use sync::{lock_or_recover, lock_recoveries};
