//! # gem-serve
//!
//! The batch serving layer over the Gem pipeline's fit/transform split
//! ([`gem_core::GemModel`]): the subsystem that turns the reproduction into a system that
//! can answer embedding traffic instead of re-running experiments.
//!
//! Layers, bottom to top:
//!
//! * [`fingerprint`] — deterministic [`ModelKey`]s: an FNV-1a corpus fingerprint (every
//!   value bit, every header byte, column order) combined with a configuration hash. Two
//!   requests share a key exactly when they can share a fitted model. (Hosted by
//!   `gem-store`, re-exported here unchanged: the cache key doubles as the on-disk
//!   address.)
//! * [`ModelCache`] — a bounded LRU of fitted models behind [`std::sync::Arc`]:
//!   capacity-, TTL- and approximate-memory-bounded ([`CachePolicy`]), with
//!   hit/miss/eviction/expiration counters. Attach a [`gem_store::ModelStore`] and the
//!   cache becomes two-tiered: models evicted for capacity/memory **spill** to disk, and
//!   a lookup that misses memory **warm-starts** from disk — deserialisation instead of
//!   an EM re-fit, with bit-identical transforms.
//! * [`BatchEngine`] — groups a batch of embed requests per model, fits each distinct
//!   cold model once (distinct fits in parallel), publishes the fits to the cache, and
//!   fans every transform out across threads via `gem-parallel`.
//! * [`EmbedService`] — the front-end: serves any [`gem_core::MethodRegistry`] method by
//!   name. Gem pipeline variants are served through the model cache; methods without a
//!   fit/transform seam dispatch straight to the registry.
//!
//! ```
//! use gem_core::{FeatureSet, GemColumn, GemConfig, MethodRegistry};
//! use gem_serve::{EmbedService, ServeRequest};
//! use std::sync::Arc;
//!
//! let config = GemConfig::fast();
//! let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 8);
//! service.register_gem_family(&config);
//!
//! let corpus = Arc::new(vec![
//!     GemColumn::new((0..40).map(f64::from).collect(), "age"),
//!     GemColumn::new((0..40).map(|i| 500.0 + 3.0 * f64::from(i)).collect(), "price"),
//! ]);
//! let cold = service.serve_one(ServeRequest::new("Gem (D+S)", Arc::clone(&corpus)));
//! assert!(!cold.cache_hit);
//! // Same corpus again: the fitted model is reused, no EM re-fit.
//! let warm = service.serve_one(ServeRequest::new("Gem (D+S)", corpus));
//! assert!(warm.cache_hit);
//! assert_eq!(cold.matrix.unwrap(), warm.matrix.unwrap());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod cache;
mod engine;
mod service;

pub use cache::{CachePolicy, CacheStats, CacheTier, ModelCache};
pub use engine::{BatchEngine, EngineRequest, EngineResponse, ServedFrom};
pub use gem_store::fingerprint;
pub use gem_store::{
    config_fingerprint, corpus_fingerprint, model_key, GcPolicy, ModelKey, ModelStore, StoreError,
    StoreStats,
};
pub use service::{EmbedService, ServeRequest, ServeResponse};
