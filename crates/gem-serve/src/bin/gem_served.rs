//! The serving daemon: `EmbedService` behind a TCP socket speaking newline-delimited
//! `gem-proto` JSON envelopes.
//!
//! ```sh
//! gem-served [--addr 127.0.0.1:7878] [--workers N] [--queue-capacity N]
//!            [--metrics-addr HOST:PORT] [--cache-capacity N] [--ttl-secs N]
//!            [--max-bytes N] [--store DIR] [--components N] [--serial] [--json-only]
//!            [--ctl-stdin]
//! ```
//!
//! * `--addr` — listen address; use port `0` for an ephemeral port. The resolved
//!   address is printed as `gem-served listening on <addr>` once the socket is bound
//!   (scripts wait for that line, then connect).
//! * `--workers` — executor-pool size: how many requests (across all connections)
//!   execute concurrently; responses return out of order as they finish. Defaults to
//!   the machine's parallelism clamped to `[2, 8]`.
//! * `--queue-capacity` — admission bound on the shared work queue. Requests arriving
//!   while this many frames wait are **shed** with a typed `overloaded` error carrying
//!   a retry-after hint, instead of stalling every connection behind an unbounded
//!   backlog. Defaults to 1024.
//! * `--metrics-addr` — also serve the Prometheus text exposition (counters, queue
//!   gauges, per-shape latency quantiles) over plain HTTP at this address; port `0`
//!   picks an ephemeral port. The resolved address is printed as
//!   `gem-served metrics on <addr>`. Every request gets the full document — the path
//!   is ignored. Off by default.
//! * `--cache-capacity` / `--ttl-secs` / `--max-bytes` — the model-cache policy.
//! * `--store DIR` — attach an on-disk model store: evictions spill, misses warm-start,
//!   and client handles survive restarts.
//! * `--components` — GMM components of the registered `EmbedCorpus` method family
//!   (`Fit` requests carry their own configuration and are unaffected).
//! * `--serial` — disable thread fan-out inside the service (identical output).
//! * `--json-only` — decline the binary-codec hello: every connection stays on
//!   newline-delimited JSON envelopes. Negotiating clients fall back transparently.
//!   For debugging with line tools and for exercising mixed-codec fleets; corpora
//!   whose JSON rendering exceeds the line cap cannot fit through such a server.
//! * `--ctl-stdin` — watch stdin for graceful shutdown: a `shutdown` line (or EOF)
//!   stops accepting, drains in-flight work, and logs the one-line structured
//!   `shutdown summary` (requests served, coalesced fits, worker high-water) before
//!   exiting — the hook scripts use to end soak runs debuggably. Without the flag the
//!   server runs until killed.

use gem_core::{GemConfig, MethodRegistry};
use gem_serve::{shutdown_summary, CachePolicy, EmbedService, GemServer, ModelStore, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Serve the Prometheus text exposition over bare HTTP on its own listener thread.
///
/// One short-lived connection per scrape: the request head is drained (the path is
/// ignored — every request gets the full document), the exposition is rendered from
/// the live instruments plus the service's cache statistics, and the socket closes.
/// The thread is detached; it dies with the process.
fn spawn_metrics_listener(
    addr: &str,
    handle: ServerHandle,
    service: Arc<EmbedService>,
) -> Result<SocketAddr, String> {
    let listener =
        TcpListener::bind(addr).map_err(|e| format!("cannot bind metrics address {addr}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| e.to_string())?;
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            let mut head = [0u8; 1024];
            let _ = stream.read(&mut head);
            let stats = service.stats();
            let body = handle.metrics().render(handle.counters(), Some(&stats));
            let response = format!(
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            let _ = stream.write_all(response.as_bytes());
        }
    });
    Ok(bound)
}

struct Args {
    addr: String,
    workers: Option<usize>,
    queue_capacity: Option<usize>,
    metrics_addr: Option<String>,
    capacity: usize,
    ttl_secs: Option<u64>,
    max_bytes: Option<u64>,
    store: Option<String>,
    components: usize,
    serial: bool,
    json_only: bool,
    ctl_stdin: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        workers: None,
        queue_capacity: None,
        metrics_addr: None,
        capacity: 64,
        ttl_secs: None,
        max_bytes: None,
        store: None,
        components: GemConfig::default().gmm.n_components,
        serial: false,
        json_only: false,
        ctl_stdin: false,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs a positive integer".to_string())?,
                );
            }
            "--queue-capacity" => {
                args.queue_capacity = Some(
                    value("--queue-capacity")?
                        .parse()
                        .map_err(|_| "--queue-capacity needs a positive integer".to_string())?,
                );
            }
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")?),
            "--cache-capacity" => {
                args.capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|_| "--cache-capacity needs a positive integer".to_string())?;
            }
            "--ttl-secs" => {
                args.ttl_secs = Some(
                    value("--ttl-secs")?
                        .parse()
                        .map_err(|_| "--ttl-secs needs a non-negative integer".to_string())?,
                );
            }
            "--max-bytes" => {
                args.max_bytes = Some(
                    value("--max-bytes")?
                        .parse()
                        .map_err(|_| "--max-bytes needs a non-negative integer".to_string())?,
                );
            }
            "--store" => args.store = Some(value("--store")?),
            "--components" => {
                args.components = value("--components")?
                    .parse()
                    .map_err(|_| "--components needs a positive integer".to_string())?;
            }
            "--serial" => args.serial = true,
            "--json-only" => args.json_only = true,
            "--ctl-stdin" => args.ctl_stdin = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.capacity == 0 {
        return Err("--cache-capacity must be positive".to_string());
    }
    if args.workers == Some(0) {
        return Err("--workers must be positive".to_string());
    }
    if args.queue_capacity == Some(0) {
        return Err("--queue-capacity must be positive".to_string());
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args().map_err(|e| {
        format!(
            "{e}\nusage: gem-served [--addr HOST:PORT] [--workers N] [--queue-capacity N] \
             [--metrics-addr HOST:PORT] [--cache-capacity N] [--ttl-secs N] [--max-bytes N] \
             [--store DIR] [--components N] [--serial] [--json-only] [--ctl-stdin]"
        )
    })?;

    let mut policy = CachePolicy::with_capacity(args.capacity);
    if let Some(secs) = args.ttl_secs {
        policy = policy.ttl(Duration::from_secs(secs));
    }
    if let Some(bytes) = args.max_bytes {
        policy = policy.max_bytes(bytes);
    }

    let config = GemConfig::with_components(args.components);
    let mut service = EmbedService::with_policy(MethodRegistry::with_gem(&config), policy);
    service.register_gem_family(&config);
    if args.serial {
        service = service.with_parallel(false);
    }
    if let Some(dir) = &args.store {
        let store = ModelStore::open(dir).map_err(|e| e.to_string())?;
        service = service.with_store(Arc::new(store));
    }

    let service = Arc::new(service);
    let mut server = GemServer::bind(Arc::clone(&service), args.addr.as_str())
        .map_err(|e| format!("cannot bind {}: {e}", args.addr))?;
    if let Some(workers) = args.workers {
        server = server.with_workers(workers);
    }
    if let Some(capacity) = args.queue_capacity {
        server = server.with_queue_capacity(capacity);
    }
    if args.json_only {
        server = server.with_json_only();
    }
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.handle().map_err(|e| e.to_string())?;
    let metrics_addr = match &args.metrics_addr {
        Some(scrape_addr) => Some(spawn_metrics_listener(
            scrape_addr,
            handle.clone(),
            Arc::clone(&service),
        )?),
        None => None,
    };
    if args.ctl_stdin {
        // Graceful-shutdown control channel: a `shutdown` line (or stdin EOF) stops
        // the server. Opt-in because a detached process inherits /dev/null — whose
        // immediate EOF would otherwise shut a daemon down at startup.
        let ctl = handle.clone();
        std::thread::spawn(move || {
            use std::io::BufRead;
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(text) if text.trim() == "shutdown" => break,
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
            ctl.shutdown();
        });
    }
    // Announce readiness on stdout (flushed) so scripts can wait for this exact line —
    // the address line's format is load-bearing (scripts `sed` the address out of it).
    println!("gem-served workers: {}", server.workers());
    if let Some(scrape) = metrics_addr {
        println!("gem-served metrics on {scrape}");
    }
    println!("gem-served listening on {addr}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| e.to_string())?;
    // Only the graceful path reaches here (a kill never returns from run), so this is
    // the soak-run debugging record: one structured line, greppable key=value fields.
    println!("{}", shutdown_summary(handle.counters(), &service.stats()));
    let _ = std::io::stdout().flush();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("gem-served: {message}");
            ExitCode::FAILURE
        }
    }
}
