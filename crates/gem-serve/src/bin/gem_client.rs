//! Command-line client for `gem-served`.
//!
//! ```sh
//! gem-client gen-corpus <file> [--columns N] [--rows N] [--seed N]
//! gem-client fit <addr> --corpus <file> [--components N] [--features D+S] [--composition NAME]
//! gem-client embed <addr> --handle <hex> --queries <file> [--out <file>]
//! gem-client pull <addr> --handle <hex> --out <file>
//! gem-client push <addr> --snapshot <file>
//! gem-client pipeline <addr> --corpus <file> [--components N] [--features D+S] [--queries N]
//! gem-client stats <addr>
//! gem-client health <addr>
//! gem-client list <addr>
//! gem-client evict <addr> --handle <hex>
//! gem-client verify <addr> --corpus <file> [--components N] [--features D+S]
//! ```
//!
//! * `gen-corpus` writes a deterministic synthetic corpus file (JSON `{"columns":
//!   [...]}` with bit-pattern values) for smoke tests.
//! * `fit` prints `handle: <hex>` — pass that hex to `embed`/`evict`/`pull`.
//! * `embed` prints the matrix shape and an FNV-1a digest of its value bits;
//!   `--out` additionally writes the bit-exact matrix JSON (two identical embeds
//!   produce byte-identical files).
//! * `pull` / `push` ship a model between replicas as its serialized snapshot (the
//!   bit-exact `gem-store` envelope): pull a handle from one server into a file, push
//!   the file to another, and the same handle resolves there — no corpus on the wire,
//!   no refit.
//! * `pipeline` fires a mixed pipelined workload on one connection — a deliberately
//!   slow cold `Fit` followed by N cheap `Embed`s — and verifies the out-of-order
//!   protocol end to end: every reply correlates to its request id, every embed is
//!   bit-identical to the in-process serial path, the embeds overtake the fit, and
//!   pipelining beats the same N embeds run lockstep (the speedup is printed).
//! * `verify` runs the full remote round trip (fit + embed) *and* the same
//!   fit + transform in-process, and fails unless the matrices are bit-identical —
//!   the end-to-end correctness gate CI runs against a live server.
//! * `stats` prints the cache/service counters plus the per-shape latency quantile
//!   table (p50/p90/p99 in microseconds) the server accumulates.
//! * `health` asks the admission layer how it is doing: `ok`, `degraded` (backlog or
//!   all workers busy) or `overloaded` (queue full, new requests are being shed),
//!   with queue depth and a retry-after hint. Load balancers and scripts branch on
//!   the exit code without parsing output.
//!
//! Exit codes: `0` success, `1` usage/transport/verification failure, `2` typed server
//! error (the stable code is printed, e.g. `unknown_model`), `3` the server reported
//! `overloaded` health.
//!
//! `--retry N` (valid before any command) retries transient typed errors — an
//! `overloaded` shed, or a router mid-fail-over (`replica_unavailable`, `no_replica`)
//! — up to N times, sleeping the server's `retry_after_ms` hint (200 ms when the
//! error carries none) between attempts, instead of exiting 2 on the first shed.
//!
//! `--codec binary|json` (also global) pins the wire codec. By default every
//! connection *offers* the binary codec and falls back to newline-delimited JSON
//! against servers that decline; `--codec binary` fails instead of falling back
//! (asserting the fleet speaks binary), and `--codec json` skips the offer entirely
//! (debugging with `tcpdump`/`nc`, or pinning behavior against mixed fleets).
//! `verify` ignores the pin and always runs the round trip under **both** codecs,
//! failing unless the two embed matrices are bit-identical to each other and to the
//! in-process path.

use gem_core::{Composition, FeatureSet, GemColumn, GemConfig, GemModel};
use gem_json::{FromJson, Json, ToJson};
use gem_numeric::Matrix;
use gem_proto::{RequestBody, ResponseBody};
use gem_serve::{ClientError, GemClient, HealthState, ModelHandle};
use std::process::ExitCode;

/// Failures split by exit code: `Usage` exits 1, `Server` exits 2, `Overloaded`
/// (the server's health probe reported it is shedding) exits 3.
enum CliError {
    Usage(String),
    Server {
        code: String,
        message: String,
        retry_after_ms: Option<u64>,
    },
    Overloaded,
}

impl From<ClientError> for CliError {
    fn from(e: ClientError) -> Self {
        match e {
            ClientError::Server {
                code,
                message,
                retry_after_ms,
            } => CliError::Server {
                code,
                message,
                retry_after_ms,
            },
            other => CliError::Usage(other.to_string()),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Usage(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::Usage(message.to_string())
    }
}

type CliResult = Result<(), CliError>;

/// How connections pick their wire codec (the global `--codec` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CodecChoice {
    /// Offer binary, accept whatever the server negotiates (the default).
    Negotiate,
    /// Offer binary and fail unless the server accepts.
    Binary,
    /// Never offer; speak newline-delimited JSON.
    Json,
}

/// The parsed `--codec` choice, set once before any command runs.
static CODEC: std::sync::OnceLock<CodecChoice> = std::sync::OnceLock::new();

fn codec_choice() -> CodecChoice {
    CODEC.get().copied().unwrap_or(CodecChoice::Negotiate)
}

/// Connect honoring the global codec choice.
fn connect_to(addr: &str) -> Result<GemClient, CliError> {
    match codec_choice() {
        CodecChoice::Json => GemClient::connect_json(addr).map_err(CliError::from),
        CodecChoice::Negotiate => GemClient::connect(addr).map_err(CliError::from),
        CodecChoice::Binary => {
            let client = GemClient::connect(addr).map_err(CliError::from)?;
            if client.codec_name() != "binary" {
                return Err(CliError::Usage(format!(
                    "--codec binary: {addr} declined the binary codec (older server, \
                     or one running --json-only)"
                )));
            }
            Ok(client)
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name) {
        Some(text) => text
            .parse()
            .map_err(|_| format!("{name} needs a number, got `{text}`")),
        None => Ok(default),
    }
}

/// Reject typo'd or unknown flags instead of silently ignoring them (a silently ignored
/// `--component 8` would fit a 50-component model and hand back a handle for the wrong
/// model). Every gem-client flag takes a value, so arguments must come as
/// `--flag value` pairs and a value may not itself look like a flag.
fn check_flags(args: &[String], allowed: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        if !flag.starts_with("--") {
            return Err(format!("unexpected argument `{flag}`"));
        }
        if !allowed.contains(&flag.as_str()) {
            return Err(format!(
                "unknown flag `{flag}` (allowed here: {})",
                allowed.join(", ")
            ));
        }
        match args.get(i + 1) {
            None => return Err(format!("{flag} needs a value")),
            Some(value) if value.starts_with("--") => {
                return Err(format!("{flag} needs a value, got the flag `{value}`"))
            }
            Some(_) => {}
        }
        i += 2;
    }
    Ok(())
}

fn parse_features(label: &str) -> Result<FeatureSet, String> {
    let features = FeatureSet {
        distributional: label.contains('D'),
        statistical: label.contains('S'),
        contextual: label.contains('C'),
    };
    let canonical = features.label();
    if !features.is_non_empty() || canonical != label {
        return Err(format!(
            "`{label}` is not a feature set label (use one of D, S, C, D+S, C+S, D+C, D+C+S)"
        ));
    }
    Ok(features)
}

fn parse_composition(name: &str) -> Result<Composition, String> {
    match name {
        "concatenation" => Ok(Composition::Concatenation),
        "aggregation" => Ok(Composition::Aggregation),
        other => Err(format!(
            "`{other}` is not a composition (use `concatenation` or `aggregation`; \
             autoencoder compositions need the library API)"
        )),
    }
}

fn read_columns(path: &str) -> Result<Vec<GemColumn>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read corpus {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    json.field("columns")
        .and_then(|columns| {
            columns
                .as_array()
                .ok_or_else(|| gem_json::JsonError::conversion("`columns` is not an array"))?
                .iter()
                .map(GemColumn::from_json)
                .collect()
        })
        .map_err(|e| format!("{path}: {e}"))
}

fn config_of(args: &[String]) -> Result<GemConfig, String> {
    let components = flag_num(args, "--components", GemConfig::default().gmm.n_components)?;
    Ok(GemConfig::with_components(components))
}

fn features_of(args: &[String]) -> Result<FeatureSet, String> {
    match flag_value(args, "--features") {
        Some(label) => parse_features(&label),
        None => Ok(FeatureSet::ds()),
    }
}

fn handle_of(args: &[String]) -> Result<ModelHandle, String> {
    let text = flag_value(args, "--handle").ok_or("--handle <hex> is required")?;
    ModelHandle::parse(&text)
}

/// FNV-1a over the matrix's value bits: a compact digest two bit-identical embeddings
/// always share (and distinct ones essentially never do).
fn matrix_digest(matrix: &Matrix) -> u64 {
    let mut hasher = gem_serve::fingerprint::Fnv1a::new();
    for value in matrix.as_slice() {
        hasher.write_u64(value.to_bits());
    }
    hasher.finish()
}

fn gen_corpus(path: &str, args: &[String]) -> CliResult {
    check_flags(args, &["--columns", "--rows", "--seed"])?;
    let n_columns: usize = flag_num(args, "--columns", 24)?;
    let rows: usize = flag_num(args, "--rows", 60)?;
    let seed: u64 = flag_num(args, "--seed", 7)?;
    let columns = gem_serve::demo::synthetic_corpus(n_columns, rows, seed);
    let json = gem_json::object(vec![(
        "columns",
        Json::Array(columns.iter().map(|c| c.to_json()).collect()),
    )]);
    std::fs::write(path, json.to_compact_string())
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {n_columns} columns x {rows} rows to {path}");
    Ok(())
}

fn fit(addr: &str, args: &[String]) -> CliResult {
    check_flags(
        args,
        &["--corpus", "--components", "--features", "--composition"],
    )?;
    let corpus = read_columns(&flag_value(args, "--corpus").ok_or("--corpus <file> is required")?)?;
    let config = config_of(args)?;
    let features = features_of(args)?;
    let composition = flag_value(args, "--composition")
        .map(|name| parse_composition(&name))
        .transpose()?;
    let mut client = connect_to(addr)?;
    let outcome = client
        .fit_with_composition(&corpus, &config, features, composition)
        .map_err(CliError::from)?;
    println!("handle: {}", outcome.handle);
    println!(
        "dim: {} served_from: {}",
        outcome.dim,
        outcome.served_from.wire_name()
    );
    Ok(())
}

fn fit_update(addr: &str, args: &[String]) -> CliResult {
    check_flags(args, &["--handle", "--corpus"])?;
    let handle = handle_of(args)?;
    let new_columns =
        read_columns(&flag_value(args, "--corpus").ok_or("--corpus <file> is required")?)?;
    let mut client = connect_to(addr)?;
    let outcome = client
        .fit_update(handle, &new_columns)
        .map_err(CliError::from)?;
    println!("handle: {}", outcome.handle);
    println!(
        "dim: {} served_from: {}",
        outcome.dim,
        outcome.served_from.wire_name()
    );
    Ok(())
}

fn embed(addr: &str, args: &[String]) -> CliResult {
    check_flags(args, &["--handle", "--queries", "--out"])?;
    let handle = handle_of(args)?;
    let queries =
        read_columns(&flag_value(args, "--queries").ok_or("--queries <file> is required")?)?;
    let mut client = connect_to(addr)?;
    let outcome = client.embed(handle, &queries).map_err(CliError::from)?;
    println!(
        "rows: {} cols: {} served_from: {} digest: {:016x}",
        outcome.matrix.rows(),
        outcome.matrix.cols(),
        outcome.served_from.wire_name(),
        matrix_digest(&outcome.matrix)
    );
    if let Some(out) = flag_value(args, "--out") {
        std::fs::write(&out, outcome.matrix.to_json().to_compact_string())
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("matrix written to {out}");
    }
    Ok(())
}

fn stats(addr: &str) -> CliResult {
    let mut client = connect_to(addr)?;
    let stats = client.stats().map_err(CliError::from)?;
    println!(
        "requests: {} resident_models: {} resident_bytes: {}",
        stats.requests, stats.resident_models, stats.resident_bytes
    );
    println!(
        "hits: {} warm_starts: {} misses: {} evictions: {} expirations: {} spills: {} \
         store_errors: {}",
        stats.hits,
        stats.warm_starts,
        stats.misses,
        stats.evictions,
        stats.expirations,
        stats.spills,
        stats.store_errors
    );
    println!(
        "coalesced_fits: {} fit_micros: {} em_iterations: {}",
        stats.coalesced_fits, stats.fit_micros, stats.em_iterations
    );
    match (stats.store_entries, stats.store_bytes) {
        (Some(entries), Some(bytes)) => println!("store: {entries} entries, {bytes} bytes"),
        _ => println!("store: (none attached)"),
    }
    if stats.latencies.is_empty() {
        println!("latencies: (no requests observed yet)");
    } else {
        println!(
            "{:<16} {:>8} {:>10} {:>10} {:>10}",
            "shape", "count", "p50_us", "p90_us", "p99_us"
        );
        for row in &stats.latencies {
            println!(
                "{:<16} {:>8} {:>10} {:>10} {:>10}",
                row.shape, row.count, row.p50_us, row.p90_us, row.p99_us
            );
        }
    }
    Ok(())
}

fn health(addr: &str) -> CliResult {
    let mut client = connect_to(addr)?;
    let health = client.health().map_err(CliError::from)?;
    println!(
        "state: {} queue: {}/{} busy_workers: {}/{}",
        health.state,
        health.queue_depth,
        health.queue_capacity,
        health.busy_workers,
        health.workers
    );
    if let Some(ms) = health.retry_after_ms {
        println!("retry_after_ms: {ms}");
    }
    if health.state == HealthState::Overloaded {
        return Err(CliError::Overloaded);
    }
    Ok(())
}

fn list(addr: &str) -> CliResult {
    let mut client = connect_to(addr)?;
    let models = client.list_models().map_err(CliError::from)?;
    println!(
        "{:<33} {:>6} {:>6} {:>10}",
        "handle", "tier", "dim", "bytes"
    );
    for model in &models {
        println!(
            "{:<33} {:>6} {:>6} {:>10}",
            model.handle,
            model.tier,
            model
                .dim
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".to_string()),
            model.bytes
        );
    }
    println!("{} models", models.len());
    Ok(())
}

fn evict(addr: &str, args: &[String]) -> CliResult {
    check_flags(args, &["--handle"])?;
    let handle = handle_of(args)?;
    let mut client = connect_to(addr)?;
    let existed = client.evict(handle).map_err(CliError::from)?;
    println!(
        "{}: {}",
        handle,
        if existed { "evicted" } else { "not found" }
    );
    Ok(())
}

fn pull(addr: &str, args: &[String]) -> CliResult {
    check_flags(args, &["--handle", "--out"])?;
    let handle = handle_of(args)?;
    let out = flag_value(args, "--out").ok_or("--out <file> is required")?;
    let mut client = connect_to(addr)?;
    let pulled = client.pull_model(handle).map_err(CliError::from)?;
    let text = pulled.snapshot.to_compact_string();
    std::fs::write(&out, &text).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "pulled {} ({} bytes, served_from: {}) to {out}",
        pulled.handle,
        text.len(),
        pulled.served_from.wire_name()
    );
    Ok(())
}

fn push(addr: &str, args: &[String]) -> CliResult {
    check_flags(args, &["--snapshot"])?;
    let path = flag_value(args, "--snapshot").ok_or("--snapshot <file> is required")?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read snapshot {path}: {e}"))?;
    let snapshot = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut client = connect_to(addr)?;
    let pushed = client.push_model(&snapshot).map_err(CliError::from)?;
    println!("pushed: {} dim: {}", pushed.handle, pushed.dim);
    Ok(())
}

/// The pipelined-protocol exercise: one connection, a slow cold `Fit` followed by N
/// cheap `Embed`s, responses collected in completion order. Verifies correlation,
/// bit-exactness against the in-process serial path, out-of-order overtaking, and the
/// throughput edge over the same embeds run lockstep.
fn pipeline(addr: &str, args: &[String]) -> CliResult {
    check_flags(
        args,
        &["--corpus", "--components", "--features", "--queries"],
    )?;
    let corpus = read_columns(&flag_value(args, "--corpus").ok_or("--corpus <file> is required")?)?;
    let config = config_of(args)?;
    let features = features_of(args)?;
    let n_queries: usize = flag_num(args, "--queries", 16)?;
    if n_queries == 0 || corpus.is_empty() {
        return Err("pipeline needs a non-empty corpus and --queries >= 1".into());
    }
    let queries: Vec<GemColumn> = (0..n_queries)
        .map(|i| corpus[i % corpus.len()].clone())
        .collect();

    let mut client = connect_to(addr)?;
    // Warm the embed handle, and compute the serial reference in-process.
    let fitted = client
        .fit(&corpus, &config, features)
        .map_err(CliError::from)?;
    let local = GemModel::fit(&corpus, &config, features)
        .map_err(|e| format!("in-process fit failed: {e}"))?;
    let reference: Vec<Matrix> = queries
        .iter()
        .map(|q| {
            local
                .transform(std::slice::from_ref(q))
                .map(|e| e.matrix)
                .map_err(|e| format!("in-process transform failed: {e}"))
        })
        .collect::<Result<_, _>>()?;

    // The slow half of the mixed batch: a heavier configuration (never the cached
    // handle), evicted between phases so each phase pays a genuinely cold fit.
    let mut slow_config = config.clone();
    slow_config.gmm.n_components += 16;

    // Lockstep mixed batch: the PR 4 client's only mode — the fit must complete before
    // the first embed can even be sent, so every embed queues behind it.
    let started = std::time::Instant::now();
    let slow = client
        .fit(&corpus, &slow_config, features)
        .map_err(CliError::from)?;
    for (i, query) in queries.iter().enumerate() {
        let outcome = client
            .embed(fitted.handle, std::slice::from_ref(query))
            .map_err(CliError::from)?;
        if outcome.matrix != reference[i] {
            return Err(CliError::Usage(format!(
                "MISMATCH: lockstep embed {i} differs from the in-process serial path"
            )));
        }
    }
    let lockstep = started.elapsed();
    client.evict(slow.handle).map_err(CliError::from)?;

    // Pipelined mixed batch: all N+1 requests in flight at once; the clock stops when
    // the last *embed* lands (the fit keeps running and is drained afterwards).
    let started = std::time::Instant::now();
    let fit_id = client
        .send(RequestBody::Fit {
            corpus: corpus.clone(),
            config: slow_config,
            features,
            composition: None,
        })
        .map_err(CliError::from)?;
    let mut embed_ids = Vec::with_capacity(n_queries);
    for query in &queries {
        embed_ids.push(
            client
                .send(RequestBody::Embed {
                    handle: fitted.handle.to_hex(),
                    queries: vec![query.clone()],
                })
                .map_err(CliError::from)?,
        );
    }
    let mut arrival: Vec<u64> = Vec::new();
    let mut verified = 0usize;
    let mut pipelined = None;
    while client.pending() > 0 {
        let reply = client.recv_any().map_err(CliError::from)?;
        arrival.push(reply.id);
        let body = reply.outcome.map_err(CliError::from)?;
        if reply.id == fit_id {
            if !matches!(body, ResponseBody::Fitted { .. }) {
                return Err("pipelined fit answered with a non-fitted body".into());
            }
        } else {
            let index = embed_ids
                .iter()
                .position(|id| *id == reply.id)
                .ok_or_else(|| format!("reply to id {} which was never sent", reply.id))?;
            let ResponseBody::Embedded { matrix, .. } = body else {
                return Err(
                    format!("pipelined embed {index} answered with a non-embedded body").into(),
                );
            };
            if matrix != reference[index] {
                return Err(CliError::Usage(format!(
                    "MISMATCH: pipelined embed {index} differs from the in-process serial path"
                )));
            }
            verified += 1;
            if verified == n_queries {
                pipelined = Some(started.elapsed());
            }
        }
    }
    let pipelined = pipelined.expect("all embeds were answered");
    client.evict(slow.handle).map_err(CliError::from)?;

    let fit_position = arrival
        .iter()
        .position(|id| *id == fit_id)
        .expect("fit was answered");
    let overtook = fit_position; // replies that landed before the slow fit's
    let speedup = lockstep.as_secs_f64() / pipelined.as_secs_f64().max(1e-9);
    println!(
        "pipeline: OK — {verified}/{n_queries} pipelined embeds bit-identical to the \
         serial path, {overtook} overtook the slow fit (fit answered {}/{})",
        fit_position + 1,
        arrival.len()
    );
    println!(
        "mixed batch (1 slow fit + {n_queries} embeds), time to last embed — \
         lockstep: {:.2} ms  pipelined: {:.2} ms  speedup: {speedup:.2}x",
        lockstep.as_secs_f64() * 1e3,
        pipelined.as_secs_f64() * 1e3
    );
    if overtook == 0 {
        return Err(CliError::Usage(
            "pipelining had no effect: no embed overtook the slow fit (is the server \
             running with --workers >= 2?)"
                .to_string(),
        ));
    }
    Ok(())
}

fn verify(addr: &str, args: &[String]) -> CliResult {
    check_flags(args, &["--corpus", "--components", "--features"])?;
    let corpus = read_columns(&flag_value(args, "--corpus").ok_or("--corpus <file> is required")?)?;
    let config = config_of(args)?;
    let features = features_of(args)?;

    // The embed queries must round-trip over BOTH codecs, and a JSON embed request is
    // one MAX_JSON_LINE_BYTES-capped line (fit uploads chunk over binary; embeds do
    // not). Bound the query set to the leading columns whose JSON rendering (~20
    // bytes per bit-pattern value) comfortably fits, so `verify` works on corpora the
    // fit path can only move chunked.
    let mut queries: Vec<GemColumn> = Vec::new();
    let mut est_bytes = 1024usize;
    for column in &corpus {
        let cost = 20 * column.values.len() + column.header.len() + 64;
        if !queries.is_empty() && est_bytes + cost > gem_proto::MAX_JSON_LINE_BYTES / 2 {
            break;
        }
        est_bytes += cost;
        queries.push(column.clone());
    }

    // The negotiated connection (binary against a current server, JSON against one
    // that declines) fits and embeds; a second, deliberately JSON connection embeds
    // the same handle. The codecs must agree bit-for-bit with each other AND with the
    // in-process path — the gate that keeps the binary encoding honest.
    let mut negotiated = GemClient::connect(addr).map_err(CliError::from)?;
    let fitted = negotiated
        .fit(&corpus, &config, features)
        .map_err(CliError::from)?;
    let remote = negotiated
        .embed(fitted.handle, &queries)
        .map_err(CliError::from)?;
    let mut json_client = GemClient::connect_json(addr).map_err(CliError::from)?;
    let via_json = json_client
        .embed(fitted.handle, &queries)
        .map_err(CliError::from)?;

    let local = GemModel::fit(&corpus, &config, features)
        .and_then(|model| model.transform(&queries))
        .map_err(|e| format!("in-process fit/transform failed: {e}"))?;
    if remote.matrix != local.matrix {
        return Err(CliError::Usage(format!(
            "MISMATCH: remote embedding over the {} codec (digest {:016x}) differs \
             from in-process GemModel::fit+transform (digest {:016x})",
            negotiated.codec_name(),
            matrix_digest(&remote.matrix),
            matrix_digest(&local.matrix)
        )));
    }
    if via_json.matrix != remote.matrix {
        return Err(CliError::Usage(format!(
            "MISMATCH: the json codec (digest {:016x}) and the {} codec (digest \
             {:016x}) disagree about the same handle",
            matrix_digest(&via_json.matrix),
            negotiated.codec_name(),
            matrix_digest(&remote.matrix)
        )));
    }
    println!(
        "verify: OK — remote round trip over the {} and json codecs bit-identical to \
         in-process fit+transform ({} x {}, {} of {} columns queried, handle {}, \
         digest {:016x})",
        negotiated.codec_name(),
        remote.matrix.rows(),
        remote.matrix.cols(),
        queries.len(),
        corpus.len(),
        fitted.handle,
        matrix_digest(&remote.matrix)
    );
    Ok(())
}

/// Typed server errors that describe a transient condition worth retrying: the
/// admission layer shedding load, or a routing tier mid-fail-over. Each carries a
/// `retry_after_ms` hint the retry loop honors.
fn retryable(code: &str) -> bool {
    matches!(code, "overloaded" | "replica_unavailable" | "no_replica")
}

/// Remove a leading-anywhere `--retry N` pair from `args` (it is a global flag, not a
/// per-command one, so the per-command `check_flags` never sees it). Returns the
/// retry budget, 0 when absent.
fn take_retry_flag(args: &mut Vec<String>) -> Result<u32, String> {
    let Some(at) = args.iter().position(|a| a == "--retry") else {
        return Ok(0);
    };
    let value = args
        .get(at + 1)
        .ok_or("--retry needs a number of attempts")?
        .clone();
    let retries = value
        .parse()
        .map_err(|_| format!("--retry needs a number, got `{value}`"))?;
    args.drain(at..at + 2);
    Ok(retries)
}

/// Remove a global `--codec binary|json` pair from `args` and record the choice.
fn take_codec_flag(args: &mut Vec<String>) -> Result<(), String> {
    let Some(at) = args.iter().position(|a| a == "--codec") else {
        return Ok(());
    };
    let value = args
        .get(at + 1)
        .ok_or("--codec needs `binary` or `json`")?
        .clone();
    let choice = match value.as_str() {
        "binary" => CodecChoice::Binary,
        "json" => CodecChoice::Json,
        other => return Err(format!("--codec needs `binary` or `json`, got `{other}`")),
    };
    args.drain(at..at + 2);
    let _ = CODEC.set(choice);
    Ok(())
}

/// Default backoff when a retryable error carries no `retry_after_ms` hint.
const DEFAULT_BACKOFF_MS: u64 = 200;

fn run() -> CliResult {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let retries = take_retry_flag(&mut args)?;
    take_codec_flag(&mut args)?;
    let mut attempt = 0u32;
    loop {
        match run_command(&args) {
            Err(CliError::Server {
                code,
                message,
                retry_after_ms,
            }) if attempt < retries && retryable(&code) => {
                attempt += 1;
                let backoff = retry_after_ms.unwrap_or(DEFAULT_BACKOFF_MS);
                eprintln!(
                    "gem-client: [{code}] {message} — retrying ({attempt}/{retries}) in {backoff} ms"
                );
                std::thread::sleep(std::time::Duration::from_millis(backoff));
            }
            outcome => return outcome,
        }
    }
}

fn run_command(args: &[String]) -> CliResult {
    let usage = "usage: gem-client [--retry N] [--codec binary|json] \
                 <gen-corpus|fit|fit-update|embed|pull|push|pipeline|stats|health|list|evict|verify> ...\n  \
                 gem-client gen-corpus <file> [--columns N] [--rows N] [--seed N]\n  \
                 gem-client fit <addr> --corpus <file> [--components N] [--features D+S] [--composition NAME]\n  \
                 gem-client fit-update <addr> --handle <hex> --corpus <file-of-new-columns>\n  \
                 gem-client embed <addr> --handle <hex> --queries <file> [--out <file>]\n  \
                 gem-client pull <addr> --handle <hex> --out <file>\n  \
                 gem-client push <addr> --snapshot <file>\n  \
                 gem-client pipeline <addr> --corpus <file> [--components N] [--features D+S] [--queries N]\n  \
                 gem-client stats <addr>\n  \
                 gem-client health <addr>\n  \
                 gem-client list <addr>\n  \
                 gem-client evict <addr> --handle <hex>\n  \
                 gem-client verify <addr> --corpus <file> [--components N] [--features D+S]";
    let (command, target) = match (args.first(), args.get(1)) {
        (Some(command), Some(target)) => (command.as_str(), target.as_str()),
        _ => return Err(CliError::Usage(usage.to_string())),
    };
    let rest = &args[2..];
    match command {
        "gen-corpus" => gen_corpus(target, rest),
        "fit" => fit(target, rest),
        "fit-update" => fit_update(target, rest),
        "embed" => embed(target, rest),
        "pull" => pull(target, rest),
        "push" => push(target, rest),
        "pipeline" => pipeline(target, rest),
        "stats" => {
            check_flags(rest, &[])?;
            stats(target)
        }
        "health" => {
            check_flags(rest, &[])?;
            health(target)
        }
        "list" => {
            check_flags(rest, &[])?;
            list(target)
        }
        "evict" => evict(target, rest),
        "verify" => verify(target, rest),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n{usage}"
        ))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("gem-client: {message}");
            ExitCode::FAILURE
        }
        Err(CliError::Server { code, message, .. }) => {
            eprintln!("gem-client: server error [{code}]: {message}");
            ExitCode::from(2)
        }
        Err(CliError::Overloaded) => {
            eprintln!("gem-client: server is overloaded (shedding new requests)");
            ExitCode::from(3)
        }
    }
}
