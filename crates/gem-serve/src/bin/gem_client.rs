//! Command-line client for `gem-served`.
//!
//! ```sh
//! gem-client gen-corpus <file> [--columns N] [--rows N] [--seed N]
//! gem-client fit <addr> --corpus <file> [--components N] [--features D+S] [--composition NAME]
//! gem-client embed <addr> --handle <hex> --queries <file> [--out <file>]
//! gem-client stats <addr>
//! gem-client list <addr>
//! gem-client evict <addr> --handle <hex>
//! gem-client verify <addr> --corpus <file> [--components N] [--features D+S]
//! ```
//!
//! * `gen-corpus` writes a deterministic synthetic corpus file (JSON `{"columns":
//!   [...]}` with bit-pattern values) for smoke tests.
//! * `fit` prints `handle: <hex>` — pass that hex to `embed`/`evict`.
//! * `embed` prints the matrix shape and an FNV-1a digest of its value bits;
//!   `--out` additionally writes the bit-exact matrix JSON (two identical embeds
//!   produce byte-identical files).
//! * `verify` runs the full remote round trip (fit + embed) *and* the same
//!   fit + transform in-process, and fails unless the matrices are bit-identical —
//!   the end-to-end correctness gate CI runs against a live server.
//!
//! Exit codes: `0` success, `1` usage/transport/verification failure, `2` typed server
//! error (the stable code is printed, e.g. `unknown_model`).

use gem_core::{Composition, FeatureSet, GemColumn, GemConfig, GemModel};
use gem_json::{FromJson, Json, ToJson};
use gem_numeric::Matrix;
use gem_serve::{ClientError, GemClient, ModelHandle};
use std::process::ExitCode;

/// Failures split by exit code: `Usage` exits 1, `Server` exits 2.
enum CliError {
    Usage(String),
    Server { code: String, message: String },
}

impl From<ClientError> for CliError {
    fn from(e: ClientError) -> Self {
        match e {
            ClientError::Server { code, message } => CliError::Server { code, message },
            other => CliError::Usage(other.to_string()),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Usage(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::Usage(message.to_string())
    }
}

type CliResult = Result<(), CliError>;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name) {
        Some(text) => text
            .parse()
            .map_err(|_| format!("{name} needs a number, got `{text}`")),
        None => Ok(default),
    }
}

/// Reject typo'd or unknown flags instead of silently ignoring them (a silently ignored
/// `--component 8` would fit a 50-component model and hand back a handle for the wrong
/// model). Every gem-client flag takes a value, so arguments must come as
/// `--flag value` pairs and a value may not itself look like a flag.
fn check_flags(args: &[String], allowed: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        if !flag.starts_with("--") {
            return Err(format!("unexpected argument `{flag}`"));
        }
        if !allowed.contains(&flag.as_str()) {
            return Err(format!(
                "unknown flag `{flag}` (allowed here: {})",
                allowed.join(", ")
            ));
        }
        match args.get(i + 1) {
            None => return Err(format!("{flag} needs a value")),
            Some(value) if value.starts_with("--") => {
                return Err(format!("{flag} needs a value, got the flag `{value}`"))
            }
            Some(_) => {}
        }
        i += 2;
    }
    Ok(())
}

fn parse_features(label: &str) -> Result<FeatureSet, String> {
    let features = FeatureSet {
        distributional: label.contains('D'),
        statistical: label.contains('S'),
        contextual: label.contains('C'),
    };
    let canonical = features.label();
    if !features.is_non_empty() || canonical != label {
        return Err(format!(
            "`{label}` is not a feature set label (use one of D, S, C, D+S, C+S, D+C, D+C+S)"
        ));
    }
    Ok(features)
}

fn parse_composition(name: &str) -> Result<Composition, String> {
    match name {
        "concatenation" => Ok(Composition::Concatenation),
        "aggregation" => Ok(Composition::Aggregation),
        other => Err(format!(
            "`{other}` is not a composition (use `concatenation` or `aggregation`; \
             autoencoder compositions need the library API)"
        )),
    }
}

fn read_columns(path: &str) -> Result<Vec<GemColumn>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read corpus {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    json.field("columns")
        .and_then(|columns| {
            columns
                .as_array()
                .ok_or_else(|| gem_json::JsonError::conversion("`columns` is not an array"))?
                .iter()
                .map(GemColumn::from_json)
                .collect()
        })
        .map_err(|e| format!("{path}: {e}"))
}

fn config_of(args: &[String]) -> Result<GemConfig, String> {
    let components = flag_num(args, "--components", GemConfig::default().gmm.n_components)?;
    Ok(GemConfig::with_components(components))
}

fn features_of(args: &[String]) -> Result<FeatureSet, String> {
    match flag_value(args, "--features") {
        Some(label) => parse_features(&label),
        None => Ok(FeatureSet::ds()),
    }
}

fn handle_of(args: &[String]) -> Result<ModelHandle, String> {
    let text = flag_value(args, "--handle").ok_or("--handle <hex> is required")?;
    ModelHandle::parse(&text)
}

/// FNV-1a over the matrix's value bits: a compact digest two bit-identical embeddings
/// always share (and distinct ones essentially never do).
fn matrix_digest(matrix: &Matrix) -> u64 {
    let mut hasher = gem_serve::fingerprint::Fnv1a::new();
    for value in matrix.as_slice() {
        hasher.write_u64(value.to_bits());
    }
    hasher.finish()
}

fn gen_corpus(path: &str, args: &[String]) -> CliResult {
    check_flags(args, &["--columns", "--rows", "--seed"])?;
    let n_columns: usize = flag_num(args, "--columns", 24)?;
    let rows: usize = flag_num(args, "--rows", 60)?;
    let seed: u64 = flag_num(args, "--seed", 7)?;
    let columns = gem_serve::demo::synthetic_corpus(n_columns, rows, seed);
    let json = gem_json::object(vec![(
        "columns",
        Json::Array(columns.iter().map(|c| c.to_json()).collect()),
    )]);
    std::fs::write(path, json.to_compact_string())
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {n_columns} columns x {rows} rows to {path}");
    Ok(())
}

fn fit(addr: &str, args: &[String]) -> CliResult {
    check_flags(
        args,
        &["--corpus", "--components", "--features", "--composition"],
    )?;
    let corpus = read_columns(&flag_value(args, "--corpus").ok_or("--corpus <file> is required")?)?;
    let config = config_of(args)?;
    let features = features_of(args)?;
    let composition = flag_value(args, "--composition")
        .map(|name| parse_composition(&name))
        .transpose()?;
    let mut client = GemClient::connect(addr).map_err(CliError::from)?;
    let outcome = client
        .fit_with_composition(&corpus, &config, features, composition)
        .map_err(CliError::from)?;
    println!("handle: {}", outcome.handle);
    println!(
        "dim: {} served_from: {}",
        outcome.dim,
        outcome.served_from.wire_name()
    );
    Ok(())
}

fn embed(addr: &str, args: &[String]) -> CliResult {
    check_flags(args, &["--handle", "--queries", "--out"])?;
    let handle = handle_of(args)?;
    let queries =
        read_columns(&flag_value(args, "--queries").ok_or("--queries <file> is required")?)?;
    let mut client = GemClient::connect(addr).map_err(CliError::from)?;
    let outcome = client.embed(handle, &queries).map_err(CliError::from)?;
    println!(
        "rows: {} cols: {} served_from: {} digest: {:016x}",
        outcome.matrix.rows(),
        outcome.matrix.cols(),
        outcome.served_from.wire_name(),
        matrix_digest(&outcome.matrix)
    );
    if let Some(out) = flag_value(args, "--out") {
        std::fs::write(&out, outcome.matrix.to_json().to_compact_string())
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("matrix written to {out}");
    }
    Ok(())
}

fn stats(addr: &str) -> CliResult {
    let mut client = GemClient::connect(addr).map_err(CliError::from)?;
    let stats = client.stats().map_err(CliError::from)?;
    println!(
        "requests: {} resident_models: {} resident_bytes: {}",
        stats.requests, stats.resident_models, stats.resident_bytes
    );
    println!(
        "hits: {} warm_starts: {} misses: {} evictions: {} expirations: {} spills: {} \
         store_errors: {}",
        stats.hits,
        stats.warm_starts,
        stats.misses,
        stats.evictions,
        stats.expirations,
        stats.spills,
        stats.store_errors
    );
    match (stats.store_entries, stats.store_bytes) {
        (Some(entries), Some(bytes)) => println!("store: {entries} entries, {bytes} bytes"),
        _ => println!("store: (none attached)"),
    }
    Ok(())
}

fn list(addr: &str) -> CliResult {
    let mut client = GemClient::connect(addr).map_err(CliError::from)?;
    let models = client.list_models().map_err(CliError::from)?;
    println!(
        "{:<33} {:>6} {:>6} {:>10}",
        "handle", "tier", "dim", "bytes"
    );
    for model in &models {
        println!(
            "{:<33} {:>6} {:>6} {:>10}",
            model.handle,
            model.tier,
            model
                .dim
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".to_string()),
            model.bytes
        );
    }
    println!("{} models", models.len());
    Ok(())
}

fn evict(addr: &str, args: &[String]) -> CliResult {
    check_flags(args, &["--handle"])?;
    let handle = handle_of(args)?;
    let mut client = GemClient::connect(addr).map_err(CliError::from)?;
    let existed = client.evict(handle).map_err(CliError::from)?;
    println!(
        "{}: {}",
        handle,
        if existed { "evicted" } else { "not found" }
    );
    Ok(())
}

fn verify(addr: &str, args: &[String]) -> CliResult {
    check_flags(args, &["--corpus", "--components", "--features"])?;
    let corpus = read_columns(&flag_value(args, "--corpus").ok_or("--corpus <file> is required")?)?;
    let config = config_of(args)?;
    let features = features_of(args)?;

    let mut client = GemClient::connect(addr).map_err(CliError::from)?;
    let fitted = client
        .fit(&corpus, &config, features)
        .map_err(CliError::from)?;
    let remote = client
        .embed(fitted.handle, &corpus)
        .map_err(CliError::from)?;

    let local = GemModel::fit(&corpus, &config, features)
        .and_then(|model| model.transform(&corpus))
        .map_err(|e| format!("in-process fit/transform failed: {e}"))?;
    if remote.matrix != local.matrix {
        return Err(CliError::Usage(format!(
            "MISMATCH: remote embedding (digest {:016x}) differs from in-process \
             GemModel::fit+transform (digest {:016x})",
            matrix_digest(&remote.matrix),
            matrix_digest(&local.matrix)
        )));
    }
    println!(
        "verify: OK — remote round trip bit-identical to in-process fit+transform \
         ({} x {}, handle {}, digest {:016x})",
        remote.matrix.rows(),
        remote.matrix.cols(),
        fitted.handle,
        matrix_digest(&remote.matrix)
    );
    Ok(())
}

fn run() -> CliResult {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: gem-client <gen-corpus|fit|embed|stats|list|evict|verify> ...\n  \
                 gem-client gen-corpus <file> [--columns N] [--rows N] [--seed N]\n  \
                 gem-client fit <addr> --corpus <file> [--components N] [--features D+S] [--composition NAME]\n  \
                 gem-client embed <addr> --handle <hex> --queries <file> [--out <file>]\n  \
                 gem-client stats <addr>\n  \
                 gem-client list <addr>\n  \
                 gem-client evict <addr> --handle <hex>\n  \
                 gem-client verify <addr> --corpus <file> [--components N] [--features D+S]";
    let (command, target) = match (args.first(), args.get(1)) {
        (Some(command), Some(target)) => (command.as_str(), target.as_str()),
        _ => return Err(CliError::Usage(usage.to_string())),
    };
    let rest = &args[2..];
    match command {
        "gen-corpus" => gen_corpus(target, rest),
        "fit" => fit(target, rest),
        "embed" => embed(target, rest),
        "stats" => {
            check_flags(rest, &[])?;
            stats(target)
        }
        "list" => {
            check_flags(rest, &[])?;
            list(target)
        }
        "evict" => evict(target, rest),
        "verify" => verify(target, rest),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n{usage}"
        ))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("gem-client: {message}");
            ExitCode::FAILURE
        }
        Err(CliError::Server { code, message }) => {
            eprintln!("gem-client: server error [{code}]: {message}");
            ExitCode::from(2)
        }
    }
}
