//! Server-side metric assembly: the bridge between the serving hot path and
//! `gem-telemetry`'s instruments.
//!
//! [`ServerMetrics`] owns every live instrument the replica exports — per-request-shape
//! end-to-end latency histograms, per-shape × per-phase (queue wait, decode, execute,
//! encode) histograms, admission gauges (queue depth, busy workers, pool size, queue
//! capacity), and a scrape-to-scrape request rate — and renders them, together with the
//! lifetime [`ServerCounters`](crate::ServerCounters) and the service's cache
//! statistics, as one Prometheus text exposition document
//! ([`ServerMetrics::render`]). `gem-served --metrics-addr` serves exactly this
//! document to scrapers; the `Health` wire request derives its `ok|degraded|overloaded`
//! verdict from the same gauges.
//!
//! Recording costs a handful of relaxed atomic adds per request (no locks, no
//! allocation), so the instruments are always on — there is no sampling knob to forget
//! to enable before an incident.

use crate::net::ServerCounters;
use crate::service::ServiceStats;
use gem_proto::{RequestBody, WireLatency};
use gem_telemetry::{Counter, FloatGauge, Gauge, Histogram, MetricsRegistry, RateWindow};
use std::sync::Arc;
use std::time::Duration;

/// The request shapes latency is tracked under — one histogram series per shape, so a
/// slow `fit` tail cannot hide inside a flood of fast `embed`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestShape {
    /// A `fit` request (cold EM fit, cache hit, or warm start).
    Fit,
    /// A `fit_update` request (incremental growth of a fitted model).
    FitUpdate,
    /// An `embed` request against a fitted handle.
    Embed,
    /// An `embed_corpus` one-shot request.
    EmbedCorpus,
    /// A `push_model` snapshot install.
    PushModel,
    /// A `pull_model` snapshot fetch.
    PullModel,
    /// A `stats` request.
    Stats,
    /// A `health` probe.
    Health,
    /// A `list_models` request.
    ListModels,
    /// An `evict` request.
    Evict,
    /// A line that failed UTF-8 validation or protocol decoding — answered with a
    /// typed error, and timed like any other request so a flood of garbage is visible
    /// in the same place as real traffic.
    ProtocolError,
}

/// Every shape, in the order series are registered and reported.
pub const SHAPES: [RequestShape; 11] = [
    RequestShape::Fit,
    RequestShape::FitUpdate,
    RequestShape::Embed,
    RequestShape::EmbedCorpus,
    RequestShape::PushModel,
    RequestShape::PullModel,
    RequestShape::Stats,
    RequestShape::Health,
    RequestShape::ListModels,
    RequestShape::Evict,
    RequestShape::ProtocolError,
];

impl RequestShape {
    /// The stable label value this shape exports (`shape="fit"`, …) — the same names
    /// the wire protocol uses for request bodies.
    pub fn name(self) -> &'static str {
        match self {
            RequestShape::Fit => "fit",
            RequestShape::FitUpdate => "fit_update",
            RequestShape::Embed => "embed",
            RequestShape::EmbedCorpus => "embed_corpus",
            RequestShape::PushModel => "push_model",
            RequestShape::PullModel => "pull_model",
            RequestShape::Stats => "stats",
            RequestShape::Health => "health",
            RequestShape::ListModels => "list_models",
            RequestShape::Evict => "evict",
            RequestShape::ProtocolError => "protocol_error",
        }
    }

    fn index(self) -> usize {
        match self {
            RequestShape::Fit => 0,
            RequestShape::FitUpdate => 1,
            RequestShape::Embed => 2,
            RequestShape::EmbedCorpus => 3,
            RequestShape::PushModel => 4,
            RequestShape::PullModel => 5,
            RequestShape::Stats => 6,
            RequestShape::Health => 7,
            RequestShape::ListModels => 8,
            RequestShape::Evict => 9,
            RequestShape::ProtocolError => 10,
        }
    }

    /// Classify a decoded request body.
    pub(crate) fn of_body(body: &RequestBody) -> Self {
        match body {
            RequestBody::Fit { .. } => RequestShape::Fit,
            RequestBody::FitUpdate { .. } => RequestShape::FitUpdate,
            RequestBody::Embed { .. } => RequestShape::Embed,
            RequestBody::EmbedCorpus { .. } => RequestShape::EmbedCorpus,
            RequestBody::PushModel { .. } => RequestShape::PushModel,
            RequestBody::PullModel { .. } => RequestShape::PullModel,
            RequestBody::Stats => RequestShape::Stats,
            RequestBody::Health => RequestShape::Health,
            RequestBody::ListModels => RequestShape::ListModels,
            RequestBody::Evict { .. } => RequestShape::Evict,
        }
    }
}

/// The five histograms one shape records into: end-to-end plus the four phases.
#[derive(Debug)]
struct ShapeInstruments {
    total: Arc<Histogram>,
    queue: Arc<Histogram>,
    decode: Arc<Histogram>,
    execute: Arc<Histogram>,
    encode: Arc<Histogram>,
}

/// Every live instrument a serving replica exports. Built once at bind time, shared as
/// an `Arc` by the queue, the executors and the scrape listener.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: MetricsRegistry,
    shapes: Vec<ShapeInstruments>,
    depth_gauge: Arc<Gauge>,
    capacity_gauge: Arc<Gauge>,
    busy_gauge: Arc<Gauge>,
    workers_gauge: Arc<Gauge>,
    /// Execute-phase latency across all shapes — feeds the retry-after hint (how long
    /// one queued request takes to serve, times the backlog ahead of you).
    service_time: Arc<Histogram>,
    requests_per_second: Arc<FloatGauge>,
    rate: RateWindow,
    wire_bytes_read: Arc<Counter>,
    wire_bytes_written: Arc<Counter>,
    conn_inflight: Arc<Gauge>,
    conn_inflight_peak: Arc<Gauge>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// Build the full instrument set (one-time cost; a few hundred KiB of buckets).
    pub fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        let depth_gauge = registry.gauge(
            "gem_queue_depth",
            "frames waiting in the shared work queue for an executor",
        );
        let capacity_gauge = registry.gauge(
            "gem_queue_capacity",
            "work-queue bound above which new requests are shed",
        );
        let busy_gauge = registry.gauge("gem_workers_busy", "executors currently inside a request");
        let workers_gauge = registry.gauge("gem_workers", "executor-pool size");
        let requests_per_second = registry.float_gauge(
            "gem_requests_per_second",
            "request rate over the window since the previous scrape",
        );
        let service_time = registry.histogram(
            "gem_service_seconds",
            "execute-phase latency across all request shapes",
        );
        let wire_bytes_read = registry.counter(
            "gem_wire_bytes_read_total",
            "bytes read off client sockets (both codecs, payload and framing)",
        );
        let wire_bytes_written = registry.counter(
            "gem_wire_bytes_written_total",
            "bytes written to client sockets (both codecs, payload and framing)",
        );
        let conn_inflight = registry.gauge(
            "gem_connection_inflight_depth",
            "in-flight pipeline depth of the connection that most recently changed",
        );
        let conn_inflight_peak = registry.gauge(
            "gem_connection_inflight_peak",
            "deepest any single connection's pipeline has ever been",
        );
        let shapes = SHAPES
            .iter()
            .map(|shape| {
                let labels = [("shape", shape.name())];
                let total = registry.labeled_histogram(
                    "gem_request_seconds",
                    "end-to-end request latency (queue wait + decode + execute + encode) by shape",
                    &labels,
                );
                let phase = |registry: &mut MetricsRegistry, phase: &str| {
                    registry.labeled_histogram(
                        "gem_request_phase_seconds",
                        "request latency split by phase and shape",
                        &[("shape", shape.name()), ("phase", phase)],
                    )
                };
                ShapeInstruments {
                    total,
                    queue: phase(&mut registry, "queue"),
                    decode: phase(&mut registry, "decode"),
                    execute: phase(&mut registry, "execute"),
                    encode: phase(&mut registry, "encode"),
                }
            })
            .collect();
        ServerMetrics {
            registry,
            shapes,
            depth_gauge,
            capacity_gauge,
            busy_gauge,
            workers_gauge,
            service_time,
            requests_per_second,
            rate: RateWindow::new(),
            wire_bytes_read,
            wire_bytes_written,
            conn_inflight,
            conn_inflight_peak,
        }
    }

    /// Record one answered request: its shape and the four phase durations.
    pub(crate) fn observe(
        &self,
        shape: RequestShape,
        queue: Duration,
        decode: Duration,
        execute: Duration,
        encode: Duration,
    ) {
        let Some(instruments) = self.shapes.get(shape.index()) else {
            return; // unreachable by construction; never worth a panic on the hot path
        };
        instruments.total.record(queue + decode + execute + encode);
        instruments.queue.record(queue);
        instruments.decode.record(decode);
        instruments.execute.record(execute);
        instruments.encode.record(encode);
        self.service_time.record(execute);
    }

    /// The live queue-depth gauge (updated by the work queue under its own lock).
    pub(crate) fn depth_gauge(&self) -> &Gauge {
        &self.depth_gauge
    }

    /// The live busy-executors gauge.
    pub(crate) fn busy_gauge(&self) -> &Gauge {
        &self.busy_gauge
    }

    /// Count bytes read off a client socket (either codec).
    pub(crate) fn count_wire_read(&self, bytes: u64) {
        self.wire_bytes_read.add(bytes);
    }

    /// Count bytes written to a client socket (either codec).
    pub(crate) fn count_wire_written(&self, bytes: u64) {
        self.wire_bytes_written.add(bytes);
    }

    /// Record that some connection's in-flight pipeline depth changed: the depth gauge
    /// follows the most recent change, the peak gauge only ratchets upward — the
    /// fairness signal (who flooded the queue) survives the offender disconnecting.
    pub(crate) fn observe_connection_depth(&self, depth: u64) {
        self.conn_inflight.set(depth);
        self.conn_inflight_peak.ratchet(depth);
    }

    /// Total bytes read off client sockets.
    pub fn wire_bytes_read(&self) -> u64 {
        self.wire_bytes_read.get()
    }

    /// Total bytes written to client sockets.
    pub fn wire_bytes_written(&self) -> u64 {
        self.wire_bytes_written.get()
    }

    /// The deepest any single connection's pipeline has ever been.
    pub fn connection_inflight_peak(&self) -> u64 {
        self.conn_inflight_peak.get()
    }

    /// Pin the pool-size and queue-capacity gauges (once, at server start).
    pub(crate) fn set_shape_of_pool(&self, workers: u64, queue_capacity: u64) {
        self.workers_gauge.set(workers);
        self.capacity_gauge.set(queue_capacity);
    }

    /// Frames currently waiting for an executor.
    pub fn queue_depth(&self) -> u64 {
        self.depth_gauge.get()
    }

    /// The deepest the queue has ever been.
    pub fn queue_depth_high_water(&self) -> u64 {
        self.depth_gauge.high_water()
    }

    /// Executors currently inside a request.
    pub fn busy_workers(&self) -> u64 {
        self.busy_gauge.get()
    }

    /// The configured work-queue bound.
    pub fn queue_capacity(&self) -> u64 {
        self.capacity_gauge.get()
    }

    /// The configured executor-pool size.
    pub fn workers(&self) -> u64 {
        self.workers_gauge.get()
    }

    /// End-to-end request count recorded under `shape` (the conservation invariant:
    /// summed over every shape this equals `ServerCounters::requests`, because every
    /// popped frame is recorded under exactly one shape and shed frames never pop).
    pub fn shape_count(&self, shape: RequestShape) -> u64 {
        self.shapes
            .get(shape.index())
            .map(|i| i.total.count())
            .unwrap_or(0)
    }

    /// Per-shape latency quantiles for every shape that has served at least one
    /// request, in [`SHAPES`] order — the table a `stats` response carries.
    pub fn latency_table(&self) -> Vec<WireLatency> {
        SHAPES
            .iter()
            .zip(&self.shapes)
            .filter(|(_, instruments)| instruments.total.count() > 0)
            .map(|(shape, instruments)| WireLatency {
                shape: shape.name().to_string(),
                count: instruments.total.count(),
                p50_us: instruments.total.p50(),
                p90_us: instruments.total.p90(),
                p99_us: instruments.total.p99(),
            })
            .collect()
    }

    /// How long a shed (or backlogged) client should wait before retrying: the backlog
    /// ahead of it times the median service time, clamped to a sane band. With no
    /// latency data yet (cold server under a flood), a flat 100 ms.
    pub(crate) fn retry_hint_ms(&self, queue_depth: u64) -> u64 {
        let p50_us = self.service_time.p50();
        let per_request_ms = if p50_us == 0 {
            100
        } else {
            (p50_us / 1_000).max(1)
        };
        queue_depth
            .max(1)
            .saturating_mul(per_request_ms)
            .clamp(25, 5_000)
    }

    /// Render the full Prometheus text exposition document: the lifetime counters and
    /// cache/service statistics (mirrored at scrape time), then every live instrument.
    /// Pass `None` for `stats` to render without touching the service (the scrape
    /// listener passes `Some` so cache tiers and fit costs are exported too).
    pub fn render(&self, counters: &ServerCounters, stats: Option<&ServiceStats>) -> String {
        self.requests_per_second
            .set(self.rate.observe(counters.requests()));
        let mut out = String::new();
        let mut push = |name: &str, kind: &str, help: &str, value: String| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        };
        push(
            "gem_requests_total",
            "counter",
            "protocol lines answered (including error responses)",
            counters.requests().to_string(),
        );
        push(
            "gem_requests_shed_total",
            "counter",
            "requests shed at admission because the work queue was full",
            counters.requests_shed().to_string(),
        );
        push(
            "gem_connections_total",
            "counter",
            "connections accepted",
            counters.connections().to_string(),
        );
        push(
            "gem_protocol_errors_total",
            "counter",
            "lines that failed UTF-8 validation or protocol decoding",
            counters.protocol_errors().to_string(),
        );
        push(
            "gem_lock_recoveries_total",
            "counter",
            "work-queue locks recovered after a holder panicked",
            counters.lock_recoveries().to_string(),
        );
        push(
            "gem_workers_busy_high_water",
            "gauge",
            "most executors ever busy at one instant",
            counters.workers_high_water().to_string(),
        );
        push(
            "gem_queue_depth_high_water",
            "gauge",
            "deepest the work queue has ever been",
            self.depth_gauge.high_water().to_string(),
        );
        if let Some(stats) = stats {
            push(
                "gem_cache_hits_total",
                "counter",
                "lookups served from resident memory",
                stats.cache.hits.to_string(),
            );
            push(
                "gem_cache_warm_starts_total",
                "counter",
                "lookups rehydrated from the store tier",
                stats.cache.warm_starts.to_string(),
            );
            push(
                "gem_cache_misses_total",
                "counter",
                "lookups that found the model in neither tier",
                stats.cache.misses.to_string(),
            );
            push(
                "gem_cache_evictions_total",
                "counter",
                "entries evicted to respect capacity or memory bounds",
                stats.cache.evictions.to_string(),
            );
            push(
                "gem_cache_expirations_total",
                "counter",
                "entries dropped because they outlived the TTL",
                stats.cache.expirations.to_string(),
            );
            push(
                "gem_coalesced_fits_total",
                "counter",
                "duplicate in-flight fits coalesced onto one EM run",
                stats.cache.coalesced_fits.to_string(),
            );
            push(
                "gem_cache_spills_total",
                "counter",
                "evicted entries written to the store tier",
                stats.cache.spills.to_string(),
            );
            push(
                "gem_store_errors_total",
                "counter",
                "store reads or writes that failed",
                stats.cache.store_errors.to_string(),
            );
            push(
                "gem_fit_seconds_total",
                "counter",
                "seconds spent inside cold EM fits",
                format!("{}", stats.cache.fit_micros as f64 / 1e6),
            );
            push(
                "gem_em_iterations_total",
                "counter",
                "EM iterations across cold fits' winning restarts",
                stats.cache.em_iterations.to_string(),
            );
            push(
                "gem_resident_models",
                "gauge",
                "models resident in the memory tier",
                stats.resident_models.to_string(),
            );
            push(
                "gem_resident_bytes",
                "gauge",
                "approximate bytes of the resident models",
                stats.resident_bytes.to_string(),
            );
            if let (Some(entries), Some(bytes)) = (stats.store_entries, stats.store_bytes) {
                push(
                    "gem_store_entries",
                    "gauge",
                    "snapshots in the store tier",
                    entries.to_string(),
                );
                push(
                    "gem_store_bytes",
                    "gauge",
                    "total bytes of the store tier",
                    bytes.to_string(),
                );
            }
        }
        out.push_str(&self.registry.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_enumerate_every_request_body_and_have_stable_indices() {
        for (at, shape) in SHAPES.iter().enumerate() {
            assert_eq!(shape.index(), at, "SHAPES order must match index()");
        }
        // A fresh metrics set has zero everywhere and an empty latency table.
        let metrics = ServerMetrics::new();
        assert_eq!(metrics.queue_depth(), 0);
        assert!(metrics.latency_table().is_empty());
        for shape in SHAPES {
            assert_eq!(metrics.shape_count(shape), 0);
        }
    }

    #[test]
    fn observations_land_in_their_shape_and_the_latency_table() {
        let metrics = ServerMetrics::new();
        let us = Duration::from_micros;
        metrics.observe(RequestShape::Fit, us(10), us(200), us(60_000), us(30));
        metrics.observe(RequestShape::Embed, us(5), us(40), us(900), us(25));
        metrics.observe(RequestShape::Embed, us(5), us(40), us(1_100), us(25));
        assert_eq!(metrics.shape_count(RequestShape::Fit), 1);
        assert_eq!(metrics.shape_count(RequestShape::Embed), 2);
        assert_eq!(metrics.shape_count(RequestShape::Stats), 0);

        let table = metrics.latency_table();
        assert_eq!(table.len(), 2, "only shapes that served requests appear");
        assert_eq!(table[0].shape, "fit");
        assert_eq!(table[1].shape, "embed");
        assert_eq!(table[1].count, 2);
        // The fit took ~60ms end-to-end; the quantile is log-bucketed but must land in
        // the right decade.
        assert!(
            (60_000..=80_000).contains(&table[0].p50_us),
            "{}",
            table[0].p50_us
        );
        assert!(table[1].p99_us >= table[1].p50_us);
    }

    #[test]
    fn retry_hints_scale_with_backlog_and_service_time() {
        let metrics = ServerMetrics::new();
        // Cold server: flat 100 ms per queued request.
        assert_eq!(metrics.retry_hint_ms(10), 1_000);
        // After observing ~2ms executes, the hint is backlog × median, clamped.
        for _ in 0..100 {
            metrics.observe(
                RequestShape::Embed,
                Duration::ZERO,
                Duration::ZERO,
                Duration::from_micros(2_000),
                Duration::ZERO,
            );
        }
        let hint = metrics.retry_hint_ms(8);
        assert!((16..=40).contains(&hint), "8 × ~2ms ≈ {hint}");
        assert_eq!(metrics.retry_hint_ms(0), 25, "floor");
        assert_eq!(metrics.retry_hint_ms(1_000_000), 5_000, "ceiling");
    }

    #[test]
    fn render_covers_counters_gauges_and_per_shape_summaries() {
        let metrics = ServerMetrics::new();
        metrics.set_shape_of_pool(4, 256);
        metrics.observe(
            RequestShape::Stats,
            Duration::from_micros(3),
            Duration::from_micros(9),
            Duration::from_micros(120),
            Duration::from_micros(7),
        );
        let counters = ServerCounters::default();
        let text = metrics.render(&counters, None);
        for needle in [
            "# TYPE gem_requests_total counter",
            "# TYPE gem_requests_shed_total counter",
            "# TYPE gem_queue_depth gauge",
            "# TYPE gem_request_seconds summary",
            "# TYPE gem_request_phase_seconds summary",
            "gem_queue_capacity 256",
            "gem_workers 4",
            "gem_request_seconds{shape=\"stats\",quantile=\"0.99\"}",
            "gem_request_phase_seconds{shape=\"stats\",phase=\"execute\",quantile=\"0.5\"}",
            "gem_request_seconds_count{shape=\"stats\"} 1",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // Every non-comment sample traces back to a TYPE declaration.
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let name = line.split(['{', ' ']).next().unwrap();
            let base = name.trim_end_matches("_count").trim_end_matches("_sum");
            assert!(
                text.contains(&format!("# TYPE {base} ")),
                "sample `{line}` lacks a TYPE line"
            );
        }
    }
}
