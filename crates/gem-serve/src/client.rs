//! The client side of the serving protocol: [`GemClient`] drives a `gem-served` (or any
//! [`crate::net::GemServer`]) over TCP with typed calls — `fit` returns a
//! [`crate::ModelHandle`], `embed` takes one, and server-side failures come back as
//! [`ClientError::Server`] carrying the taxonomy's stable code, so callers branch on
//! `err.code() == Some("unknown_model")` instead of parsing prose.

use crate::handle::ModelHandle;
use crate::net::served_from_of;
use crate::ServedFrom;
use gem_core::{Composition, FeatureSet, GemColumn, GemConfig};
use gem_numeric::Matrix;
use gem_proto::{self as proto, RequestBody, ResponseBody};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Errors from a client call.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, write, read, or the server closed mid-response).
    Io(std::io::Error),
    /// The server's bytes were not a valid protocol line.
    Proto(proto::ProtoError),
    /// The server answered with a typed error body.
    Server {
        /// Stable code from the serving/protocol taxonomy (`unknown_model`, …).
        code: String,
        /// Self-explanatory message from the server.
        message: String,
    },
    /// The response decoded but did not fit the call (wrong variant, wrong id, unknown
    /// provenance string) — a protocol bug, not an operational condition.
    Unexpected {
        /// What was wrong.
        detail: String,
    },
}

impl ClientError {
    /// The server's stable error code, when this is a [`ClientError::Server`].
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Proto(e) => write!(f, "bad response from server: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Unexpected { detail } => write!(f, "unexpected response: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<proto::ProtoError> for ClientError {
    fn from(e: proto::ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// The outcome of a `fit` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitOutcome {
    /// Handle addressing the fitted model in later calls — on this connection, on
    /// others, and across server restarts when a store is attached.
    pub handle: ModelHandle,
    /// Embedding dimensionality of the model.
    pub dim: usize,
    /// Where the model came from ([`ServedFrom::ColdFit`] when this call paid the fit).
    pub served_from: ServedFrom,
}

/// The outcome of an `embed` / `embed_corpus` call.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbedOutcome {
    /// One embedding row per query column, bit-identical to the server's matrix.
    pub matrix: Matrix,
    /// Where the model came from.
    pub served_from: ServedFrom,
}

/// A synchronous protocol client over one TCP connection. Calls are sequential
/// (request, then response); open one client per thread for concurrency — the server
/// runs each connection on its own thread.
#[derive(Debug)]
pub struct GemClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl GemClient {
    /// Connect to a serving address (`host:port`).
    ///
    /// # Errors
    /// [`ClientError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(GemClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// Send one request body and decode the matching response body. Error bodies become
    /// [`ClientError::Server`]; id mismatches are [`ClientError::Unexpected`].
    fn call(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = proto::encode_request(&proto::RequestEnvelope::new(id, body));
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )));
        }
        let envelope = proto::decode_response(&response)?;
        if envelope.id != id {
            return Err(ClientError::Unexpected {
                detail: format!("response id {} for request id {id}", envelope.id),
            });
        }
        match envelope.body {
            ResponseBody::Error { code, message } => Err(ClientError::Server { code, message }),
            body => Ok(body),
        }
    }

    /// Fit (or reuse) the model for `corpus` and return its handle. Idempotent: an
    /// identical corpus + configuration returns an identical handle without re-fitting.
    ///
    /// # Errors
    /// [`ClientError::Server`] with code `fit_failed` when the pipeline rejects the
    /// corpus; transport errors otherwise.
    pub fn fit(
        &mut self,
        corpus: &[GemColumn],
        config: &GemConfig,
        features: FeatureSet,
    ) -> Result<FitOutcome, ClientError> {
        self.fit_with_composition(corpus, config, features, None)
    }

    /// [`GemClient::fit`] with an explicit composition override.
    ///
    /// # Errors
    /// See [`GemClient::fit`].
    pub fn fit_with_composition(
        &mut self,
        corpus: &[GemColumn],
        config: &GemConfig,
        features: FeatureSet,
        composition: Option<Composition>,
    ) -> Result<FitOutcome, ClientError> {
        match self.call(RequestBody::Fit {
            corpus: corpus.to_vec(),
            config: config.clone(),
            features,
            composition,
        })? {
            ResponseBody::Fitted {
                handle,
                dim,
                served_from,
            } => Ok(FitOutcome {
                handle: ModelHandle::from_hex(&handle).ok_or_else(|| ClientError::Unexpected {
                    detail: format!("malformed handle `{handle}` in fit response"),
                })?,
                dim: dim as usize,
                served_from: served_from_of(&served_from)?,
            }),
            other => Err(unexpected("fitted", &other)),
        }
    }

    /// Embed `queries` against the model `handle` names. The handle is resolved, never
    /// refitted: embedding through a handle the server no longer holds fails with code
    /// `unknown_model` (re-`fit` and retry).
    ///
    /// # Errors
    /// [`ClientError::Server`] with `unknown_model` / `transform_failed`; transport
    /// errors otherwise.
    pub fn embed(
        &mut self,
        handle: ModelHandle,
        queries: &[GemColumn],
    ) -> Result<EmbedOutcome, ClientError> {
        match self.call(RequestBody::Embed {
            handle: handle.to_hex(),
            queries: queries.to_vec(),
        })? {
            ResponseBody::Embedded {
                matrix,
                served_from,
            } => Ok(EmbedOutcome {
                matrix,
                served_from: served_from_of(&served_from)?,
            }),
            other => Err(unexpected("embedded", &other)),
        }
    }

    /// One-shot: embed `queries` (or the corpus itself) with any registry method by
    /// name — the path for methods without a fit/transform seam.
    ///
    /// # Errors
    /// [`ClientError::Server`] with `unknown_method` / `invalid_request` / `fit_failed`;
    /// transport errors otherwise.
    pub fn embed_corpus(
        &mut self,
        method: &str,
        corpus: &[GemColumn],
        queries: Option<&[GemColumn]>,
        labels: Option<&[String]>,
    ) -> Result<EmbedOutcome, ClientError> {
        match self.call(RequestBody::EmbedCorpus {
            method: method.to_string(),
            corpus: corpus.to_vec(),
            queries: queries.map(<[GemColumn]>::to_vec),
            labels: labels.map(<[String]>::to_vec),
        })? {
            ResponseBody::Embedded {
                matrix,
                served_from,
            } => Ok(EmbedOutcome {
                matrix,
                served_from: served_from_of(&served_from)?,
            }),
            other => Err(unexpected("embedded", &other)),
        }
    }

    /// Fetch the server's cumulative statistics.
    ///
    /// # Errors
    /// Transport errors; the server never rejects a stats request.
    pub fn stats(&mut self) -> Result<proto::WireStats, ClientError> {
        match self.call(RequestBody::Stats)? {
            ResponseBody::Stats(stats) => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// List every model the server can currently resolve (both tiers).
    ///
    /// # Errors
    /// [`ClientError::Server`] with `store_error` when the store tier cannot be listed.
    pub fn list_models(&mut self) -> Result<Vec<proto::WireModelInfo>, ClientError> {
        match self.call(RequestBody::ListModels)? {
            ResponseBody::Models(models) => Ok(models),
            other => Err(unexpected("models", &other)),
        }
    }

    /// Remove the model `handle` names from both server tiers. Returns whether it
    /// existed.
    ///
    /// # Errors
    /// Transport errors.
    pub fn evict(&mut self, handle: ModelHandle) -> Result<bool, ClientError> {
        match self.call(RequestBody::Evict {
            handle: handle.to_hex(),
        })? {
            ResponseBody::Evicted { existed } => Ok(existed),
            other => Err(unexpected("evicted", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &ResponseBody) -> ClientError {
    let got = match got {
        ResponseBody::Fitted { .. } => "fitted",
        ResponseBody::Embedded { .. } => "embedded",
        ResponseBody::Stats(_) => "stats",
        ResponseBody::Models(_) => "models",
        ResponseBody::Evicted { .. } => "evicted",
        ResponseBody::Error { .. } => "error",
    };
    ClientError::Unexpected {
        detail: format!("wanted a `{wanted}` response, got `{got}`"),
    }
}
