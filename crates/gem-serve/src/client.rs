//! The client side of the serving protocol: [`GemClient`] drives a `gem-served` (or any
//! [`crate::net::GemServer`]) over TCP with typed calls — `fit` returns a
//! [`crate::ModelHandle`], `embed` takes one, and server-side failures come back as
//! [`ClientError::Server`] carrying the taxonomy's stable code, so callers branch on
//! `err.code() == Some("unknown_model")` instead of parsing prose.
//!
//! ## Two modes on one connection
//!
//! * **Lockstep** — the typed calls ([`GemClient::fit`], [`GemClient::embed`], …) send
//!   one request and block for its response. Simple, and exactly as fast as one request
//!   at a time can be.
//! * **Pipelined** — [`GemClient::send`] issues a raw [`RequestBody`] and returns its
//!   correlation id immediately; many requests ride the connection concurrently and
//!   [`GemClient::recv_any`] yields responses **in whatever order the server finishes
//!   them** (the protocol's out-of-order contract), each correlated back to its id
//!   through the client's in-flight map. A cheap `Embed` pipelined behind a slow `Fit`
//!   returns first instead of queueing behind it. The two modes compose: a typed call
//!   issued while pipelined requests are outstanding parks any foreign responses it
//!   reads and [`GemClient::recv_any`] hands them out afterwards.
//!
//! ## Codec negotiation
//!
//! [`GemClient::connect`] opens the connection in JSON, sends the `gem_proto::binary`
//! hello as its first line, and switches to the length-prefixed binary codec when the
//! server accepts — f64 matrices cross the wire as raw little-endian IEEE-754 bytes
//! (bit-exact both ways, no hex strings, no per-value allocation), oversized `Fit`
//! corpora go up as chunked uploads ([`GemClient::with_chunk_bytes`]), and `Embed`
//! responses stream back as row frames that are reassembled here. A server that
//! declines the hello (a pre-v5 build, or `gem-served --json-only`) answers it with an
//! uncorrelated error line, which this client consumes as "negotiate down": the *same*
//! connection continues in JSON, no reconnect. [`GemClient::connect_json`] skips the
//! hello for debugging with a wire dump; [`GemClient::codec_name`] reports what was
//! negotiated.

use crate::handle::ModelHandle;
use crate::net::served_from_of;
use crate::ServedFrom;
use gem_core::{Composition, FeatureSet, GemColumn, GemConfig};
use gem_json::Json;
use gem_numeric::Matrix;
use gem_proto::{self as proto, binary, RequestBody, ResponseBody};
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Errors from a client call.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, write, read, or the server closed mid-response).
    Io(std::io::Error),
    /// The server's bytes were not a valid protocol line.
    Proto(proto::ProtoError),
    /// The server answered with a typed error body.
    Server {
        /// Stable code from the serving/protocol taxonomy (`unknown_model`, …).
        code: String,
        /// Self-explanatory message from the server.
        message: String,
        /// Server-suggested backoff before retrying, when the code warrants one
        /// (today: `overloaded` shed responses).
        retry_after_ms: Option<u64>,
    },
    /// The response decoded but did not fit the call (wrong variant, uncorrelatable or
    /// unknown id, unknown provenance string) — a protocol bug, not an operational
    /// condition.
    Unexpected {
        /// What was wrong.
        detail: String,
    },
}

impl ClientError {
    /// The server's stable error code, when this is a [`ClientError::Server`].
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }

    /// The server's retry-after hint, when this is a [`ClientError::Server`] that
    /// carried one (an `overloaded` shed response).
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ClientError::Server { retry_after_ms, .. } => *retry_after_ms,
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Proto(e) => write!(f, "bad response from server: {e}"),
            ClientError::Server {
                code,
                message,
                retry_after_ms,
            } => match retry_after_ms {
                Some(ms) => write!(f, "server error [{code}]: {message} (retry after {ms} ms)"),
                None => write!(f, "server error [{code}]: {message}"),
            },
            ClientError::Unexpected { detail } => write!(f, "unexpected response: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<proto::ProtoError> for ClientError {
    fn from(e: proto::ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// The outcome of a `fit` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitOutcome {
    /// Handle addressing the fitted model in later calls — on this connection, on
    /// others, and across server restarts when a store is attached.
    pub handle: ModelHandle,
    /// Embedding dimensionality of the model.
    pub dim: usize,
    /// Where the model came from ([`ServedFrom::ColdFit`] when this call paid the fit).
    pub served_from: ServedFrom,
}

/// The outcome of an `embed` / `embed_corpus` call.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbedOutcome {
    /// One embedding row per query column, bit-identical to the server's matrix.
    pub matrix: Matrix,
    /// Where the model came from.
    pub served_from: ServedFrom,
}

/// The outcome of a `push_model` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushOutcome {
    /// The handle the snapshot named, now resolvable on the server.
    pub handle: ModelHandle,
    /// Embedding dimensionality of the installed model.
    pub dim: usize,
}

/// The outcome of a `pull_model` call.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotOutcome {
    /// The handle the snapshot names.
    pub handle: ModelHandle,
    /// The serialized model — the bit-exact `gem-store` envelope, ready to
    /// [`GemClient::push_model`] to another replica or file into a store directory.
    pub snapshot: Json,
    /// Where the model came from.
    pub served_from: ServedFrom,
}

/// The outcome of a `health` probe: the replica's admission-control view of itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthOutcome {
    /// `ok`, `degraded`, or `overloaded`.
    pub state: HealthState,
    /// Frames waiting for an executor at probe time.
    pub queue_depth: u64,
    /// The bound the work queue sheds at.
    pub queue_capacity: u64,
    /// Executors inside a request at probe time (includes the probe's own).
    pub busy_workers: u64,
    /// Total executor threads.
    pub workers: u64,
    /// Suggested backoff before sending real work, milliseconds (`None` when `ok`).
    pub retry_after_ms: Option<u64>,
}

/// The three health states a replica reports, ordered from healthy to shedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Accepting work normally.
    Ok,
    /// Still accepting, but the queue is building or every executor is busy — route
    /// new work elsewhere when possible.
    Degraded,
    /// The queue is full; new requests are being shed with `overloaded` errors.
    Overloaded,
}

impl HealthState {
    /// The wire name (`"ok"` / `"degraded"` / `"overloaded"`).
    pub fn wire_name(self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Overloaded => "overloaded",
        }
    }

    fn from_wire_name(name: &str) -> Option<Self> {
        match name {
            "ok" => Some(HealthState::Ok),
            "degraded" => Some(HealthState::Degraded),
            "overloaded" => Some(HealthState::Overloaded),
            _ => None,
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// One correlated reply from a pipelined connection (see [`GemClient::recv_any`]).
#[derive(Debug)]
pub struct PipelinedReply {
    /// The id of the request this reply answers (as returned by [`GemClient::send`]).
    pub id: u64,
    /// The response body, with typed server error bodies already raised to
    /// [`ClientError::Server`].
    pub outcome: Result<ResponseBody, ClientError>,
}

/// A protocol client over one TCP connection, usable lockstep (typed calls) or
/// pipelined ([`GemClient::send`] / [`GemClient::recv_any`]) — see the module docs.
/// One client per thread; the server multiplexes any number of connections onto its
/// executor pool.
#[derive(Debug)]
pub struct GemClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// Ids sent but not yet answered.
    in_flight: HashSet<u64>,
    /// Correlated responses read while waiting for a different id, in arrival order.
    parked: VecDeque<(u64, ResponseBody)>,
    /// The codec negotiated at connect time; never changes afterwards.
    codec: WireCodec,
    /// Binary-codec frame reassembly (unused in JSON mode).
    assembler: binary::FrameAssembler,
    /// Streamed embed rows accumulated per in-flight id (unused in JSON mode).
    partials: binary::EmbedPartials,
    /// Corpus payloads above this many wire bytes go up as chunked uploads.
    chunk_bytes: usize,
}

/// Which codec a [`GemClient`] connection settled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireCodec {
    Json,
    Binary,
}

impl GemClient {
    /// Connect to a serving address (`host:port`), negotiating the binary codec and
    /// falling back to JSON on the same connection when the server declines.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::from_stream(TcpStream::connect(addr)?, true)
    }

    /// Connect speaking newline-delimited JSON only — no binary hello is sent. For
    /// debugging with a readable wire dump, and for byte-level compatibility checks
    /// (`gem-client --codec json`).
    ///
    /// # Errors
    /// [`ClientError::Io`] when the connection cannot be established.
    pub fn connect_json(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::from_stream(TcpStream::connect(addr)?, false)
    }

    /// [`GemClient::connect`] with a deadline on *every* socket operation: the connect
    /// itself, and each subsequent read and write. This is the constructor for control
    /// planes — a health prober or a router's snapshot-shipping path must observe a
    /// wedged replica as a typed [`ClientError::Io`] within the deadline, not hang on
    /// it forever. Every resolved address is tried before giving up.
    ///
    /// # Errors
    /// [`ClientError::Io`] when resolution yields nothing or no address accepts within
    /// `timeout`.
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: std::time::Duration,
    ) -> Result<Self, ClientError> {
        let mut last: Option<std::io::Error> = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    return Self::from_stream(stream, true);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no socket addresses",
            )
        })))
    }

    fn from_stream(stream: TcpStream, negotiate: bool) -> Result<Self, ClientError> {
        // Pipelining lives or dies on this: with Nagle's algorithm on, a burst of
        // small request lines is held back waiting for ACKs (≈40ms of delayed-ACK
        // stall per burst), which would serialize exactly the traffic pipelining
        // exists to overlap.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut client = GemClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
            in_flight: HashSet::new(),
            parked: VecDeque::new(),
            codec: WireCodec::Json,
            assembler: binary::FrameAssembler::new(),
            partials: binary::EmbedPartials::new(),
            chunk_bytes: binary::DEFAULT_CHUNK_BYTES,
        };
        if negotiate {
            client.negotiate_binary()?;
        }
        Ok(client)
    }

    /// Send the binary hello and read the server's one-line verdict. An accept at our
    /// protocol version switches the connection to the binary codec; *any other
    /// answer* — a `protocol_error` from a JSON-only or pre-v5 server that saw the
    /// hello as a malformed request, a `version_mismatch` decline — downgrades to JSON
    /// on the same connection. Only transport failures are errors.
    fn negotiate_binary(&mut self) -> Result<(), ClientError> {
        self.writer.write_all(binary::hello_line().as_bytes())?;
        self.writer.flush()?;
        let mut verdict = String::new();
        if self.reader.read_line(&mut verdict)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection during codec negotiation",
            )));
        }
        if binary::parse_accept(&verdict) == Some(proto::PROTOCOL_VERSION) {
            self.codec = WireCodec::Binary;
        }
        // Any non-accept verdict (an uncorrelated error line from a server that
        // cannot or will not speak binary) is consumed here; the connection simply
        // stays in JSON. A garbled verdict line also lands here: JSON is the codec
        // that makes no assumptions about the peer.
        Ok(())
    }

    /// The wire codec this connection negotiated: `"binary"` or `"json"`.
    pub fn codec_name(&self) -> &'static str {
        match self.codec {
            WireCodec::Json => "json",
            WireCodec::Binary => "binary",
        }
    }

    /// Set the chunk budget (in wire bytes) for corpus uploads on the binary codec:
    /// a `Fit`/`FitUpdate` whose corpus exceeds it is sent as a
    /// `begin_fit`/`corpus_chunk`/`end_fit` sequence instead of one giant frame.
    /// Values below 1 KiB are clamped up. No effect on the JSON codec.
    pub fn with_chunk_bytes(mut self, chunk_bytes: usize) -> Self {
        self.chunk_bytes = chunk_bytes;
        self
    }

    /// Pipeline a request: write it and return its correlation id *without waiting for
    /// the response*. Collect responses — in server completion order, not send order —
    /// with [`GemClient::recv_any`].
    ///
    /// # Errors
    /// [`ClientError::Io`] when the write fails.
    pub fn send(&mut self, body: RequestBody) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = proto::RequestEnvelope::new(id, body);
        match self.codec {
            WireCodec::Json => {
                let line = proto::encode_request(&envelope);
                self.writer.write_all(line.as_bytes())?;
            }
            WireCodec::Binary => {
                // One frame normally; a corpus above the chunk budget becomes the
                // begin/chunk/end upload sequence. The frames are written back to
                // back and flushed once: one TCP push per request.
                for frame in binary::encode_request_frames(&envelope, self.chunk_bytes)? {
                    self.writer.write_all(&frame)?;
                }
            }
        }
        self.writer.flush()?;
        self.in_flight.insert(id);
        Ok(id)
    }

    /// How many pipelined requests are awaiting their response (parked responses —
    /// already received, not yet claimed — count as answered).
    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }

    /// Receive the next response in **server completion order**: a parked response if
    /// one is waiting, otherwise the next line off the socket. The reply is correlated
    /// to its request id; typed server error bodies surface per-reply in
    /// [`PipelinedReply::outcome`], so one failed request never poisons the others.
    ///
    /// # Errors
    /// [`ClientError::Unexpected`] when nothing is in flight (or the server answers an
    /// id this client never sent, or an uncorrelatable framing error arrives);
    /// transport errors otherwise.
    pub fn recv_any(&mut self) -> Result<PipelinedReply, ClientError> {
        let (id, body) = match self.parked.pop_front() {
            Some(reply) => reply,
            None => {
                if self.in_flight.is_empty() {
                    return Err(ClientError::Unexpected {
                        detail: "recv_any with no requests in flight".to_string(),
                    });
                }
                self.read_correlated()?
            }
        };
        Ok(PipelinedReply {
            id,
            outcome: raise_errors(body),
        })
    }

    /// Read one complete response off the socket — a JSON line, or however many binary
    /// frames it takes to finish one (streamed embed row frames accumulate in
    /// [`binary::EmbedPartials`] until their `embed_done`) — and correlate it against
    /// the in-flight set.
    fn read_correlated(&mut self) -> Result<(u64, ResponseBody), ClientError> {
        let envelope = match self.codec {
            WireCodec::Json => {
                let mut response = String::new();
                if self.reader.read_line(&mut response)? == 0 {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection before responding",
                    )));
                }
                proto::decode_response(&response)?
            }
            WireCodec::Binary => loop {
                if let Some(frame) = self.assembler.next_frame()? {
                    match binary::decode_response_frame(&frame, &mut self.partials)? {
                        Some(envelope) => break envelope,
                        None => continue, // a row frame; keep accumulating
                    }
                }
                let buffered = self.reader.fill_buf()?;
                if buffered.is_empty() {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection before responding",
                    )));
                }
                let read = buffered.len();
                self.assembler.push(buffered);
                self.reader.consume(read);
            },
        };
        let Some(id) = envelope.in_reply_to else {
            // An uncorrelatable framing error: the server could not tell which request
            // the offending line was. This client only writes well-formed lines, so
            // something corrupted the stream — fail loudly rather than guess.
            return Err(match envelope.body {
                ResponseBody::Error {
                    code,
                    message,
                    retry_after_ms,
                } => ClientError::Server {
                    code,
                    message,
                    retry_after_ms,
                },
                _ => ClientError::Unexpected {
                    detail: "response with in_reply_to null and a non-error body".to_string(),
                },
            });
        };
        if !self.in_flight.remove(&id) {
            return Err(ClientError::Unexpected {
                detail: format!("response for id {id}, which is not in flight"),
            });
        }
        Ok((id, envelope.body))
    }

    /// Send one request body and block for *its* response (responses to other in-flight
    /// ids read along the way are parked for [`GemClient::recv_any`]). Error bodies
    /// become [`ClientError::Server`].
    fn call(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let id = self.send(body)?;
        // A freshly allocated id cannot already have a parked response: ids are
        // monotonically increasing and parked entries were correlated against earlier
        // in-flight ids.
        debug_assert!(self.parked.iter().all(|(parked_id, _)| *parked_id != id));
        loop {
            let (got, body) = self.read_correlated()?;
            if got == id {
                return raise_errors(body);
            }
            self.parked.push_back((got, body));
        }
    }

    /// Fit (or reuse) the model for `corpus` and return its handle. Idempotent: an
    /// identical corpus + configuration returns an identical handle without re-fitting.
    ///
    /// # Errors
    /// [`ClientError::Server`] with code `fit_failed` when the pipeline rejects the
    /// corpus; transport errors otherwise.
    pub fn fit(
        &mut self,
        corpus: &[GemColumn],
        config: &GemConfig,
        features: FeatureSet,
    ) -> Result<FitOutcome, ClientError> {
        self.fit_with_composition(corpus, config, features, None)
    }

    /// [`GemClient::fit`] with an explicit composition override.
    ///
    /// # Errors
    /// See [`GemClient::fit`].
    pub fn fit_with_composition(
        &mut self,
        corpus: &[GemColumn],
        config: &GemConfig,
        features: FeatureSet,
        composition: Option<Composition>,
    ) -> Result<FitOutcome, ClientError> {
        match self.call(RequestBody::Fit {
            corpus: corpus.to_vec(),
            config: config.clone(),
            features,
            composition,
        })? {
            ResponseBody::Fitted {
                handle,
                dim,
                served_from,
            } => Ok(FitOutcome {
                handle: ModelHandle::from_hex(&handle).ok_or_else(|| ClientError::Unexpected {
                    detail: format!("malformed handle `{handle}` in fit response"),
                })?,
                dim: dim as usize,
                served_from: served_from_of(&served_from)?,
            }),
            other => Err(unexpected("fitted", &other)),
        }
    }

    /// Fold `new_columns` (the new columns only, not the full grown corpus) into the
    /// fitted model `handle` names, returning the derived model's handle. The server
    /// freezes the parent's components — no EM re-run, old-column embeddings stay
    /// bit-identical under the new handle, and the parent is recorded as lineage in
    /// the server's store tier. Idempotent like `fit`: the same parent + growth
    /// returns the same handle from cache. Chains compose: the returned handle is a
    /// valid parent for the next `fit_update`.
    ///
    /// # Errors
    /// [`ClientError::Server`] with code `unknown_model` when the server no longer
    /// holds the parent (re-`fit` the full corpus), `fit_failed` when the update is
    /// rejected (e.g. empty growth); transport errors otherwise.
    pub fn fit_update(
        &mut self,
        handle: ModelHandle,
        new_columns: &[GemColumn],
    ) -> Result<FitOutcome, ClientError> {
        match self.call(RequestBody::FitUpdate {
            handle: handle.to_hex(),
            corpus: new_columns.to_vec(),
        })? {
            ResponseBody::Fitted {
                handle,
                dim,
                served_from,
            } => Ok(FitOutcome {
                handle: ModelHandle::from_hex(&handle).ok_or_else(|| ClientError::Unexpected {
                    detail: format!("malformed handle `{handle}` in fit_update response"),
                })?,
                dim: dim as usize,
                served_from: served_from_of(&served_from)?,
            }),
            other => Err(unexpected("fitted", &other)),
        }
    }

    /// Embed `queries` against the model `handle` names. The handle is resolved, never
    /// refitted: embedding through a handle the server no longer holds fails with code
    /// `unknown_model` (re-`fit` and retry).
    ///
    /// # Errors
    /// [`ClientError::Server`] with `unknown_model` / `transform_failed`; transport
    /// errors otherwise.
    pub fn embed(
        &mut self,
        handle: ModelHandle,
        queries: &[GemColumn],
    ) -> Result<EmbedOutcome, ClientError> {
        match self.call(RequestBody::Embed {
            handle: handle.to_hex(),
            queries: queries.to_vec(),
        })? {
            ResponseBody::Embedded {
                matrix,
                served_from,
            } => Ok(EmbedOutcome {
                matrix,
                served_from: served_from_of(&served_from)?,
            }),
            other => Err(unexpected("embedded", &other)),
        }
    }

    /// One-shot: embed `queries` (or the corpus itself) with any registry method by
    /// name — the path for methods without a fit/transform seam.
    ///
    /// # Errors
    /// [`ClientError::Server`] with `unknown_method` / `invalid_request` / `fit_failed`;
    /// transport errors otherwise.
    pub fn embed_corpus(
        &mut self,
        method: &str,
        corpus: &[GemColumn],
        queries: Option<&[GemColumn]>,
        labels: Option<&[String]>,
    ) -> Result<EmbedOutcome, ClientError> {
        match self.call(RequestBody::EmbedCorpus {
            method: method.to_string(),
            corpus: corpus.to_vec(),
            queries: queries.map(<[GemColumn]>::to_vec),
            labels: labels.map(<[String]>::to_vec),
        })? {
            ResponseBody::Embedded {
                matrix,
                served_from,
            } => Ok(EmbedOutcome {
                matrix,
                served_from: served_from_of(&served_from)?,
            }),
            other => Err(unexpected("embedded", &other)),
        }
    }

    /// Install a model snapshot (pulled from another replica, or read from a
    /// `gem-store` file) on the server. The corpus never crosses the wire and the
    /// server refits nothing.
    ///
    /// # Errors
    /// [`ClientError::Server`] with `invalid_request` for snapshots that fail store
    /// validation; transport errors otherwise.
    pub fn push_model(&mut self, snapshot: &Json) -> Result<PushOutcome, ClientError> {
        match self.call(RequestBody::PushModel {
            snapshot: snapshot.clone(),
        })? {
            ResponseBody::Pushed { handle, dim } => Ok(PushOutcome {
                handle: ModelHandle::from_hex(&handle).ok_or_else(|| ClientError::Unexpected {
                    detail: format!("malformed handle `{handle}` in push response"),
                })?,
                dim: dim as usize,
            }),
            other => Err(unexpected("pushed", &other)),
        }
    }

    /// Fetch the serialized snapshot of the model `handle` names — bit-exact, suitable
    /// for [`GemClient::push_model`] to another replica.
    ///
    /// # Errors
    /// [`ClientError::Server`] with `unknown_model` when the handle resolves in neither
    /// tier; transport errors otherwise.
    pub fn pull_model(&mut self, handle: ModelHandle) -> Result<SnapshotOutcome, ClientError> {
        match self.call(RequestBody::PullModel {
            handle: handle.to_hex(),
        })? {
            ResponseBody::Snapshot {
                handle,
                snapshot,
                served_from,
            } => Ok(SnapshotOutcome {
                handle: ModelHandle::from_hex(&handle).ok_or_else(|| ClientError::Unexpected {
                    detail: format!("malformed handle `{handle}` in snapshot response"),
                })?,
                snapshot,
                served_from: served_from_of(&served_from)?,
            }),
            other => Err(unexpected("snapshot", &other)),
        }
    }

    /// Fetch the server's cumulative statistics.
    ///
    /// # Errors
    /// Transport errors; the server never rejects a stats request.
    pub fn stats(&mut self) -> Result<proto::WireStats, ClientError> {
        match self.call(RequestBody::Stats)? {
            ResponseBody::Stats(stats) => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Probe the replica's health (`ok|degraded|overloaded`, queue depth, retry hint).
    /// Answered by the serving front-end without touching the model cache, so it stays
    /// cheap even when the replica is saturated — the probe a load balancer polls.
    ///
    /// # Errors
    /// Transport errors, or [`ClientError::Unexpected`] when the server reports a
    /// health state this client does not know.
    pub fn health(&mut self) -> Result<HealthOutcome, ClientError> {
        match self.call(RequestBody::Health)? {
            ResponseBody::Health {
                state,
                queue_depth,
                queue_capacity,
                busy_workers,
                workers,
                retry_after_ms,
            } => Ok(HealthOutcome {
                state: HealthState::from_wire_name(&state).ok_or_else(|| {
                    ClientError::Unexpected {
                        detail: format!("unknown health state `{state}`"),
                    }
                })?,
                queue_depth,
                queue_capacity,
                busy_workers,
                workers,
                retry_after_ms,
            }),
            other => Err(unexpected("health", &other)),
        }
    }

    /// List every model the server can currently resolve (both tiers).
    ///
    /// # Errors
    /// [`ClientError::Server`] with `store_error` when the store tier cannot be listed.
    pub fn list_models(&mut self) -> Result<Vec<proto::WireModelInfo>, ClientError> {
        match self.call(RequestBody::ListModels)? {
            ResponseBody::Models(models) => Ok(models),
            other => Err(unexpected("models", &other)),
        }
    }

    /// Remove the model `handle` names from both server tiers. Returns whether it
    /// existed.
    ///
    /// # Errors
    /// Transport errors.
    pub fn evict(&mut self, handle: ModelHandle) -> Result<bool, ClientError> {
        match self.call(RequestBody::Evict {
            handle: handle.to_hex(),
        })? {
            ResponseBody::Evicted { existed } => Ok(existed),
            other => Err(unexpected("evicted", &other)),
        }
    }
}

/// Raise a typed error body to [`ClientError::Server`]; pass everything else through.
fn raise_errors(body: ResponseBody) -> Result<ResponseBody, ClientError> {
    match body {
        ResponseBody::Error {
            code,
            message,
            retry_after_ms,
        } => Err(ClientError::Server {
            code,
            message,
            retry_after_ms,
        }),
        body => Ok(body),
    }
}

fn unexpected(wanted: &str, got: &ResponseBody) -> ClientError {
    let got = match got {
        ResponseBody::Fitted { .. } => "fitted",
        ResponseBody::Embedded { .. } => "embedded",
        ResponseBody::Pushed { .. } => "pushed",
        ResponseBody::Snapshot { .. } => "snapshot",
        ResponseBody::Stats(_) => "stats",
        ResponseBody::Health { .. } => "health",
        ResponseBody::Models(_) => "models",
        ResponseBody::Evicted { .. } => "evicted",
        ResponseBody::Error { .. } => "error",
    };
    ClientError::Unexpected {
        detail: format!("wanted a `{wanted}` response, got `{got}`"),
    }
}
