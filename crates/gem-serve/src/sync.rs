//! Poisoning recovery for the serving stack's locks.
//!
//! A `std::sync::Mutex` poisons itself when a thread panics while holding the guard.
//! Every lock in this crate protects a structure that stays usable after a lost
//! update — an LRU map (worst case: one model entry is refitted later), a work queue
//! (worst case: one frame was already popped by the panicking worker), monotonic
//! counters (worst case: an undercount) — so propagating the poison would trade a
//! recoverable hiccup for a wedged replica: one panicked executor would abort every
//! reader and executor that touches the queue after it.
//!
//! [`lock_or_recover`] is the **single** sanctioned way to take such a lock: it clears
//! the poison and keeps serving. The `gem-lint` rule `L1` bans `.lock().unwrap()` /
//! `.lock().expect(..)` in non-test code precisely so recovery policy lives here, in
//! one audited place, instead of being re-decided (differently) at every call site.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Process-wide count of poisoned-lock recoveries performed by the helpers in this
/// module. A non-zero value means some thread panicked while holding a serving lock —
/// worth investigating even though serving continued.
static RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Total poisoned-lock recoveries since process start.
pub fn lock_recoveries() -> u64 {
    RECOVERIES.load(Ordering::Relaxed)
}

/// Acquire `lock`, clearing the poison (and counting the recovery) if a previous
/// holder panicked. See the module docs for why recovery is sound for every lock in
/// this crate.
pub fn lock_or_recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock_or_recover_with(lock, || {})
}

/// [`lock_or_recover`] with a callback invoked on recovery, so call sites with richer
/// accounting (e.g. [`crate::ServerCounters`]) can record the event where an operator
/// will see it.
pub fn lock_or_recover_with<T>(lock: &Mutex<T>, on_poison: impl FnOnce()) -> MutexGuard<'_, T> {
    match lock.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            RECOVERIES.fetch_add(1, Ordering::Relaxed);
            on_poison();
            poisoned.into_inner()
        }
    }
}

/// Block on `condvar` until notified, recovering the guard if the mutex was poisoned
/// while this thread slept.
pub fn wait_or_recover<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match condvar.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => {
            RECOVERIES.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        }
    }
}

/// Block on `condvar` for at most `timeout`, recovering the guard if the mutex was
/// poisoned while this thread slept. The timed-out flag is deliberately dropped:
/// every caller in this crate re-checks its own predicate in a loop.
pub fn wait_timeout_or_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
    on_poison: impl FnOnce(),
) -> MutexGuard<'a, T> {
    match condvar.wait_timeout(guard, timeout) {
        Ok((guard, _timed_out)) => guard,
        Err(poisoned) => {
            RECOVERIES.fetch_add(1, Ordering::Relaxed);
            on_poison();
            poisoned.into_inner().0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Panic while holding the lock so it poisons.
    fn poison<T: Send + 'static>(lock: &Arc<Mutex<T>>) {
        let clone = Arc::clone(lock);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock();
            panic!("poison the lock on purpose");
        })
        .join();
    }

    #[test]
    fn recovers_a_poisoned_mutex_and_counts_it() {
        let lock = Arc::new(Mutex::new(7));
        poison(&lock);
        assert!(lock.lock().is_err(), "the lock must actually be poisoned");
        let before = lock_recoveries();
        let mut called = false;
        {
            let guard = lock_or_recover_with(&lock, || called = true);
            assert_eq!(*guard, 7, "the protected value survives recovery");
        }
        assert!(called);
        assert!(lock_recoveries() > before);
        // Recovery is not sticky-fatal: the next acquisition succeeds normally and the
        // value is still writable.
        *lock_or_recover(&lock) = 8;
        assert_eq!(*lock_or_recover(&lock), 8);
    }

    #[test]
    fn timed_wait_survives_poisoning_while_asleep() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, condvar) = &*pair;
                let mut guard = lock_or_recover(lock);
                while *guard == 0 {
                    guard =
                        wait_timeout_or_recover(condvar, guard, Duration::from_millis(5), || {});
                }
                *guard
            })
        };
        // Poison the mutex from another thread while the waiter sleeps, then publish.
        let (lock, condvar) = &*pair;
        let _ = std::thread::spawn({
            let pair = Arc::clone(&pair);
            move || {
                let _guard = pair.0.lock();
                panic!("poison while the waiter sleeps");
            }
        })
        .join();
        *lock_or_recover(lock) = 42;
        condvar.notify_all();
        assert_eq!(waiter.join().expect("waiter survives the poison"), 42);
    }
}
