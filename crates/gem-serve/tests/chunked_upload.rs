//! End-to-end acceptance: a corpus whose JSON rendering exceeds the single-line cap
//! ([`gem_proto::MAX_JSON_LINE_BYTES`]) still fits over the wire — the negotiated
//! binary codec streams it up as a `begin_fit`/`corpus_chunk`/`end_fit` sequence —
//! and the resulting handle is bit-identical to the in-process [`gem_serve::model_key`]
//! derivation, so handles computed offline address models fitted through the chunked
//! path and vice versa.

use gem_core::{FeatureSet, GemColumn, GemConfig, MethodRegistry};
use gem_serve::{model_key, EmbedService, GemClient, GemServer, ModelHandle};
use std::sync::Arc;

fn big_corpus() -> Vec<GemColumn> {
    (0..12)
        .map(|c| {
            GemColumn::new(
                (0..42_000)
                    .map(|i| (c * 60) as f64 + (i % 97) as f64 * 1.5)
                    .collect(),
                format!("col_{c}"),
            )
        })
        .collect()
}

#[test]
fn oversized_corpora_fit_via_chunked_upload_with_in_process_handles() {
    let config = GemConfig::fast();
    let corpus = big_corpus();

    // This corpus genuinely cannot cross the wire as one JSON line.
    let as_json = gem_proto::encode_request(&gem_proto::RequestEnvelope::new(
        1,
        gem_proto::RequestBody::Fit {
            corpus: corpus.clone(),
            config: config.clone(),
            features: FeatureSet::ds(),
            composition: None,
        },
    ));
    assert!(
        as_json.len() > gem_proto::MAX_JSON_LINE_BYTES,
        "the test corpus must exceed the JSON line cap ({} <= {})",
        as_json.len(),
        gem_proto::MAX_JSON_LINE_BYTES
    );
    // And it exceeds the default chunk budget, so the upload really chunks.
    assert!(gem_proto::binary::corpus_wire_bytes(&corpus) > gem_proto::binary::DEFAULT_CHUNK_BYTES);

    let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 8);
    service.register_gem_family(&config);
    let server = GemServer::bind(Arc::new(service), ("127.0.0.1", 0))
        .unwrap()
        .with_workers(2);
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run());

    let mut client = GemClient::connect(handle.addr()).unwrap();
    assert_eq!(client.codec_name(), "binary");
    let fitted = client.fit(&corpus, &config, FeatureSet::ds()).unwrap();

    // The acceptance bar: the chunked upload's handle equals the in-process ModelKey —
    // every value bit and header byte survived the chunking.
    assert_eq!(
        fitted.handle,
        ModelHandle::from(model_key(&corpus, &config, FeatureSet::ds()))
    );

    // The fitted model answers embeds identically over both codecs: the streamed-row
    // binary path and the JSON path produce byte-identical matrices.
    let queries: Vec<GemColumn> = (0..3)
        .map(|c| {
            GemColumn::new(
                (0..100)
                    .map(|i| (c * 60) as f64 + f64::from(i) * 0.5)
                    .collect(),
                format!("q_{c}"),
            )
        })
        .collect();
    let streamed = client.embed(fitted.handle, &queries).unwrap();
    let mut json_client = GemClient::connect_json(handle.addr()).unwrap();
    assert_eq!(json_client.codec_name(), "json");
    let via_json = json_client.embed(fitted.handle, &queries).unwrap();
    assert_eq!(streamed.matrix, via_json.matrix);
    assert_eq!(streamed.matrix.rows(), queries.len());

    // Nothing about the chunked upload tripped the protocol-error taxonomy, and the
    // wire telemetry saw the corpus go by.
    assert_eq!(handle.counters().protocol_errors(), 0);
    assert!(
        handle.metrics().wire_bytes_read() as usize > gem_proto::binary::corpus_wire_bytes(&corpus)
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}
