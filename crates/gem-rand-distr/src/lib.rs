//! # gem-rand-distr
//!
//! Sampling distributions over [`gem-rand`](../gem_rand/index.html) generators, exposing
//! the subset of the `rand_distr` API the corpus simulators use ([`Distribution`],
//! [`Normal`], [`LogNormal`], [`Gamma`], [`Beta`], [`Exp`], [`Uniform`]). Dependent crates
//! rename this package to `rand_distr` so `use rand_distr::...` call sites stay
//! source-compatible while the build remains fully offline.
//!
//! Algorithms: Box–Muller for the normal, Marsaglia–Tsang squeeze for the gamma (with the
//! Ahrens–Dieter boost for shape < 1), the two-gamma construction for the beta and inverse
//! CDF for the exponential. All are deterministic given the generator stream.

#![deny(missing_docs)]
#![warn(clippy::all)]

use rand::{RngCore, Standard};
use std::fmt;

/// Error raised by distribution constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Types from which values of type `T` can be sampled.
pub trait Distribution<T> {
    /// Draw one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // (0, 1]: avoids ln(0) in inverse-CDF and Box–Muller transforms.
    1.0 - f64::sample_standard(rng)
}

/// Draw one standard-normal value (Box–Muller, cosine branch).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = unit_open(rng);
    let u2 = f64::sample_standard(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Gaussian distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Create a normal distribution with the given mean and standard deviation.
    ///
    /// # Errors
    /// Fails when `std` is negative or non-finite.
    pub fn new(mean: f64, std: f64) -> Result<Self, ParamError> {
        if !(std.is_finite() && mean.is_finite()) || std < 0.0 {
            return Err(ParamError("normal requires finite mean and std >= 0"));
        }
        Ok(Normal { mean, std })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    inner: Normal,
}

impl LogNormal {
    /// Create a log-normal from the mean / std of the underlying normal.
    ///
    /// # Errors
    /// Fails when `sigma` is negative or parameters are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(LogNormal {
            inner: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng).exp()
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    rate: f64,
}

impl Exp {
    /// Create an exponential distribution.
    ///
    /// # Errors
    /// Fails when `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ParamError("exponential requires rate > 0"));
        }
        Ok(Exp { rate })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open(rng).ln() / self.rate
    }
}

/// Gamma distribution with shape `k` and scale `theta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Create a gamma distribution.
    ///
    /// # Errors
    /// Fails when shape or scale is not strictly positive and finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        if !(shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0) {
            return Err(ParamError("gamma requires shape > 0 and scale > 0"));
        }
        Ok(Gamma { shape, scale })
    }

    fn sample_shape_ge_one<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        // Marsaglia & Tsang (2000): squeeze method for shape >= 1.
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = unit_open(rng);
            if u < 1.0 - 0.0331 * x * x * x * x {
                return d * v3;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let unscaled = if self.shape >= 1.0 {
            Self::sample_shape_ge_one(self.shape, rng)
        } else {
            // Ahrens–Dieter boost: Gamma(a) = Gamma(a + 1) * U^(1/a) for a < 1.
            let boost = Self::sample_shape_ge_one(self.shape + 1.0, rng);
            boost * unit_open(rng).powf(1.0 / self.shape)
        };
        unscaled * self.scale
    }
}

/// Beta distribution on `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    a: Gamma,
    b: Gamma,
}

impl Beta {
    /// Create a beta distribution with shape parameters `alpha`, `beta`.
    ///
    /// # Errors
    /// Fails when either shape is not strictly positive and finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, ParamError> {
        Ok(Beta {
            a: Gamma::new(alpha, 1.0)?,
            b: Gamma::new(beta, 1.0)?,
        })
    }
}

impl Distribution<f64> for Beta {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = self.a.sample(rng);
        let y = self.b.sample(rng);
        if x + y == 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }
}

/// Continuous uniform distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Uniform on the half-open interval `[lo, hi)`.
    pub fn new(lo: f64, hi: f64) -> Self {
        Uniform { lo, hi }
    }

    /// Uniform on the closed interval `[lo, hi]` (identical sampling: the endpoint has
    /// measure zero for `f64` grids at this precision).
    pub fn new_inclusive(lo: f64, hi: f64) -> Self {
        Uniform { lo, hi }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + (self.hi - self.lo) * f64::sample_standard(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments_match_parameters() {
        let mut r = rng();
        let d = Normal::new(5.0, 2.0).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Beta::new(0.0, 1.0).is_err());
        let e = Exp::new(-1.0).unwrap_err();
        assert!(e.to_string().contains("rate"));
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng();
        let d = Exp::new(0.5).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        let (mean, _) = moments(&samples);
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gamma_moments_match_for_large_and_small_shape() {
        let mut r = rng();
        for (shape, scale) in [(3.0, 2.0), (0.5, 1.0)] {
            let d = Gamma::new(shape, scale).unwrap();
            let samples: Vec<f64> = (0..30_000).map(|_| d.sample(&mut r)).collect();
            let (mean, var) = moments(&samples);
            assert!(
                (mean - shape * scale).abs() < 0.15 * (shape * scale).max(0.3),
                "shape {shape}: mean {mean}"
            );
            assert!(
                (var - shape * scale * scale).abs() < 0.2 * (shape * scale * scale).max(0.3),
                "shape {shape}: var {var}"
            );
            assert!(samples.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn beta_stays_in_unit_interval_with_correct_mean() {
        let mut r = rng();
        let d = Beta::new(2.0, 6.0).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let (mean, _) = moments(&samples);
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn lognormal_is_positive_and_right_skewed() {
        let mut r = rng();
        let d = LogNormal::new(0.0, 1.0).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let (mean, _) = moments(&samples);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "right skew: mean {mean} median {median}");
    }

    #[test]
    fn uniform_covers_interval() {
        let mut r = rng();
        let d = Uniform::new_inclusive(-3.0, 7.0);
        let samples: Vec<f64> = (0..10_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| (-3.0..=7.0).contains(&x)));
        let (mean, _) = moments(&samples);
        assert!((mean - 2.0).abs() < 0.15);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let a: Vec<f64> = {
            let mut r = rng();
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng();
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
