//! # gem-proto
//!
//! The serving wire protocol: what `gem-served` speaks on a socket and `GemClient`
//! drives from the other end. Two codecs share one envelope model:
//!
//! * **JSON lines** (the debug/compat codec, and every connection's starting state):
//!   one protocol message per line — a compact JSON envelope terminated by `\n`
//!   (newline-delimited JSON), so framing needs nothing beyond `BufRead::read_line`
//!   and any language with a JSON parser can interoperate. A single line is capped at
//!   [`MAX_JSON_LINE_BYTES`]; corpora beyond that must use the binary codec's chunked
//!   upload.
//! * **Negotiated binary frames** ([`binary`]): a client may open with the
//!   [`binary::hello_line`] handshake; once accepted, messages become
//!   `[u32 len][u8 kind][payload]` frames with f64 payloads as raw little-endian
//!   IEEE-754 bytes, plus chunked corpus upload and streamed embed responses. JSON
//!   stays available on every server; binary is the fast path.
//!
//! Shapes:
//!
//! * [`RequestEnvelope`] `{ id, version, body }` / [`ResponseEnvelope`]
//!   `{ id, version, body }` — `id` is chosen by the client and echoed verbatim in the
//!   response ([`ResponseEnvelope::in_reply_to`]); `version` is [`PROTOCOL_VERSION`] and
//!   a mismatch is rejected *before* the body is interpreted
//!   ([`ProtoError::VersionMismatch`]), mirroring `gem-store`'s header-first validation.
//! * [`RequestBody`] — the request shapes of the handle-based serving API: `Fit`
//!   (corpus + configuration → model handle), `Embed` (handle + query columns),
//!   `EmbedCorpus` (the one-shot any-method path), `PushModel` / `PullModel` (snapshot
//!   shipping between replicas), `Stats`, `ListModels`, `Evict`.
//! * [`ResponseBody`] — one success variant per request shape, plus `Error` carrying the
//!   serving taxonomy's stable `code` (e.g. `unknown_model`) and a human message.
//!
//! ## Correlation contract: responses arrive in any order
//!
//! The envelope `id` is the *only* correlation mechanism. A server may execute requests
//! from one connection concurrently and **must be assumed to answer out of order**: a
//! client that pipelines requests matches each response to its request by
//! `in_reply_to`, never by arrival position. (A lockstep client — one request in
//! flight at a time — observes no difference.) Each response carries exactly one
//! `in_reply_to`; ids should be unique among a connection's in-flight requests, or
//! replies to duplicates are indistinguishable.
//!
//! Error responses follow the same contract: a line that fails to decode is answered
//! with an `Error` body whose `in_reply_to` is the id salvaged from the malformed line
//! ([`salvage_request_id`]) when one is recoverable, and **JSON `null` otherwise** — a
//! pipelined client can therefore never mis-correlate an unattributable framing error
//! with a real request (`id: 0` is a valid request id, not an error sentinel).
//!
//! ## Snapshot shipping: `PushModel` / `PullModel`
//!
//! `PullModel {handle}` returns the model's serialized snapshot — byte-for-byte the
//! envelope `gem-store` files on disk (magic + format version + key + bit-exact model
//! payload) — and `PushModel {snapshot}` installs such a snapshot on a server under the
//! handle its header names. Together they let a replica acquire a handle **without
//! refitting and without the corpus ever crossing the wire**: models ship as
//! pre-verified artifacts, and because payloads are bit-exact, the pushed replica's
//! `Embed` output is bit-identical to the origin's.
//!
//! **Payload codecs are bit-exact.** Column values and embedding matrices cross the wire
//! as IEEE-754 bit patterns (`gem_json::bits`), not decimal — the corpus fingerprint
//! that addresses models hashes value *bits*, so a corpus decoded on the server must
//! fingerprint to exactly the key the client's corpus would produce locally, and an
//! embedding decoded on the client must equal (`==`) the server's matrix. This is the
//! same convention `gem-store` snapshots use on disk.

#![deny(missing_docs)]
#![warn(clippy::all)]

use gem_core::{Composition, FeatureSet, GemColumn, GemConfig};
use gem_json::{object, opt_u64_number, string, u64_number, FromJson, Json, JsonError, ToJson};
use gem_numeric::Matrix;
use std::fmt;

/// Version of the wire protocol. Bump on any incompatible envelope or body change; both
/// ends reject foreign versions before interpreting anything else.
///
/// History: 1 — the PR 4 lockstep protocol (in-order responses, numeric response `id`,
/// six request shapes). 2 — out-of-order responses correlated by id, response `id` may
/// be `null` (unattributable framing errors), `push_model`/`pull_model` bodies, and
/// `coalesced_fits` in stats. 3 — `fit_update` body (incremental corpus growth against
/// an existing handle) and the `fit_micros`/`em_iterations` fit-cost breakdown in stats.
/// 4 — `health` request/response (`ok|degraded|overloaded` + queue depth + retry-after
/// hint), `retry_after_ms` on error bodies (set when the server sheds load), and
/// per-shape latency quantiles (`latencies`) in stats.
/// 5 — the negotiated binary codec ([`binary`]): `gem-wire-binary` handshake lines,
/// length-prefixed frames with raw-IEEE-754 f64 payloads, chunked corpus upload
/// (`begin_fit`/`corpus_chunk`/`end_fit`), streamed embed responses
/// (`embed_rows`/`embed_done`), and the [`MAX_JSON_LINE_BYTES`] cap on the JSON codec.
pub const PROTOCOL_VERSION: u64 = 5;

/// Upper bound on one JSON-codec protocol line. Lines beyond this are answered with a
/// typed `protocol_error` instead of being buffered without limit — corpora too large
/// to fit use the [`binary`] codec's chunked upload, which has no such ceiling.
pub const MAX_JSON_LINE_BYTES: usize = 8 * 1024 * 1024;

pub mod binary;

/// Errors decoding a protocol line.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The line was not a valid envelope (bad JSON, missing fields, unknown body type).
    Parse {
        /// What was wrong with it.
        message: String,
    },
    /// The envelope was written by a different protocol version.
    VersionMismatch {
        /// Version found in the envelope.
        found: u64,
        /// Version this build speaks ([`PROTOCOL_VERSION`]).
        expected: u64,
    },
}

impl ProtoError {
    /// Stable machine-readable code, carried in error response bodies.
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::Parse { .. } => "protocol_error",
            ProtoError::VersionMismatch { .. } => "version_mismatch",
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Parse { message } => write!(f, "malformed protocol line: {message}"),
            ProtoError::VersionMismatch { found, expected } => write!(
                f,
                "protocol version {found} is not supported (this build speaks {expected})"
            ),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> Self {
        ProtoError::Parse {
            message: e.to_string(),
        }
    }
}

/// One serving request body. See the crate docs for the protocol shape.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Fit (or reuse) the model for `corpus`; the response carries its handle.
    Fit {
        /// The corpus defining the model.
        corpus: Vec<GemColumn>,
        /// Pipeline configuration to fit with.
        config: GemConfig,
        /// Which evidence types the model uses.
        features: FeatureSet,
        /// Optional composition override applied on top of `config`.
        composition: Option<Composition>,
    },
    /// Embed `queries` against the model `handle` names. Carries no corpus, so the
    /// server can only *resolve* the handle — an unknown handle is a typed error, never
    /// a silent refit.
    Embed {
        /// Handle hex returned by an earlier `Fit`.
        handle: String,
        /// Columns to embed.
        queries: Vec<GemColumn>,
    },
    /// One-shot: embed with any registry method by name (the back-compat path for
    /// methods without a fit/transform seam).
    EmbedCorpus {
        /// Registry method name.
        method: String,
        /// The corpus defining the model / the embedding input.
        corpus: Vec<GemColumn>,
        /// Columns to embed; `None` embeds the corpus itself.
        queries: Option<Vec<GemColumn>>,
        /// Training labels for supervised methods.
        labels: Option<Vec<String>>,
    },
    /// Fold `corpus` (the *new* columns only) into the fitted model `handle` names,
    /// producing a derived model under a new handle without a from-scratch EM run: the
    /// parent's frozen GMM, scaler and embedder are reused and only the new columns'
    /// signatures are computed. The response is a `Fitted` carrying the derived handle;
    /// the server records the parent handle as lineage in its store tier. An unknown
    /// handle is a typed error, never a silent full fit.
    FitUpdate {
        /// Handle hex of the fitted model to grow.
        handle: String,
        /// The new columns being folded in (not the full grown corpus).
        corpus: Vec<GemColumn>,
    },
    /// Install a serialized model snapshot (the `gem-store` envelope, as returned by
    /// `PullModel` or read from a store file) under the handle its header names. The
    /// corpus never crosses the wire and nothing is refitted: the model ships as a
    /// pre-verified artifact.
    PushModel {
        /// The snapshot envelope (opaque here; validated against the store format by
        /// the server before any of it is interpreted).
        snapshot: Json,
    },
    /// Fetch the serialized snapshot of the model `handle` names, suitable for
    /// `PushModel`-ing to another replica or filing into a `gem-store` directory.
    PullModel {
        /// Handle hex of the model to ship.
        handle: String,
    },
    /// Report server statistics.
    Stats,
    /// Report the replica's health state (`ok|degraded|overloaded`) with queue depth
    /// and a retry-after hint — the cheap probe a load balancer or router polls. Health
    /// requests are answered from the network layer's own gauges without touching the
    /// model cache, so they stay cheap even when the replica is saturated.
    Health,
    /// List every resolvable model.
    ListModels,
    /// Remove the model `handle` names from both cache tiers.
    Evict {
        /// Handle hex of the model to remove.
        handle: String,
    },
}

/// Latency quantiles for one request shape, as they cross the wire in a stats body.
/// All values are integer microseconds (bucket upper bounds from the serving layer's
/// log-scaled histograms) — no floats, so the payload is trivially bit-stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireLatency {
    /// The request shape the series covers (`"fit"`, `"embed"`, …).
    pub shape: String,
    /// Requests of this shape observed since startup.
    pub count: u64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile end-to-end latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub p99_us: u64,
}

/// Cumulative serving statistics as they cross the wire.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Lookups served from resident memory.
    pub hits: u64,
    /// Lookups served by rehydrating a spilled model from the store tier.
    pub warm_starts: u64,
    /// Lookups that found the model in neither tier.
    pub misses: u64,
    /// Entries evicted to respect the capacity or memory bound.
    pub evictions: u64,
    /// Entries dropped because they outlived the TTL.
    pub expirations: u64,
    /// Duplicate in-flight fits coalesced onto another request's computation
    /// (single-flight: N concurrent fits of one handle pay one EM fit).
    pub coalesced_fits: u64,
    /// Evicted entries successfully written to the store tier.
    pub spills: u64,
    /// Store reads or writes that failed.
    pub store_errors: u64,
    /// Total microseconds spent inside `GemModel::fit` EM runs (cold fits only;
    /// cache hits, warm starts and incremental updates add nothing here).
    pub fit_micros: u64,
    /// Total EM iterations across those fits' winning restarts.
    pub em_iterations: u64,
    /// Models resident in the memory tier.
    pub resident_models: u64,
    /// Approximate bytes of the resident models.
    pub resident_bytes: u64,
    /// Snapshots in the store tier (`None` without a store).
    pub store_entries: Option<u64>,
    /// Total bytes of the store tier (`None` without a store).
    pub store_bytes: Option<u64>,
    /// Requests processed by the service.
    pub requests: u64,
    /// Per-shape end-to-end latency quantiles, in the order the server tracks shapes
    /// (empty when the server predates telemetry or has served nothing).
    pub latencies: Vec<WireLatency>,
}

/// One resolvable model, as listed in a `models` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireModelInfo {
    /// The model's handle hex.
    pub handle: String,
    /// `"memory"` or `"disk"` — the closest tier holding it.
    pub tier: String,
    /// Embedding dimensionality (known for resident models).
    pub dim: Option<u64>,
    /// Approximate resident bytes or snapshot file size.
    pub bytes: u64,
}

/// One serving response body: a success variant per request shape, or `Error`.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Outcome of a `Fit`.
    Fitted {
        /// Handle addressing the fitted model.
        handle: String,
        /// Embedding dimensionality of the model.
        dim: u64,
        /// Model provenance: `"cold_fit"`, `"memory_cache"` or `"disk_store"`.
        served_from: String,
    },
    /// Outcome of an `Embed` or `EmbedCorpus`.
    Embedded {
        /// The embedding matrix (bit-exact).
        matrix: Matrix,
        /// Model provenance (see `Fitted::served_from`).
        served_from: String,
    },
    /// Outcome of a `PushModel`: the snapshot was installed and its handle resolves.
    Pushed {
        /// Handle the snapshot's header named (now resolvable on this server).
        handle: String,
        /// Embedding dimensionality of the installed model.
        dim: u64,
    },
    /// Outcome of a `PullModel`: the model's serialized snapshot.
    Snapshot {
        /// The model's handle hex (echoing the request).
        handle: String,
        /// The `gem-store` snapshot envelope, bit-exact.
        snapshot: Json,
        /// Which tier produced the model (see `Fitted::served_from`).
        served_from: String,
    },
    /// Outcome of a `Stats` request.
    Stats(WireStats),
    /// Outcome of a `Health` request: the replica's admission-control view of itself.
    Health {
        /// `"ok"`, `"degraded"` (queue building or all workers busy) or
        /// `"overloaded"` (queue full; new work is being shed).
        state: String,
        /// Frames waiting for an executor right now.
        queue_depth: u64,
        /// The bound the work queue sheds at.
        queue_capacity: u64,
        /// Executors currently inside a request.
        busy_workers: u64,
        /// Total executor threads.
        workers: u64,
        /// Suggested client backoff before retrying, milliseconds. `None` when the
        /// replica is accepting work normally.
        retry_after_ms: Option<u64>,
    },
    /// Outcome of a `ListModels` request.
    Models(
        /// The resolvable models, memory tier first.
        Vec<WireModelInfo>,
    ),
    /// Outcome of an `Evict` request.
    Evicted {
        /// Whether a model existed under the handle.
        existed: bool,
    },
    /// Any failure: a stable code from the serving/protocol taxonomy plus a
    /// self-explanatory message.
    Error {
        /// Stable machine-readable code (`unknown_model`, `fit_failed`,
        /// `protocol_error`, …).
        code: String,
        /// Human-readable explanation naming the remedy where one exists.
        message: String,
        /// Suggested backoff before retrying, milliseconds — set only by codes where a
        /// retry is expected to help (today: `overloaded` shed responses).
        retry_after_ms: Option<u64>,
    },
}

/// A framed request: client-chosen `id` (echoed in the response), protocol `version`,
/// and the request body.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// Client-chosen correlation id, echoed verbatim in the response envelope.
    pub id: u64,
    /// Protocol version ([`PROTOCOL_VERSION`] for envelopes built by this crate).
    pub version: u64,
    /// The request body.
    pub body: RequestBody,
}

impl RequestEnvelope {
    /// An envelope for `body` under the current [`PROTOCOL_VERSION`].
    pub fn new(id: u64, body: RequestBody) -> Self {
        RequestEnvelope {
            id,
            version: PROTOCOL_VERSION,
            body,
        }
    }
}

/// A framed response mirroring the request's `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseEnvelope {
    /// The correlation id of the request this answers — `None` (JSON `null` on the
    /// wire) only for protocol-level errors about a line so malformed that no id could
    /// be salvaged from it. Never `None` for a successfully decoded request, so a
    /// pipelined client cannot mis-correlate a framing error with a real request
    /// (including a request that legitimately chose id 0).
    pub in_reply_to: Option<u64>,
    /// Protocol version ([`PROTOCOL_VERSION`] for envelopes built by this crate).
    pub version: u64,
    /// The response body.
    pub body: ResponseBody,
}

impl ResponseEnvelope {
    /// An envelope answering request `id` under the current [`PROTOCOL_VERSION`].
    pub fn new(id: u64, body: ResponseBody) -> Self {
        ResponseEnvelope {
            in_reply_to: Some(id),
            version: PROTOCOL_VERSION,
            body,
        }
    }

    /// An envelope for a protocol-level error that cannot be attributed to any request
    /// (no id was salvageable from the offending line): `in_reply_to` is `null`.
    pub fn uncorrelated(body: ResponseBody) -> Self {
        ResponseEnvelope {
            in_reply_to: None,
            version: PROTOCOL_VERSION,
            body,
        }
    }
}

fn columns_json(columns: &[GemColumn]) -> Json {
    Json::Array(columns.iter().map(|c| c.to_json()).collect())
}

fn columns_from(value: &Json) -> Result<Vec<GemColumn>, JsonError> {
    value
        .as_array()
        .ok_or_else(|| JsonError::conversion("expected an array of columns"))?
        .iter()
        .map(GemColumn::from_json)
        .collect()
}

fn opt_columns_json(columns: &Option<Vec<GemColumn>>) -> Json {
    match columns {
        Some(columns) => columns_json(columns),
        None => Json::Null,
    }
}

fn opt_field<'a>(value: &'a Json, key: &str) -> Option<&'a Json> {
    value.get(key).filter(|v| !v.is_null())
}

fn string_array(values: &[String]) -> Json {
    Json::Array(values.iter().map(|s| string(s.clone())).collect())
}

fn as_string_array(value: &Json) -> Result<Vec<String>, JsonError> {
    value
        .as_array()
        .ok_or_else(|| JsonError::conversion("expected an array of strings"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| JsonError::conversion("expected a string"))
        })
        .collect()
}

impl ToJson for RequestBody {
    fn to_json(&self) -> Json {
        match self {
            RequestBody::Fit {
                corpus,
                config,
                features,
                composition,
            } => object(vec![
                ("type", string("fit")),
                ("corpus", columns_json(corpus)),
                ("config", config.to_json()),
                ("features", features.to_json()),
                (
                    "composition",
                    match composition {
                        Some(c) => c.to_json(),
                        None => Json::Null,
                    },
                ),
            ]),
            RequestBody::Embed { handle, queries } => object(vec![
                ("type", string("embed")),
                ("handle", string(handle.clone())),
                ("queries", columns_json(queries)),
            ]),
            RequestBody::EmbedCorpus {
                method,
                corpus,
                queries,
                labels,
            } => object(vec![
                ("type", string("embed_corpus")),
                ("method", string(method.clone())),
                ("corpus", columns_json(corpus)),
                ("queries", opt_columns_json(queries)),
                (
                    "labels",
                    match labels {
                        Some(labels) => string_array(labels),
                        None => Json::Null,
                    },
                ),
            ]),
            RequestBody::FitUpdate { handle, corpus } => object(vec![
                ("type", string("fit_update")),
                ("handle", string(handle.clone())),
                ("corpus", columns_json(corpus)),
            ]),
            RequestBody::PushModel { snapshot } => object(vec![
                ("type", string("push_model")),
                ("snapshot", snapshot.clone()),
            ]),
            RequestBody::PullModel { handle } => object(vec![
                ("type", string("pull_model")),
                ("handle", string(handle.clone())),
            ]),
            RequestBody::Stats => object(vec![("type", string("stats"))]),
            RequestBody::Health => object(vec![("type", string("health"))]),
            RequestBody::ListModels => object(vec![("type", string("list_models"))]),
            RequestBody::Evict { handle } => object(vec![
                ("type", string("evict")),
                ("handle", string(handle.clone())),
            ]),
        }
    }
}

impl FromJson for RequestBody {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.str_field("type")?.as_str() {
            "fit" => Ok(RequestBody::Fit {
                corpus: columns_from(value.field("corpus")?)?,
                config: GemConfig::from_json(value.field("config")?)?,
                features: FeatureSet::from_json(value.field("features")?)?,
                composition: opt_field(value, "composition")
                    .map(Composition::from_json)
                    .transpose()?,
            }),
            "embed" => Ok(RequestBody::Embed {
                handle: value.str_field("handle")?,
                queries: columns_from(value.field("queries")?)?,
            }),
            "embed_corpus" => Ok(RequestBody::EmbedCorpus {
                method: value.str_field("method")?,
                corpus: columns_from(value.field("corpus")?)?,
                queries: opt_field(value, "queries").map(columns_from).transpose()?,
                labels: opt_field(value, "labels")
                    .map(as_string_array)
                    .transpose()?,
            }),
            "fit_update" => Ok(RequestBody::FitUpdate {
                handle: value.str_field("handle")?,
                corpus: columns_from(value.field("corpus")?)?,
            }),
            "push_model" => Ok(RequestBody::PushModel {
                snapshot: value.field("snapshot")?.clone(),
            }),
            "pull_model" => Ok(RequestBody::PullModel {
                handle: value.str_field("handle")?,
            }),
            "stats" => Ok(RequestBody::Stats),
            "health" => Ok(RequestBody::Health),
            "list_models" => Ok(RequestBody::ListModels),
            "evict" => Ok(RequestBody::Evict {
                handle: value.str_field("handle")?,
            }),
            other => Err(JsonError::conversion(format!(
                "unknown request type `{other}`"
            ))),
        }
    }
}

impl ToJson for WireStats {
    fn to_json(&self) -> Json {
        object(vec![
            ("hits", u64_number(self.hits)),
            ("warm_starts", u64_number(self.warm_starts)),
            ("misses", u64_number(self.misses)),
            ("evictions", u64_number(self.evictions)),
            ("expirations", u64_number(self.expirations)),
            ("coalesced_fits", u64_number(self.coalesced_fits)),
            ("spills", u64_number(self.spills)),
            ("store_errors", u64_number(self.store_errors)),
            ("fit_micros", u64_number(self.fit_micros)),
            ("em_iterations", u64_number(self.em_iterations)),
            ("resident_models", u64_number(self.resident_models)),
            ("resident_bytes", u64_number(self.resident_bytes)),
            ("store_entries", opt_u64_number(self.store_entries)),
            ("store_bytes", opt_u64_number(self.store_bytes)),
            ("requests", u64_number(self.requests)),
            (
                "latencies",
                Json::Array(self.latencies.iter().map(|l| l.to_json()).collect()),
            ),
        ])
    }
}

impl ToJson for WireLatency {
    fn to_json(&self) -> Json {
        object(vec![
            ("shape", string(self.shape.clone())),
            ("count", u64_number(self.count)),
            ("p50_us", u64_number(self.p50_us)),
            ("p90_us", u64_number(self.p90_us)),
            ("p99_us", u64_number(self.p99_us)),
        ])
    }
}

impl FromJson for WireLatency {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(WireLatency {
            shape: value.str_field("shape")?,
            count: value.u64_field("count")?,
            p50_us: value.u64_field("p50_us")?,
            p90_us: value.u64_field("p90_us")?,
            p99_us: value.u64_field("p99_us")?,
        })
    }
}

impl FromJson for WireStats {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let num = |key: &str| value.u64_field(key);
        let opt = |key: &str| -> Result<Option<u64>, JsonError> {
            opt_field(value, key)
                .map(|v| {
                    v.as_u64().ok_or_else(|| {
                        JsonError::conversion(format!("`{key}` is not an unsigned integer"))
                    })
                })
                .transpose()
        };
        Ok(WireStats {
            hits: num("hits")?,
            warm_starts: num("warm_starts")?,
            misses: num("misses")?,
            evictions: num("evictions")?,
            expirations: num("expirations")?,
            coalesced_fits: num("coalesced_fits")?,
            spills: num("spills")?,
            store_errors: num("store_errors")?,
            fit_micros: num("fit_micros")?,
            em_iterations: num("em_iterations")?,
            resident_models: num("resident_models")?,
            resident_bytes: num("resident_bytes")?,
            store_entries: opt("store_entries")?,
            store_bytes: opt("store_bytes")?,
            requests: num("requests")?,
            latencies: value
                .field("latencies")?
                .as_array()
                .ok_or_else(|| JsonError::conversion("`latencies` is not an array"))?
                .iter()
                .map(WireLatency::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl ToJson for WireModelInfo {
    fn to_json(&self) -> Json {
        object(vec![
            ("handle", string(self.handle.clone())),
            ("tier", string(self.tier.clone())),
            ("dim", opt_u64_number(self.dim)),
            ("bytes", u64_number(self.bytes)),
        ])
    }
}

impl FromJson for WireModelInfo {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(WireModelInfo {
            handle: value.str_field("handle")?,
            tier: value.str_field("tier")?,
            dim: opt_field(value, "dim")
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| JsonError::conversion("`dim` is not an unsigned integer"))
                })
                .transpose()?,
            bytes: value.u64_field("bytes")?,
        })
    }
}

impl ToJson for ResponseBody {
    fn to_json(&self) -> Json {
        match self {
            ResponseBody::Fitted {
                handle,
                dim,
                served_from,
            } => object(vec![
                ("type", string("fitted")),
                ("handle", string(handle.clone())),
                ("dim", u64_number(*dim)),
                ("served_from", string(served_from.clone())),
            ]),
            ResponseBody::Embedded {
                matrix,
                served_from,
            } => object(vec![
                ("type", string("embedded")),
                ("matrix", matrix.to_json()),
                ("served_from", string(served_from.clone())),
            ]),
            ResponseBody::Pushed { handle, dim } => object(vec![
                ("type", string("pushed")),
                ("handle", string(handle.clone())),
                ("dim", u64_number(*dim)),
            ]),
            ResponseBody::Snapshot {
                handle,
                snapshot,
                served_from,
            } => object(vec![
                ("type", string("snapshot")),
                ("handle", string(handle.clone())),
                ("snapshot", snapshot.clone()),
                ("served_from", string(served_from.clone())),
            ]),
            ResponseBody::Stats(stats) => {
                object(vec![("type", string("stats")), ("stats", stats.to_json())])
            }
            ResponseBody::Health {
                state,
                queue_depth,
                queue_capacity,
                busy_workers,
                workers,
                retry_after_ms,
            } => object(vec![
                ("type", string("health")),
                ("state", string(state.clone())),
                ("queue_depth", u64_number(*queue_depth)),
                ("queue_capacity", u64_number(*queue_capacity)),
                ("busy_workers", u64_number(*busy_workers)),
                ("workers", u64_number(*workers)),
                ("retry_after_ms", opt_u64_number(*retry_after_ms)),
            ]),
            ResponseBody::Models(models) => object(vec![
                ("type", string("models")),
                (
                    "models",
                    Json::Array(models.iter().map(|m| m.to_json()).collect()),
                ),
            ]),
            ResponseBody::Evicted { existed } => object(vec![
                ("type", string("evicted")),
                ("existed", Json::Bool(*existed)),
            ]),
            ResponseBody::Error {
                code,
                message,
                retry_after_ms,
            } => object(vec![
                ("type", string("error")),
                ("code", string(code.clone())),
                ("message", string(message.clone())),
                ("retry_after_ms", opt_u64_number(*retry_after_ms)),
            ]),
        }
    }
}

impl FromJson for ResponseBody {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.str_field("type")?.as_str() {
            "fitted" => Ok(ResponseBody::Fitted {
                handle: value.str_field("handle")?,
                dim: value.u64_field("dim")?,
                served_from: value.str_field("served_from")?,
            }),
            "embedded" => Ok(ResponseBody::Embedded {
                matrix: Matrix::from_json(value.field("matrix")?)?,
                served_from: value.str_field("served_from")?,
            }),
            "pushed" => Ok(ResponseBody::Pushed {
                handle: value.str_field("handle")?,
                dim: value.u64_field("dim")?,
            }),
            "snapshot" => Ok(ResponseBody::Snapshot {
                handle: value.str_field("handle")?,
                snapshot: value.field("snapshot")?.clone(),
                served_from: value.str_field("served_from")?,
            }),
            "stats" => Ok(ResponseBody::Stats(WireStats::from_json(
                value.field("stats")?,
            )?)),
            "health" => Ok(ResponseBody::Health {
                state: value.str_field("state")?,
                queue_depth: value.u64_field("queue_depth")?,
                queue_capacity: value.u64_field("queue_capacity")?,
                busy_workers: value.u64_field("busy_workers")?,
                workers: value.u64_field("workers")?,
                retry_after_ms: opt_field(value, "retry_after_ms")
                    .map(|v| {
                        v.as_u64().ok_or_else(|| {
                            JsonError::conversion("`retry_after_ms` is not an unsigned integer")
                        })
                    })
                    .transpose()?,
            }),
            "models" => Ok(ResponseBody::Models(
                value
                    .field("models")?
                    .as_array()
                    .ok_or_else(|| JsonError::conversion("`models` is not an array"))?
                    .iter()
                    .map(WireModelInfo::from_json)
                    .collect::<Result<_, _>>()?,
            )),
            "evicted" => Ok(ResponseBody::Evicted {
                existed: value
                    .field("existed")?
                    .as_bool()
                    .ok_or_else(|| JsonError::conversion("`existed` is not a bool"))?,
            }),
            "error" => Ok(ResponseBody::Error {
                code: value.str_field("code")?,
                message: value.str_field("message")?,
                retry_after_ms: opt_field(value, "retry_after_ms")
                    .map(|v| {
                        v.as_u64().ok_or_else(|| {
                            JsonError::conversion("`retry_after_ms` is not an unsigned integer")
                        })
                    })
                    .transpose()?,
            }),
            other => Err(JsonError::conversion(format!(
                "unknown response type `{other}`"
            ))),
        }
    }
}

fn envelope_json(id: Option<u64>, version: u64, body: Json) -> Json {
    object(vec![
        ("id", opt_u64_number(id)),
        ("version", u64_number(version)),
        ("body", body),
    ])
}

/// Validate an envelope's version field and return `(id, version, body)`. The id is
/// `None` when the field is JSON `null` (legal only on uncorrelatable error responses).
fn decode_envelope(line: &str) -> Result<(Option<u64>, u64, Json), ProtoError> {
    let value = Json::parse(line.trim_end_matches(['\r', '\n']))?;
    let id = match value.field("id")? {
        Json::Null => None,
        v => Some(v.as_u64().ok_or_else(|| ProtoError::Parse {
            message: "`id` is neither an unsigned integer nor null".to_string(),
        })?),
    };
    let version = value.u64_field("version")?;
    if version != PROTOCOL_VERSION {
        return Err(ProtoError::VersionMismatch {
            found: version,
            expected: PROTOCOL_VERSION,
        });
    }
    // Move the body out of the owned tree — it is the envelope's largest subtree (the
    // whole corpus or matrix payload), so cloning it would double the decode cost.
    let Json::Object(pairs) = value else {
        // field("id") above already required an object; a non-object here means the
        // parser and accessors disagree, which the wire must never turn into a panic.
        return Err(ProtoError::Parse {
            message: "envelope is not a JSON object".to_string(),
        });
    };
    let body = pairs
        .into_iter()
        .find_map(|(k, v)| (k == "body").then_some(v))
        .ok_or_else(|| JsonError::conversion("missing field `body`"))?;
    Ok((id, version, body))
}

/// Encode a request as one newline-terminated protocol line.
pub fn encode_request(envelope: &RequestEnvelope) -> String {
    let mut line = envelope_json(Some(envelope.id), envelope.version, envelope.body.to_json())
        .to_compact_string();
    line.push('\n');
    line
}

/// Decode one request line (the trailing newline may be present or not).
///
/// # Errors
/// [`ProtoError::Parse`] for malformed lines (a `null` id is only legal on responses),
/// [`ProtoError::VersionMismatch`] for foreign protocol versions — checked before the
/// body is interpreted.
pub fn decode_request(line: &str) -> Result<RequestEnvelope, ProtoError> {
    let (id, version, body) = decode_envelope(line)?;
    let id = id.ok_or_else(|| ProtoError::Parse {
        message: "request envelopes must carry a numeric `id`".to_string(),
    })?;
    Ok(RequestEnvelope {
        id,
        version,
        body: RequestBody::from_json(&body)?,
    })
}

/// Encode a response as one newline-terminated protocol line.
pub fn encode_response(envelope: &ResponseEnvelope) -> String {
    let mut line = envelope_json(
        envelope.in_reply_to,
        envelope.version,
        envelope.body.to_json(),
    )
    .to_compact_string();
    line.push('\n');
    line
}

/// Decode one response line (the trailing newline may be present or not).
///
/// # Errors
/// See [`decode_request`].
pub fn decode_response(line: &str) -> Result<ResponseEnvelope, ProtoError> {
    let (in_reply_to, version, body) = decode_envelope(line)?;
    Ok(ResponseEnvelope {
        in_reply_to,
        version,
        body: ResponseBody::from_json(&body)?,
    })
}

/// Best-effort extraction of the `id` of a line that failed to decode, so error
/// responses can still correlate. Returns `None` when no id is recoverable — the
/// response then goes out with `in_reply_to: null` ([`ResponseEnvelope::uncorrelated`]),
/// never a sentinel a real request id could collide with.
pub fn salvage_request_id(line: &str) -> Option<u64> {
    Json::parse(line.trim_end_matches(['\r', '\n']))
        .ok()
        .and_then(|v| v.u64_field("id").ok())
}

/// Best-effort extraction of the correlation id from a response line, without
/// decoding the body. A routing tier forwarding replica responses verbatim uses this
/// to correlate each line against its per-replica in-flight map before deciding
/// whether the body needs decoding at all (fan-out merges do, plain forwards do not).
/// On the wire both directions carry the id under the `id` key —
/// [`ResponseEnvelope::in_reply_to`] is only the Rust-side field name. Returns `None`
/// for unparseable lines and for `id: null` (uncorrelatable framing errors).
pub fn salvage_reply_id(line: &str) -> Option<u64> {
    Json::parse(line.trim_end_matches(['\r', '\n']))
        .ok()
        .and_then(|v| v.u64_field("id").ok())
}

/// Merge per-replica [`WireStats`] into one cluster-wide view, the shape a routing
/// tier answers a fanned-out `Stats` request with. Counters and sizes sum across
/// replicas; the optional store-tier sizes sum over the replicas that have a store
/// (`None` only when none does). Latency series merge by shape: counts sum, and each
/// quantile takes the **maximum** across replicas — a conservative upper bound, since
/// true cluster-wide quantiles cannot be recovered from per-replica summaries.
#[must_use]
pub fn merge_stats(parts: &[WireStats]) -> WireStats {
    let mut merged = WireStats::default();
    let sum_opt = |field: &mut Option<u64>, part: &Option<u64>| {
        if let Some(v) = part {
            *field = Some(field.unwrap_or(0) + v);
        }
    };
    for part in parts {
        merged.hits += part.hits;
        merged.warm_starts += part.warm_starts;
        merged.misses += part.misses;
        merged.evictions += part.evictions;
        merged.expirations += part.expirations;
        merged.coalesced_fits += part.coalesced_fits;
        merged.spills += part.spills;
        merged.store_errors += part.store_errors;
        merged.fit_micros += part.fit_micros;
        merged.em_iterations += part.em_iterations;
        merged.resident_models += part.resident_models;
        merged.resident_bytes += part.resident_bytes;
        sum_opt(&mut merged.store_entries, &part.store_entries);
        sum_opt(&mut merged.store_bytes, &part.store_bytes);
        merged.requests += part.requests;
        for latency in &part.latencies {
            match merged
                .latencies
                .iter_mut()
                .find(|l| l.shape == latency.shape)
            {
                Some(existing) => {
                    existing.count += latency.count;
                    existing.p50_us = existing.p50_us.max(latency.p50_us);
                    existing.p90_us = existing.p90_us.max(latency.p90_us);
                    existing.p99_us = existing.p99_us.max(latency.p99_us);
                }
                None => merged.latencies.push(latency.clone()),
            }
        }
    }
    merged
}

/// Merge per-replica `ListModels` responses into one deduplicated cluster-wide
/// listing. A model replicated for fail-over appears on several replicas under the
/// same handle; the merge keeps one entry per handle, preferring the `"memory"` tier
/// over `"disk"` (the closest copy a request would actually be served from), and
/// sorts by handle so the output is deterministic regardless of replica order.
#[must_use]
pub fn merge_models(parts: &[Vec<WireModelInfo>]) -> Vec<WireModelInfo> {
    let mut merged: Vec<WireModelInfo> = Vec::new();
    for info in parts.iter().flatten() {
        match merged.iter_mut().find(|m| m.handle == info.handle) {
            Some(existing) => {
                if existing.tier != "memory" && info.tier == "memory" {
                    *existing = info.clone();
                }
            }
            None => merged.push(info.clone()),
        }
    }
    merged.sort_by(|a, b| a.handle.cmp(&b.handle));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_json::number;

    // NaN-free so envelopes compare with `==` (NaN != NaN under PartialEq); the
    // NaN/±0 bit-exactness of the codec is covered by `corpus_payloads_are_bit_exact`.
    fn columns() -> Vec<GemColumn> {
        vec![
            GemColumn::new(vec![1.5, -0.0, 2e-308], "age"),
            GemColumn::values_only(vec![10.0, 20.0]),
        ]
    }

    fn bits_of(columns: &[GemColumn]) -> Vec<Vec<u64>> {
        columns
            .iter()
            .map(|c| c.values.iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    #[test]
    fn every_request_shape_round_trips() {
        let bodies = vec![
            RequestBody::Fit {
                corpus: columns(),
                config: GemConfig::fast(),
                features: FeatureSet::ds(),
                composition: None,
            },
            RequestBody::Fit {
                corpus: columns(),
                config: GemConfig::fast(),
                features: FeatureSet::dsc(),
                composition: Some(Composition::Aggregation),
            },
            RequestBody::Embed {
                handle: "0000000000000001-0000000000000002".into(),
                queries: columns(),
            },
            RequestBody::EmbedCorpus {
                method: "Gem (D+S)".into(),
                corpus: columns(),
                queries: Some(columns()),
                labels: Some(vec!["a".into(), "b".into()]),
            },
            RequestBody::EmbedCorpus {
                method: "PLE".into(),
                corpus: columns(),
                queries: None,
                labels: None,
            },
            RequestBody::FitUpdate {
                handle: "0000000000000001-0000000000000002".into(),
                corpus: columns(),
            },
            RequestBody::PushModel {
                snapshot: object(vec![
                    ("magic", string("gem-model-store")),
                    ("format_version", number(1.0)),
                    ("key", string("0000000000000001-0000000000000002")),
                    ("model", object(vec![("schema_version", number(1.0))])),
                ]),
            },
            RequestBody::PullModel {
                handle: "0000000000000001-0000000000000002".into(),
            },
            RequestBody::Stats,
            RequestBody::Health,
            RequestBody::ListModels,
            RequestBody::Evict {
                handle: "0000000000000001-0000000000000002".into(),
            },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let envelope = RequestEnvelope::new(i as u64 + 1, body);
            let line = encode_request(&envelope);
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1, "one line per message");
            let back = decode_request(&line).unwrap();
            assert_eq!(back, envelope);
        }
    }

    #[test]
    fn corpus_payloads_are_bit_exact() {
        let specials = vec![
            GemColumn::new(
                vec![
                    1.5,
                    -0.0,
                    0.0,
                    f64::NAN,
                    f64::from_bits(0x7ff8_0000_dead_beef), // NaN with a payload
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    2e-308,
                ],
                "specials",
            ),
            GemColumn::values_only(vec![10.0, 20.0]),
        ];
        let envelope = RequestEnvelope::new(
            7,
            RequestBody::Fit {
                corpus: specials.clone(),
                config: GemConfig::fast(),
                features: FeatureSet::ds(),
                composition: None,
            },
        );
        let back = decode_request(&encode_request(&envelope)).unwrap();
        let RequestBody::Fit { corpus, .. } = back.body else {
            panic!("not a fit");
        };
        assert_eq!(bits_of(&corpus), bits_of(&specials));
    }

    #[test]
    fn every_response_shape_round_trips() {
        let matrix = Matrix::from_rows(&[vec![1.0, -0.0], vec![f64::NAN, 2.5]]).unwrap();
        let bodies = vec![
            ResponseBody::Fitted {
                handle: "00000000000000ff-0000000000000001".into(),
                dim: 18,
                served_from: "cold_fit".into(),
            },
            ResponseBody::Embedded {
                matrix: matrix.clone(),
                served_from: "memory_cache".into(),
            },
            ResponseBody::Pushed {
                handle: "00000000000000ff-0000000000000001".into(),
                dim: 18,
            },
            ResponseBody::Snapshot {
                handle: "00000000000000ff-0000000000000001".into(),
                snapshot: object(vec![
                    ("magic", string("gem-model-store")),
                    ("key", string("00000000000000ff-0000000000000001")),
                ]),
                served_from: "memory_cache".into(),
            },
            ResponseBody::Stats(WireStats {
                hits: 3,
                coalesced_fits: 5,
                fit_micros: 68_000,
                em_iterations: 41,
                store_entries: Some(2),
                store_bytes: Some(4096),
                requests: 9,
                latencies: vec![
                    WireLatency {
                        shape: "fit".into(),
                        count: 4,
                        p50_us: 1_200,
                        p90_us: 2_400,
                        p99_us: 9_000,
                    },
                    WireLatency {
                        shape: "embed".into(),
                        count: 5,
                        p50_us: 90,
                        p90_us: 150,
                        p99_us: 600,
                    },
                ],
                ..WireStats::default()
            }),
            ResponseBody::Stats(WireStats::default()),
            ResponseBody::Health {
                state: "degraded".into(),
                queue_depth: 12,
                queue_capacity: 64,
                busy_workers: 4,
                workers: 4,
                retry_after_ms: Some(250),
            },
            ResponseBody::Health {
                state: "ok".into(),
                queue_depth: 0,
                queue_capacity: 1024,
                busy_workers: 0,
                workers: 8,
                retry_after_ms: None,
            },
            ResponseBody::Models(vec![WireModelInfo {
                handle: "00000000000000ff-0000000000000001".into(),
                tier: "memory".into(),
                dim: Some(18),
                bytes: 1024,
            }]),
            ResponseBody::Evicted { existed: true },
            ResponseBody::Error {
                code: "unknown_model".into(),
                message: "no model for handle …".into(),
                retry_after_ms: None,
            },
            ResponseBody::Error {
                code: "overloaded".into(),
                message: "work queue is full".into(),
                retry_after_ms: Some(100),
            },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let envelope = ResponseEnvelope::new(i as u64, body);
            let line = encode_response(&envelope);
            let back = decode_response(&line).unwrap();
            // NaN != NaN under PartialEq, so compare matrices by bits.
            match (&back.body, &envelope.body) {
                (
                    ResponseBody::Embedded { matrix: a, .. },
                    ResponseBody::Embedded { matrix: b, .. },
                ) => {
                    let bits =
                        |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(a), bits(b));
                }
                _ => assert_eq!(back, envelope),
            }
        }
    }

    #[test]
    fn version_mismatch_is_rejected_before_the_body() {
        let line = encode_request(&RequestEnvelope::new(1, RequestBody::Stats))
            .replace(&format!("\"version\":{PROTOCOL_VERSION}"), "\"version\":99");
        match decode_request(&line).unwrap_err() {
            ProtoError::VersionMismatch { found, expected } => {
                assert_eq!(found, 99);
                assert_eq!(expected, PROTOCOL_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        // Even with a garbage body, the version check fires first.
        let line = r#"{"id":1,"version":99,"body":{"type":"not-a-thing"}}"#;
        assert!(matches!(
            decode_request(line),
            Err(ProtoError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn malformed_lines_are_parse_errors_with_salvageable_ids() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"id":1,"version":5}"#,
            r#"{"id":1,"version":5,"body":{"type":"no-such"}}"#,
            r#"{"id":1,"version":5,"body":{"type":"embed"}}"#,
        ] {
            let err = decode_request(bad).unwrap_err();
            assert_eq!(err.code(), "protocol_error", "{bad}");
        }
        assert_eq!(
            salvage_request_id(r#"{"id":42,"version":5,"body":{"type":"no-such"}}"#),
            Some(42)
        );
        assert_eq!(salvage_request_id("garbage"), None);
    }

    #[test]
    fn uncorrelated_error_responses_carry_a_null_id_not_a_sentinel() {
        let envelope = ResponseEnvelope::uncorrelated(ResponseBody::Error {
            code: "protocol_error".into(),
            message: "unsalvageable".into(),
            retry_after_ms: None,
        });
        let line = encode_response(&envelope);
        assert!(line.contains("\"id\":null"), "{line}");
        let back = decode_response(&line).unwrap();
        assert_eq!(back.in_reply_to, None);
        assert_eq!(back, envelope);
        // A genuine request id 0 stays a number, distinct from the null above.
        let zero = ResponseEnvelope::new(0, ResponseBody::Evicted { existed: false });
        let back = decode_response(&encode_response(&zero)).unwrap();
        assert_eq!(back.in_reply_to, Some(0));
        // Requests must carry a numeric id: null is response-only.
        let err = decode_request(r#"{"id":null,"version":5,"body":{"type":"stats"}}"#).unwrap_err();
        assert_eq!(err.code(), "protocol_error");
    }

    #[test]
    fn proto_error_codes_are_stable() {
        assert_eq!(
            ProtoError::Parse {
                message: "x".into()
            }
            .code(),
            "protocol_error"
        );
        assert_eq!(
            ProtoError::VersionMismatch {
                found: 2,
                expected: 1
            }
            .code(),
            "version_mismatch"
        );
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;

    fn stats(hits: u64, requests: u64, shape_p99: u64) -> WireStats {
        WireStats {
            hits,
            requests,
            fit_micros: 10,
            resident_models: 1,
            latencies: vec![WireLatency {
                shape: "embed".to_string(),
                count: 3,
                p50_us: 5,
                p90_us: 9,
                p99_us: shape_p99,
            }],
            ..WireStats::default()
        }
    }

    #[test]
    fn merged_stats_sum_counters_and_take_max_quantiles() {
        let merged = merge_stats(&[stats(2, 10, 100), stats(5, 7, 40)]);
        assert_eq!(merged.hits, 7);
        assert_eq!(merged.requests, 17);
        assert_eq!(merged.fit_micros, 20);
        assert_eq!(merged.resident_models, 2);
        assert_eq!(merged.latencies.len(), 1);
        let embed = &merged.latencies[0];
        assert_eq!(embed.count, 6);
        assert_eq!(embed.p99_us, 100, "quantiles merge as the max upper bound");
        assert_eq!(merged.store_entries, None, "no replica had a store");
    }

    #[test]
    fn merged_stats_sum_store_sizes_over_replicas_that_have_one() {
        let with_store = WireStats {
            store_entries: Some(4),
            store_bytes: Some(1000),
            ..WireStats::default()
        };
        let merged = merge_stats(&[with_store.clone(), WireStats::default(), with_store]);
        assert_eq!(merged.store_entries, Some(8));
        assert_eq!(merged.store_bytes, Some(2000));
    }

    #[test]
    fn merged_stats_keep_distinct_shapes_separate() {
        let mut other = stats(0, 0, 1);
        other.latencies[0].shape = "fit".to_string();
        let merged = merge_stats(&[stats(0, 0, 50), other]);
        assert_eq!(merged.latencies.len(), 2);
    }

    #[test]
    fn merged_models_dedupe_by_handle_preferring_memory() {
        let mem = |handle: &str| WireModelInfo {
            handle: handle.to_string(),
            tier: "memory".to_string(),
            dim: Some(8),
            bytes: 100,
        };
        let disk = |handle: &str| WireModelInfo {
            handle: handle.to_string(),
            tier: "disk".to_string(),
            dim: None,
            bytes: 50,
        };
        let merged = merge_models(&[vec![disk("b"), mem("a")], vec![mem("b"), disk("a")]]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].handle, "a");
        assert_eq!(merged[0].tier, "memory", "memory copy wins over disk");
        assert_eq!(merged[1].handle, "b");
        assert_eq!(merged[1].tier, "memory");
    }

    #[test]
    fn reply_id_salvage_reads_the_wire_id_and_rejects_null() {
        let line = encode_response(&ResponseEnvelope::new(
            7,
            ResponseBody::Evicted { existed: true },
        ));
        assert_eq!(salvage_reply_id(&line), Some(7));
        let uncorrelated = encode_response(&ResponseEnvelope::uncorrelated(ResponseBody::Error {
            code: "protocol_error".to_string(),
            message: "bad line".to_string(),
            retry_after_ms: None,
        }));
        assert_eq!(salvage_reply_id(&uncorrelated), None);
        assert_eq!(salvage_reply_id("not json"), None);
    }
}
