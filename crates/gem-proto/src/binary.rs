//! The negotiated binary codec: length-prefixed frames carrying f64 payloads as raw
//! little-endian IEEE-754 bytes — bit-exact by construction, no hex strings, no
//! per-value allocation — plus the chunked-upload and streamed-embed state machines.
//!
//! ## Negotiation
//!
//! A connection starts in JSON-line mode. A client that wants the binary codec sends
//! one plain text line before anything else: [`hello_line`] (`gem-wire-binary <v>`).
//! A binary-capable server answers [`accept_line`] (`gem-wire-binary ok <v>`) and both
//! ends switch to frames; a JSON-only server answers the hello like any malformed
//! request — an uncorrelated `protocol_error` line — which the client takes as
//! "negotiate down", staying on JSON over the **same, still-healthy connection**.
//! The version in the hello is [`PROTOCOL_VERSION`]: codec framing and envelope
//! semantics version together.
//!
//! ## Frame layout
//!
//! ```text
//! [u32 len (LE)] [u8 kind] [payload — len-1 bytes]
//! payload := [u8 has_id] [u64 id (LE)] [kind-specific fields]
//! ```
//!
//! `len` counts the kind byte plus the payload and is bounded by [`MAX_FRAME_LEN`];
//! an oversized length is a framing error (the stream cannot be resynchronized, so
//! the connection closes after a typed error). The 9-byte correlation header sits at
//! a fixed offset in **every** kind, so a router — or an error path — can salvage the
//! id ([`Frame::correlation_id`]) without decoding the payload, mirroring
//! [`crate::salvage_request_id`] on the JSON side. Errors *inside* a well-framed
//! payload (truncated field, bad counts) are recoverable: the connection survives and
//! the error response correlates via the header id.
//!
//! Scalar encodings are little-endian throughout: strings are `u32` length + UTF-8
//! bytes; f64 runs are a count followed by raw `f64::to_le_bytes` values.
//!
//! ## Kinds
//!
//! Binary layouts exist only for the f64-heavy shapes (`Fit`, `FitUpdate`, `Embed`,
//! the chunked-fit sequence, and streamed embed rows). Every other request and
//! response rides a [`KIND_REQ_JSON`] / [`KIND_RESP_JSON`] frame wrapping the compact
//! JSON envelope text — those payloads are small and already bit-exact via
//! `gem_json::bits`, so a second layout would add surface without speed.
//!
//! ## Chunked corpus upload
//!
//! A `Fit` or `FitUpdate` too large for one frame streams as `BeginFit`,
//! `CorpusChunk`*, `EndFit` — all carrying the same id. The server side
//! ([`ChunkAssembler`]) reassembles the envelope and reports each chunk's columns
//! through a [`ChunkEvent`] callback so a routing tier can fingerprint the corpus
//! **incrementally** (via `gem-store`'s hasher) and place the fit without a second
//! pass over the assembled columns — the resulting handle is bit-identical to the
//! client's own `ModelKey` because the chunk boundaries are not hashed, only the
//! column stream is.
//!
//! ## Streamed embed responses
//!
//! An `Embed` answered over the binary codec streams as [`KIND_EMBED_ROWS`] frames
//! (rows flushed as the server's batches complete) closed by one [`KIND_EMBED_DONE`]
//! carrying the expected totals. The client side ([`EmbedPartials`] +
//! [`decode_response_frame`]) accumulates rows per id and synthesizes the final
//! `Embedded` body when the totals check out.

use crate::{
    decode_request, decode_response, encode_request, encode_response, ProtoError, RequestBody,
    RequestEnvelope, ResponseBody, ResponseEnvelope, PROTOCOL_VERSION,
};
use gem_core::{Composition, FeatureSet, GemColumn, GemConfig};
use gem_json::{FromJson, Json, ToJson};
use gem_numeric::Matrix;
use std::collections::HashMap;

/// Upper bound on one frame's `len` field (kind byte + payload). Fits any sane
/// single-frame request; corpora larger than this stream as chunked uploads.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Upper bound on the bytes a chunked upload may accumulate before `EndFit` — the
/// assembler refuses to buffer more, so a malicious or runaway `BeginFit` cannot
/// grow server memory without bound.
pub const MAX_CHUNKED_CORPUS_BYTES: u64 = 1024 * 1024 * 1024;

/// Default client-side threshold: a `Fit`/`FitUpdate` whose corpus payload would
/// exceed this many bytes is sent as a chunked upload instead of one frame.
pub const DEFAULT_CHUNK_BYTES: usize = 1024 * 1024;

/// First token of the negotiation hello and accept lines.
pub const HELLO_PREFIX: &str = "gem-wire-binary";

/// A request wrapped as compact JSON envelope text (any shape without a binary layout).
pub const KIND_REQ_JSON: u8 = 0x01;
/// A response wrapped as compact JSON envelope text.
pub const KIND_RESP_JSON: u8 = 0x02;
/// A one-frame `Fit` request with a binary corpus payload.
pub const KIND_FIT: u8 = 0x10;
/// A one-frame `FitUpdate` request with a binary corpus payload.
pub const KIND_FIT_UPDATE: u8 = 0x11;
/// An `Embed` request with binary query columns.
pub const KIND_EMBED: u8 = 0x12;
/// Opens a chunked `Fit`/`FitUpdate`: mode, total column count, configuration.
pub const KIND_BEGIN_FIT: u8 = 0x20;
/// One slice of a chunked upload's corpus columns.
pub const KIND_CORPUS_CHUNK: u8 = 0x21;
/// Closes a chunked upload; the assembled request is then executed.
pub const KIND_END_FIT: u8 = 0x22;
/// A slice of streamed embed-result rows.
pub const KIND_EMBED_ROWS: u8 = 0x30;
/// Closes a streamed embed response, carrying the expected totals.
pub const KIND_EMBED_DONE: u8 = 0x31;

/// The client's codec-negotiation line (newline-terminated): sent as the first line
/// of a connection, before any envelope.
pub fn hello_line() -> String {
    format!("{HELLO_PREFIX} {PROTOCOL_VERSION}\n")
}

/// Parse a [`hello_line`], returning the version it carries. `None` when the line is
/// not a hello at all (it is then an ordinary — probably malformed — JSON request).
pub fn parse_hello(line: &str) -> Option<u64> {
    let rest = line
        .trim_end_matches(['\r', '\n'])
        .strip_prefix(HELLO_PREFIX)?;
    rest.strip_prefix(' ')?.parse().ok()
}

/// The server's acceptance line (newline-terminated): everything after it is frames.
pub fn accept_line() -> String {
    format!("{HELLO_PREFIX} ok {PROTOCOL_VERSION}\n")
}

/// Parse an [`accept_line`], returning the version. `None` for anything else (the
/// client then inspects the line as a JSON response and negotiates down).
pub fn parse_accept(line: &str) -> Option<u64> {
    let rest = line
        .trim_end_matches(['\r', '\n'])
        .strip_prefix(HELLO_PREFIX)?;
    rest.strip_prefix(" ok ")?.parse().ok()
}

fn parse_err(message: impl Into<String>) -> ProtoError {
    ProtoError::Parse {
        message: message.into(),
    }
}

fn short(what: &str) -> ProtoError {
    parse_err(format!("binary frame truncated while reading {what}"))
}

/// One frame read off the wire: the kind byte and the raw payload (correlation
/// header included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The kind byte (one of the `KIND_*` constants; unknown values are decode
    /// errors, never panics).
    pub kind: u8,
    /// The payload — `len - 1` bytes, starting with the 9-byte correlation header.
    pub payload: Vec<u8>,
}

impl Frame {
    /// The correlation id from the fixed-offset payload header, without decoding the
    /// rest — the binary analogue of [`crate::salvage_request_id`]. `None` when the
    /// header says the frame is uncorrelated or the payload is too short to carry one.
    pub fn correlation_id(&self) -> Option<u64> {
        if self.payload.first().copied() != Some(1) {
            return None;
        }
        let bytes: [u8; 8] = self.payload.get(1..9)?.try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    }
}

/// Incremental frame splitter: push raw socket bytes in, pop complete [`Frame`]s out.
/// Pure bytes — no I/O — so both ends (and the router) share one implementation, and
/// a read-timeout tick mid-frame loses nothing.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Absorb bytes read off the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet formed into a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame, if one is buffered.
    ///
    /// # Errors
    /// [`ProtoError::Parse`] for a zero or oversized `len` header — the stream cannot
    /// be resynchronized past it, so the caller should answer a typed error and close.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        let Some(head) = self.buf.get(0..4) else {
            return Ok(None);
        };
        let len_bytes: [u8; 4] = head.try_into().map_err(|_| short("frame length"))?;
        let len = u32::from_le_bytes(len_bytes);
        if len == 0 {
            return Err(parse_err("zero-length binary frame"));
        }
        if len > MAX_FRAME_LEN {
            return Err(parse_err(format!(
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"
            )));
        }
        let total = 4usize.saturating_add(len as usize);
        if self.buf.len() < total {
            return Ok(None);
        }
        let mut frame: Vec<u8> = self.buf.drain(..total).collect();
        let kind = frame.get(4).copied().ok_or_else(|| short("frame kind"))?;
        let payload = frame.split_off(5);
        Ok(Some(Frame { kind, payload }))
    }
}

// --- encoding primitives ----------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<(), ProtoError> {
    let len = u32::try_from(s.len()).map_err(|_| parse_err("string exceeds the u32 bound"))?;
    put_u32(buf, len);
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Raw f64 run: count, then each value's IEEE-754 bytes — no per-value allocation
/// and bit-exact by construction (`f64::to_le_bytes` is the bit pattern).
fn put_f64s(buf: &mut Vec<u8>, values: &[f64]) -> Result<(), ProtoError> {
    let len = u32::try_from(values.len()).map_err(|_| parse_err("f64 run exceeds u32"))?;
    put_u32(buf, len);
    buf.reserve(values.len().saturating_mul(8));
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    Ok(())
}

fn put_column(buf: &mut Vec<u8>, column: &GemColumn) -> Result<(), ProtoError> {
    put_str(buf, &column.header)?;
    put_f64s(buf, &column.values)
}

fn put_columns(buf: &mut Vec<u8>, columns: &[GemColumn]) -> Result<(), ProtoError> {
    let len = u32::try_from(columns.len()).map_err(|_| parse_err("column count exceeds u32"))?;
    put_u32(buf, len);
    for column in columns {
        put_column(buf, column)?;
    }
    Ok(())
}

fn put_header(buf: &mut Vec<u8>, id: Option<u64>) {
    match id {
        Some(id) => {
            buf.push(1);
            put_u64(buf, id);
        }
        None => {
            buf.push(0);
            put_u64(buf, 0);
        }
    }
}

/// Assemble a complete wire frame (`len` prefix, kind, payload) from a payload the
/// caller built. Public so tests can craft malformed payloads inside valid framing.
///
/// # Errors
/// [`ProtoError::Parse`] when the payload would exceed [`MAX_FRAME_LEN`].
pub fn frame_bytes(kind: u8, payload: &[u8]) -> Result<Vec<u8>, ProtoError> {
    let len = u32::try_from(payload.len().saturating_add(1))
        .ok()
        .filter(|len| *len <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            parse_err(format!(
                "frame payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte bound",
                payload.len()
            ))
        })?;
    let mut out = Vec::with_capacity(payload.len().saturating_add(5));
    put_u32(&mut out, len);
    out.push(kind);
    out.extend_from_slice(payload);
    Ok(out)
}

// --- decoding primitives ----------------------------------------------------------

struct Cur<'a> {
    rest: &'a [u8],
}

impl<'a> Cur<'a> {
    fn new(payload: &'a [u8]) -> Self {
        Cur { rest: payload }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProtoError> {
        if self.rest.len() < n {
            return Err(short(what));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ProtoError> {
        self.take(1, what)?
            .first()
            .copied()
            .ok_or_else(|| short(what))
    }

    fn u32(&mut self, what: &str) -> Result<u32, ProtoError> {
        let bytes: [u8; 4] = self.take(4, what)?.try_into().map_err(|_| short(what))?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ProtoError> {
        let bytes: [u8; 8] = self.take(8, what)?.try_into().map_err(|_| short(what))?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn str(&mut self, what: &str) -> Result<String, ProtoError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| parse_err(format!("{what} is not valid UTF-8")))
    }

    fn f64s(&mut self, what: &str) -> Result<Vec<f64>, ProtoError> {
        let count = self.u32(what)? as usize;
        let bytes = self.take(count.saturating_mul(8), what)?;
        let mut values = Vec::with_capacity(count);
        for chunk in bytes.chunks_exact(8) {
            let raw: [u8; 8] = chunk.try_into().map_err(|_| short(what))?;
            values.push(f64::from_le_bytes(raw));
        }
        Ok(values)
    }

    fn column(&mut self) -> Result<GemColumn, ProtoError> {
        let header = self.str("column header")?;
        let values = self.f64s("column values")?;
        Ok(GemColumn::new(values, header))
    }

    fn columns(&mut self) -> Result<Vec<GemColumn>, ProtoError> {
        let count = self.u32("column count")? as usize;
        let mut columns = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            columns.push(self.column()?);
        }
        Ok(columns)
    }

    /// The 9-byte correlation header; errors when the frame is uncorrelated but the
    /// kind requires an id (every request kind does).
    fn request_id(&mut self) -> Result<u64, ProtoError> {
        let has_id = self.u8("correlation header")?;
        let id = self.u64("correlation id")?;
        if has_id == 1 {
            Ok(id)
        } else {
            Err(parse_err("request frames must carry a correlation id"))
        }
    }

    fn remainder_str(&mut self, what: &str) -> Result<&'a str, ProtoError> {
        let rest = std::mem::take(&mut self.rest);
        std::str::from_utf8(rest).map_err(|_| parse_err(format!("{what} is not valid UTF-8")))
    }

    fn expect_end(&self) -> Result<(), ProtoError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(parse_err(format!(
                "{} trailing bytes after the frame payload",
                self.rest.len()
            )))
        }
    }
}

fn json_field<T: FromJson>(text: &str, what: &str) -> Result<T, ProtoError> {
    let value = Json::parse(text).map_err(|e| parse_err(format!("bad {what}: {e}")))?;
    T::from_json(&value).map_err(|e| parse_err(format!("bad {what}: {e}")))
}

// --- request frames ---------------------------------------------------------------

/// Approximate wire size of a corpus payload, used to decide one frame vs chunked.
pub fn corpus_wire_bytes(columns: &[GemColumn]) -> usize {
    columns.iter().fold(4usize, |acc, c| {
        acc.saturating_add(8)
            .saturating_add(c.header.len())
            .saturating_add(c.values.len().saturating_mul(8))
    })
}

fn fit_config_fields(
    buf: &mut Vec<u8>,
    config: &GemConfig,
    features: FeatureSet,
    composition: &Option<Composition>,
) -> Result<(), ProtoError> {
    put_str(buf, &config.to_json().to_compact_string())?;
    put_str(buf, &features.to_json().to_compact_string())?;
    match composition {
        Some(c) => {
            buf.push(1);
            put_str(buf, &c.to_json().to_compact_string())?;
        }
        None => buf.push(0),
    }
    Ok(())
}

fn read_fit_config_fields(
    cur: &mut Cur<'_>,
) -> Result<(GemConfig, FeatureSet, Option<Composition>), ProtoError> {
    let config: GemConfig = json_field(&cur.str("fit config")?, "fit config")?;
    let features: FeatureSet = json_field(&cur.str("fit features")?, "fit features")?;
    let composition = match cur.u8("composition flag")? {
        0 => None,
        1 => Some(json_field(&cur.str("fit composition")?, "fit composition")?),
        other => {
            return Err(parse_err(format!("bad composition flag {other}")));
        }
    };
    Ok((config, features, composition))
}

/// Encode one request envelope as a single binary frame: a dedicated layout for the
/// f64-heavy shapes (`Fit`, `FitUpdate`, `Embed`), a [`KIND_REQ_JSON`] wrap for
/// everything else. Use [`encode_request_frames`] to get chunking for large corpora.
///
/// # Errors
/// [`ProtoError::Parse`] when a field exceeds the format's bounds (e.g. the frame
/// would exceed [`MAX_FRAME_LEN`] — stream such corpora as chunks instead).
pub fn encode_request_frame(envelope: &RequestEnvelope) -> Result<Vec<u8>, ProtoError> {
    let mut payload = Vec::new();
    put_header(&mut payload, Some(envelope.id));
    let kind = match &envelope.body {
        RequestBody::Fit {
            corpus,
            config,
            features,
            composition,
        } => {
            fit_config_fields(&mut payload, config, *features, composition)?;
            put_columns(&mut payload, corpus)?;
            KIND_FIT
        }
        RequestBody::FitUpdate { handle, corpus } => {
            put_str(&mut payload, handle)?;
            put_columns(&mut payload, corpus)?;
            KIND_FIT_UPDATE
        }
        RequestBody::Embed { handle, queries } => {
            put_str(&mut payload, handle)?;
            put_columns(&mut payload, queries)?;
            KIND_EMBED
        }
        _ => {
            let line = encode_request(envelope);
            payload.extend_from_slice(line.trim_end_matches('\n').as_bytes());
            KIND_REQ_JSON
        }
    };
    frame_bytes(kind, &payload)
}

/// Encode a request as one or more frames: a `Fit`/`FitUpdate` whose corpus payload
/// exceeds `chunk_bytes` becomes a `BeginFit` / `CorpusChunk`* / `EndFit` sequence
/// (each chunk packed greedily up to `chunk_bytes`); everything else is one frame.
///
/// # Errors
/// See [`encode_request_frame`].
pub fn encode_request_frames(
    envelope: &RequestEnvelope,
    chunk_bytes: usize,
) -> Result<Vec<Vec<u8>>, ProtoError> {
    let chunk_bytes = chunk_bytes.max(1024);
    let (corpus, begin_payload) = match &envelope.body {
        RequestBody::Fit {
            corpus,
            config,
            features,
            composition,
        } if corpus_wire_bytes(corpus) > chunk_bytes => {
            let mut begin = Vec::new();
            put_header(&mut begin, Some(envelope.id));
            begin.push(0); // mode 0: fit
            put_u32(
                &mut begin,
                u32::try_from(corpus.len()).map_err(|_| parse_err("corpus exceeds u32"))?,
            );
            fit_config_fields(&mut begin, config, *features, composition)?;
            (corpus, begin)
        }
        RequestBody::FitUpdate { handle, corpus } if corpus_wire_bytes(corpus) > chunk_bytes => {
            let mut begin = Vec::new();
            put_header(&mut begin, Some(envelope.id));
            begin.push(1); // mode 1: fit_update
            put_u32(
                &mut begin,
                u32::try_from(corpus.len()).map_err(|_| parse_err("corpus exceeds u32"))?,
            );
            put_str(&mut begin, handle)?;
            (corpus, begin)
        }
        _ => return Ok(vec![encode_request_frame(envelope)?]),
    };
    let mut frames = vec![frame_bytes(KIND_BEGIN_FIT, &begin_payload)?];
    let mut slice: Vec<GemColumn> = Vec::new();
    let mut slice_bytes = 0usize;
    let flush = |slice: &mut Vec<GemColumn>, frames: &mut Vec<Vec<u8>>| -> Result<(), ProtoError> {
        if slice.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::new();
        put_header(&mut payload, Some(envelope.id));
        put_columns(&mut payload, slice)?;
        frames.push(frame_bytes(KIND_CORPUS_CHUNK, &payload)?);
        slice.clear();
        Ok(())
    };
    for column in corpus {
        let bytes = corpus_wire_bytes(std::slice::from_ref(column));
        if !slice.is_empty() && slice_bytes.saturating_add(bytes) > chunk_bytes {
            flush(&mut slice, &mut frames)?;
            slice_bytes = 0;
        }
        slice.push(column.clone());
        slice_bytes = slice_bytes.saturating_add(bytes);
    }
    flush(&mut slice, &mut frames)?;
    let mut end = Vec::new();
    put_header(&mut end, Some(envelope.id));
    frames.push(frame_bytes(KIND_END_FIT, &end)?);
    Ok(frames)
}

/// Decode a single request frame. Chunk-sequence kinds are rejected here — feed them
/// to a [`ChunkAssembler`] instead — and response kinds are never requests.
///
/// # Errors
/// [`ProtoError::Parse`] for unknown kinds, truncated payloads, bad counts or
/// non-UTF-8 strings; [`ProtoError::VersionMismatch`] from a wrapped JSON envelope.
pub fn decode_request_frame(frame: &Frame) -> Result<RequestEnvelope, ProtoError> {
    let mut cur = Cur::new(&frame.payload);
    match frame.kind {
        KIND_REQ_JSON => {
            let _ = cur.request_id()?;
            decode_request(cur.remainder_str("wrapped request line")?)
        }
        KIND_FIT => {
            let id = cur.request_id()?;
            let (config, features, composition) = read_fit_config_fields(&mut cur)?;
            let corpus = cur.columns()?;
            cur.expect_end()?;
            Ok(RequestEnvelope {
                id,
                version: PROTOCOL_VERSION,
                body: RequestBody::Fit {
                    corpus,
                    config,
                    features,
                    composition,
                },
            })
        }
        KIND_FIT_UPDATE => {
            let id = cur.request_id()?;
            let handle = cur.str("fit_update handle")?;
            let corpus = cur.columns()?;
            cur.expect_end()?;
            Ok(RequestEnvelope {
                id,
                version: PROTOCOL_VERSION,
                body: RequestBody::FitUpdate { handle, corpus },
            })
        }
        KIND_EMBED => {
            let id = cur.request_id()?;
            let handle = cur.str("embed handle")?;
            let queries = cur.columns()?;
            cur.expect_end()?;
            Ok(RequestEnvelope {
                id,
                version: PROTOCOL_VERSION,
                body: RequestBody::Embed { handle, queries },
            })
        }
        KIND_BEGIN_FIT | KIND_CORPUS_CHUNK | KIND_END_FIT => Err(parse_err(
            "chunked-fit frames must go through the chunk assembler",
        )),
        other => Err(parse_err(format!(
            "unknown request frame kind {other:#04x}"
        ))),
    }
}

// --- chunked upload assembly ------------------------------------------------------

/// What a [`ChunkAssembler`] observed while accepting one frame — the hook a routing
/// tier uses to fingerprint the corpus incrementally without re-walking it.
#[derive(Debug)]
pub enum ChunkEvent<'a> {
    /// A `BeginFit` opened an upload declaring this many total columns.
    Begin {
        /// The correlation id of the upload.
        id: u64,
        /// Total columns the sequence will carry (hashed first by the corpus
        /// fingerprint, which is why it is declared up front).
        total_columns: u64,
    },
    /// A `CorpusChunk` delivered these columns (in corpus order).
    Columns {
        /// The correlation id of the upload.
        id: u64,
        /// The chunk's decoded columns.
        columns: &'a [GemColumn],
    },
}

#[derive(Debug)]
enum FitMode {
    Fit {
        config: GemConfig,
        features: FeatureSet,
        composition: Option<Composition>,
    },
    Update {
        handle: String,
    },
}

#[derive(Debug)]
struct FitAssembly {
    mode: FitMode,
    total_columns: u64,
    columns: Vec<GemColumn>,
    bytes: u64,
}

/// Server-side state machine reassembling chunked `Fit`/`FitUpdate` uploads, keyed by
/// correlation id so several uploads can interleave on one pipelined connection. Any
/// protocol violation drops that id's partial state and surfaces a typed error — the
/// connection (and other in-flight uploads) survive.
#[derive(Debug, Default)]
pub struct ChunkAssembler {
    active: HashMap<u64, FitAssembly>,
}

impl ChunkAssembler {
    /// An assembler with no uploads in progress.
    pub fn new() -> Self {
        ChunkAssembler::default()
    }

    /// Whether `kind` belongs to the chunked-upload sequence.
    pub fn is_chunk_kind(kind: u8) -> bool {
        matches!(kind, KIND_BEGIN_FIT | KIND_CORPUS_CHUNK | KIND_END_FIT)
    }

    /// Uploads currently buffering.
    pub fn in_progress(&self) -> usize {
        self.active.len()
    }

    /// Drop the partial state for `id` (after answering an error for it).
    pub fn abort(&mut self, id: u64) {
        self.active.remove(&id);
    }

    /// Accept one chunk-sequence frame. Returns the assembled request envelope when
    /// the frame was the sequence's `EndFit`, `None` while the upload is still open.
    /// `observe` is called for the begin declaration and for every chunk's columns —
    /// see [`ChunkEvent`].
    ///
    /// # Errors
    /// [`ProtoError::Parse`] for out-of-sequence frames, count or byte-budget
    /// violations, and payloads that fail to decode; the offending id's partial state
    /// is dropped before returning.
    pub fn accept<F: FnMut(ChunkEvent<'_>)>(
        &mut self,
        frame: &Frame,
        mut observe: F,
    ) -> Result<Option<RequestEnvelope>, ProtoError> {
        let mut cur = Cur::new(&frame.payload);
        let id = cur.request_id()?;
        let step = || -> Result<Option<RequestEnvelope>, ProtoError> {
            match frame.kind {
                KIND_BEGIN_FIT => {
                    if self.active.contains_key(&id) {
                        return Err(parse_err(format!(
                            "begin_fit for id {id}, which already has an upload open"
                        )));
                    }
                    let mode_byte = cur.u8("fit mode")?;
                    let total_columns = u64::from(cur.u32("total column count")?);
                    let mode = match mode_byte {
                        0 => {
                            let (config, features, composition) = read_fit_config_fields(&mut cur)?;
                            FitMode::Fit {
                                config,
                                features,
                                composition,
                            }
                        }
                        1 => FitMode::Update {
                            handle: cur.str("fit_update handle")?,
                        },
                        other => {
                            return Err(parse_err(format!("unknown fit mode {other}")));
                        }
                    };
                    cur.expect_end()?;
                    observe(ChunkEvent::Begin { id, total_columns });
                    self.active.insert(
                        id,
                        FitAssembly {
                            mode,
                            total_columns,
                            columns: Vec::new(),
                            bytes: 0,
                        },
                    );
                    Ok(None)
                }
                KIND_CORPUS_CHUNK => {
                    let columns = cur.columns()?;
                    cur.expect_end()?;
                    let assembly = self.active.get_mut(&id).ok_or_else(|| {
                        parse_err(format!("corpus_chunk for id {id} without a begin_fit"))
                    })?;
                    let received = assembly.columns.len().saturating_add(columns.len()) as u64;
                    if received > assembly.total_columns {
                        return Err(parse_err(format!(
                            "upload {id} delivered {received} columns, more than the \
                             declared {}",
                            assembly.total_columns
                        )));
                    }
                    assembly.bytes = assembly
                        .bytes
                        .saturating_add(corpus_wire_bytes(&columns) as u64);
                    if assembly.bytes > MAX_CHUNKED_CORPUS_BYTES {
                        return Err(parse_err(format!(
                            "upload {id} exceeds the {MAX_CHUNKED_CORPUS_BYTES}-byte bound"
                        )));
                    }
                    observe(ChunkEvent::Columns {
                        id,
                        columns: &columns,
                    });
                    assembly.columns.extend(columns);
                    Ok(None)
                }
                KIND_END_FIT => {
                    cur.expect_end()?;
                    let assembly = self.active.remove(&id).ok_or_else(|| {
                        parse_err(format!("end_fit for id {id} without a begin_fit"))
                    })?;
                    let received = assembly.columns.len() as u64;
                    if received != assembly.total_columns {
                        return Err(parse_err(format!(
                            "upload {id} closed with {received} of the declared {} columns",
                            assembly.total_columns
                        )));
                    }
                    let body = match assembly.mode {
                        FitMode::Fit {
                            config,
                            features,
                            composition,
                        } => RequestBody::Fit {
                            corpus: assembly.columns,
                            config,
                            features,
                            composition,
                        },
                        FitMode::Update { handle } => RequestBody::FitUpdate {
                            handle,
                            corpus: assembly.columns,
                        },
                    };
                    Ok(Some(RequestEnvelope {
                        id,
                        version: PROTOCOL_VERSION,
                        body,
                    }))
                }
                other => Err(parse_err(format!(
                    "frame kind {other:#04x} is not part of a chunked upload"
                ))),
            }
        };
        let mut run = step;
        let result = run();
        if result.is_err() {
            self.active.remove(&id);
        }
        result
    }
}

// --- response frames --------------------------------------------------------------

/// Encode a streamed slice of embed-result rows (row-major, `rows.len()` must be a
/// multiple of `cols`). The server flushes one of these per completed batch.
///
/// # Errors
/// [`ProtoError::Parse`] when the row data does not tile into `cols` columns or the
/// frame would exceed [`MAX_FRAME_LEN`].
pub fn embed_rows_frame(
    id: u64,
    served_from: &str,
    cols: usize,
    rows: &[f64],
) -> Result<Vec<u8>, ProtoError> {
    let nrows = match cols {
        0 if rows.is_empty() => 0,
        0 => return Err(parse_err("embed rows with zero columns but data")),
        cols if !rows.len().is_multiple_of(cols) => {
            return Err(parse_err("embed row data does not tile into whole rows"));
        }
        cols => rows.len() / cols,
    };
    let mut payload = Vec::with_capacity(rows.len().saturating_mul(8).saturating_add(64));
    put_header(&mut payload, Some(id));
    put_str(&mut payload, served_from)?;
    put_u32(
        &mut payload,
        u32::try_from(cols).map_err(|_| parse_err("embed cols exceed u32"))?,
    );
    put_u32(
        &mut payload,
        u32::try_from(nrows).map_err(|_| parse_err("embed rows exceed u32"))?,
    );
    for v in rows {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    frame_bytes(KIND_EMBED_ROWS, &payload)
}

/// Encode the closing frame of a streamed embed response, carrying the totals the
/// accumulated rows must match.
///
/// # Errors
/// [`ProtoError::Parse`] when a field exceeds the format's bounds.
pub fn embed_done_frame(
    id: u64,
    served_from: &str,
    cols: usize,
    total_rows: usize,
) -> Result<Vec<u8>, ProtoError> {
    let mut payload = Vec::new();
    put_header(&mut payload, Some(id));
    put_str(&mut payload, served_from)?;
    put_u32(
        &mut payload,
        u32::try_from(cols).map_err(|_| parse_err("embed cols exceed u32"))?,
    );
    put_u64(
        &mut payload,
        u64::try_from(total_rows).map_err(|_| parse_err("embed rows exceed u64"))?,
    );
    frame_bytes(KIND_EMBED_DONE, &payload)
}

/// Wrap a complete JSON response line (trailing newline optional) in a
/// [`KIND_RESP_JSON`] frame — how a router forwards a JSON replica's responses to a
/// binary client verbatim, without transcoding the body.
///
/// # Errors
/// [`ProtoError::Parse`] when the line exceeds [`MAX_FRAME_LEN`].
pub fn wrap_response_line(id: Option<u64>, line: &str) -> Result<Vec<u8>, ProtoError> {
    let mut payload = Vec::new();
    put_header(&mut payload, id);
    payload.extend_from_slice(line.trim_end_matches(['\r', '\n']).as_bytes());
    frame_bytes(KIND_RESP_JSON, &payload)
}

/// Encode one response envelope as wire bytes — possibly several concatenated frames:
/// an `Embedded` body becomes one [`KIND_EMBED_ROWS`] plus the [`KIND_EMBED_DONE`]
/// (the one-shot degenerate of streaming), everything else one [`KIND_RESP_JSON`].
///
/// # Errors
/// [`ProtoError::Parse`] when a frame would exceed the format's bounds.
pub fn encode_response_frames(envelope: &ResponseEnvelope) -> Result<Vec<u8>, ProtoError> {
    if let (
        Some(id),
        ResponseBody::Embedded {
            matrix,
            served_from,
        },
    ) = (envelope.in_reply_to, &envelope.body)
    {
        let mut out = embed_rows_frame(id, served_from, matrix.cols(), matrix.as_slice())?;
        out.extend_from_slice(&embed_done_frame(
            id,
            served_from,
            matrix.cols(),
            matrix.rows(),
        )?);
        return Ok(out);
    }
    wrap_response_line(envelope.in_reply_to, &encode_response(envelope))
}

/// Client-side accumulation state for streamed embed responses, keyed by correlation
/// id so several streamed embeds can interleave on one pipelined connection.
#[derive(Debug, Default)]
pub struct EmbedPartials {
    active: HashMap<u64, PartialEmbed>,
}

#[derive(Debug)]
struct PartialEmbed {
    cols: usize,
    data: Vec<f64>,
    served_from: String,
}

impl EmbedPartials {
    /// No streams in progress.
    pub fn new() -> Self {
        EmbedPartials::default()
    }

    /// Streamed embeds currently accumulating.
    pub fn in_progress(&self) -> usize {
        self.active.len()
    }
}

/// Decode one response frame against the streamed-embed accumulation state. Returns
/// `Some` when the frame completed a response (a wrapped JSON response, or the
/// `EmbedDone` that closed a row stream), `None` when it was an intermediate
/// `EmbedRows` slice. An error response for a streaming id discards that stream's
/// partial rows.
///
/// # Errors
/// [`ProtoError::Parse`] for unknown kinds, truncated payloads, inconsistent column
/// counts, or totals that do not match the accumulated rows.
pub fn decode_response_frame(
    frame: &Frame,
    partials: &mut EmbedPartials,
) -> Result<Option<ResponseEnvelope>, ProtoError> {
    let mut cur = Cur::new(&frame.payload);
    match frame.kind {
        KIND_RESP_JSON => {
            let _ = cur.u8("correlation header")?;
            let _ = cur.u64("correlation id")?;
            let envelope = decode_response(cur.remainder_str("wrapped response line")?)?;
            if let (Some(id), ResponseBody::Error { .. }) = (envelope.in_reply_to, &envelope.body) {
                // A failure mid-stream abandons the rows already received.
                partials.active.remove(&id);
            }
            Ok(Some(envelope))
        }
        KIND_EMBED_ROWS => {
            let id = cur.request_id()?;
            let served_from = cur.str("embed served_from")?;
            let cols = cur.u32("embed cols")? as usize;
            let nrows = cur.u32("embed row count")? as usize;
            let bytes = cur.take(
                nrows.saturating_mul(cols).saturating_mul(8),
                "embed row data",
            )?;
            cur.expect_end()?;
            let partial = partials.active.entry(id).or_insert_with(|| PartialEmbed {
                cols,
                data: Vec::new(),
                served_from: served_from.clone(),
            });
            if partial.cols != cols {
                partials.active.remove(&id);
                return Err(parse_err(format!(
                    "embed stream {id} changed column count mid-stream"
                )));
            }
            partial.data.reserve(nrows.saturating_mul(cols));
            for chunk in bytes.chunks_exact(8) {
                let raw: [u8; 8] = chunk.try_into().map_err(|_| short("embed row data"))?;
                partial.data.push(f64::from_le_bytes(raw));
            }
            Ok(None)
        }
        KIND_EMBED_DONE => {
            let id = cur.request_id()?;
            let served_from = cur.str("embed served_from")?;
            let cols = cur.u32("embed cols")? as usize;
            let total_rows = cur.u64("embed total rows")? as usize;
            cur.expect_end()?;
            let (data, served_from) = match partials.active.remove(&id) {
                Some(partial) => {
                    if partial.cols != cols {
                        return Err(parse_err(format!(
                            "embed stream {id} closed with a different column count"
                        )));
                    }
                    (partial.data, partial.served_from)
                }
                None => (Vec::new(), served_from),
            };
            if data.len() != total_rows.saturating_mul(cols) {
                return Err(parse_err(format!(
                    "embed stream {id} closed with {} values, expected {total_rows}x{cols}",
                    data.len()
                )));
            }
            let matrix = Matrix::from_vec(total_rows, cols, data)
                .map_err(|e| parse_err(format!("embed stream {id}: {e}")))?;
            Ok(Some(ResponseEnvelope {
                in_reply_to: Some(id),
                version: PROTOCOL_VERSION,
                body: ResponseBody::Embedded {
                    matrix,
                    served_from,
                },
            }))
        }
        other => Err(parse_err(format!(
            "unknown response frame kind {other:#04x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> Vec<GemColumn> {
        vec![
            GemColumn::new(
                vec![1.5, -0.0, f64::NAN, f64::from_bits(0x7ff8_0000_dead_beef)],
                "specials",
            ),
            GemColumn::values_only(vec![10.0, 2e-308]),
        ]
    }

    fn bits_of(columns: &[GemColumn]) -> Vec<Vec<u64>> {
        columns
            .iter()
            .map(|c| c.values.iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    fn reassemble(bytes: &[u8]) -> Vec<Frame> {
        let mut assembler = FrameAssembler::new();
        assembler.push(bytes);
        let mut frames = Vec::new();
        while let Some(frame) = assembler.next_frame().unwrap() {
            frames.push(frame);
        }
        assert_eq!(assembler.buffered(), 0);
        frames
    }

    #[test]
    fn hello_and_accept_lines_round_trip() {
        assert_eq!(parse_hello(&hello_line()), Some(PROTOCOL_VERSION));
        assert_eq!(parse_accept(&accept_line()), Some(PROTOCOL_VERSION));
        assert_eq!(parse_hello(&accept_line()), None, "accept is not a hello");
        assert_eq!(parse_accept(&hello_line()), None);
        assert_eq!(parse_hello("{\"id\":1}"), None);
        assert_eq!(parse_hello("gem-wire-binary nope"), None);
    }

    #[test]
    fn fit_embed_and_fit_update_frames_round_trip_bit_exactly() {
        let bodies = vec![
            RequestBody::Fit {
                corpus: columns(),
                config: GemConfig::fast(),
                features: FeatureSet::dsc(),
                composition: Some(Composition::Aggregation),
            },
            RequestBody::Fit {
                corpus: columns(),
                config: GemConfig::fast(),
                features: FeatureSet::ds(),
                composition: None,
            },
            RequestBody::FitUpdate {
                handle: "0000000000000001-0000000000000002".into(),
                corpus: columns(),
            },
            RequestBody::Embed {
                handle: "0000000000000001-0000000000000002".into(),
                queries: columns(),
            },
            RequestBody::Stats,
            RequestBody::Health,
            RequestBody::PullModel {
                handle: "0000000000000001-0000000000000002".into(),
            },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let envelope = RequestEnvelope::new(i as u64 + 1, body);
            let bytes = encode_request_frame(&envelope).unwrap();
            let frames = reassemble(&bytes);
            assert_eq!(frames.len(), 1);
            assert_eq!(frames[0].correlation_id(), Some(envelope.id));
            let back = decode_request_frame(&frames[0]).unwrap();
            assert_eq!(back.id, envelope.id);
            match (&back.body, &envelope.body) {
                (RequestBody::Fit { corpus: a, .. }, RequestBody::Fit { corpus: b, .. })
                | (
                    RequestBody::FitUpdate { corpus: a, .. },
                    RequestBody::FitUpdate { corpus: b, .. },
                )
                | (RequestBody::Embed { queries: a, .. }, RequestBody::Embed { queries: b, .. }) => {
                    assert_eq!(bits_of(a), bits_of(b))
                }
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn chunked_uploads_reassemble_into_the_one_shot_envelope() {
        let corpus: Vec<GemColumn> = (0..40)
            .map(|c| {
                GemColumn::new(
                    (0..64).map(|i| (c * 100 + i) as f64 * 0.5).collect(),
                    format!("col_{c}"),
                )
            })
            .collect();
        let envelope = RequestEnvelope::new(
            9,
            RequestBody::Fit {
                corpus: corpus.clone(),
                config: GemConfig::fast(),
                features: FeatureSet::ds(),
                composition: None,
            },
        );
        // A tiny chunk budget forces many chunks.
        let frames = encode_request_frames(&envelope, 2048).unwrap();
        assert!(frames.len() > 3, "expected begin + chunks + end");
        let mut assembler = ChunkAssembler::new();
        let mut seen_total = 0u64;
        let mut seen_columns = 0usize;
        let mut assembled = None;
        for bytes in &frames {
            for frame in reassemble(bytes) {
                assert!(ChunkAssembler::is_chunk_kind(frame.kind));
                assert_eq!(frame.correlation_id(), Some(9));
                if let Some(envelope) = assembler
                    .accept(&frame, |event| match event {
                        ChunkEvent::Begin { total_columns, .. } => seen_total = total_columns,
                        ChunkEvent::Columns { columns, .. } => seen_columns += columns.len(),
                    })
                    .unwrap()
                {
                    assembled = Some(envelope);
                }
            }
        }
        assert_eq!(assembler.in_progress(), 0);
        assert_eq!(seen_total, corpus.len() as u64);
        assert_eq!(seen_columns, corpus.len());
        let assembled = assembled.expect("end_fit produced the envelope");
        assert_eq!(assembled.id, 9);
        let RequestBody::Fit {
            corpus: back,
            config,
            features,
            composition,
        } = assembled.body
        else {
            panic!("not a fit");
        };
        assert_eq!(bits_of(&back), bits_of(&corpus));
        assert_eq!(config, GemConfig::fast());
        assert_eq!(features, FeatureSet::ds());
        assert_eq!(composition, None);
        // Small corpora stay single-frame.
        let small = RequestEnvelope::new(1, RequestBody::Stats);
        assert_eq!(encode_request_frames(&small, 2048).unwrap().len(), 1);
    }

    #[test]
    fn chunk_sequence_violations_drop_state_with_typed_errors() {
        let mut assembler = ChunkAssembler::new();
        // A chunk without a begin.
        let mut payload = Vec::new();
        put_header(&mut payload, Some(3));
        put_columns(&mut payload, &columns()).unwrap();
        let orphan = Frame {
            kind: KIND_CORPUS_CHUNK,
            payload,
        };
        let err = assembler.accept(&orphan, |_| {}).unwrap_err();
        assert_eq!(err.code(), "protocol_error");
        // A truncated chunk payload: declares three columns, carries one.
        let mut truncated = Vec::new();
        put_header(&mut truncated, Some(4));
        put_u32(&mut truncated, 3);
        put_column(&mut truncated, &GemColumn::values_only(vec![1.0])).unwrap();
        let frame = Frame {
            kind: KIND_CORPUS_CHUNK,
            payload: truncated,
        };
        assert_eq!(
            frame.correlation_id(),
            Some(4),
            "id salvages from the header"
        );
        let err = assembler.accept(&frame, |_| {}).unwrap_err();
        assert_eq!(err.code(), "protocol_error");
        // An end that closes short of the declared count.
        let envelope = RequestEnvelope::new(
            5,
            RequestBody::FitUpdate {
                handle: "0000000000000001-0000000000000002".into(),
                corpus: (0..8)
                    .map(|i| GemColumn::values_only(vec![i as f64; 200]))
                    .collect(),
            },
        );
        let frames = encode_request_frames(&envelope, 1500).unwrap();
        assert!(frames.len() > 3);
        let begin = reassemble(&frames[0]).remove(0);
        let end = reassemble(frames.last().unwrap()).remove(0);
        assembler.accept(&begin, |_| {}).unwrap();
        assert_eq!(assembler.in_progress(), 1);
        let err = assembler.accept(&end, |_| {}).unwrap_err();
        assert_eq!(err.code(), "protocol_error");
        assert_eq!(
            assembler.in_progress(),
            0,
            "the violation dropped the state"
        );
    }

    #[test]
    fn oversized_and_zero_length_headers_are_framing_errors() {
        let mut assembler = FrameAssembler::new();
        assembler.push(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assembler.push(&[KIND_FIT]);
        let err = assembler.next_frame().unwrap_err();
        assert_eq!(err.code(), "protocol_error");
        assert!(err.to_string().contains("exceeds"), "{err}");
        let mut assembler = FrameAssembler::new();
        assembler.push(&0u32.to_le_bytes());
        assert!(assembler.next_frame().is_err());
        // Partial frames are not errors — they wait for more bytes.
        let mut assembler = FrameAssembler::new();
        let bytes = encode_request_frame(&RequestEnvelope::new(1, RequestBody::Stats)).unwrap();
        let (head, tail) = bytes.split_at(bytes.len() / 2);
        assembler.push(head);
        assert!(assembler.next_frame().unwrap().is_none());
        assembler.push(tail);
        assert!(assembler.next_frame().unwrap().is_some());
    }

    #[test]
    fn embedded_responses_stream_as_rows_and_done() {
        let matrix = Matrix::from_rows(&[
            vec![1.0, -0.0, f64::NAN],
            vec![2.5, 3.5, f64::from_bits(0x7ff8_0000_dead_beef)],
        ])
        .unwrap();
        let envelope = ResponseEnvelope::new(
            12,
            ResponseBody::Embedded {
                matrix: matrix.clone(),
                served_from: "memory_cache".into(),
            },
        );
        let bytes = encode_response_frames(&envelope).unwrap();
        let frames = reassemble(&bytes);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].kind, KIND_EMBED_ROWS);
        assert_eq!(frames[1].kind, KIND_EMBED_DONE);
        let mut partials = EmbedPartials::new();
        assert!(decode_response_frame(&frames[0], &mut partials)
            .unwrap()
            .is_none());
        assert_eq!(partials.in_progress(), 1);
        let back = decode_response_frame(&frames[1], &mut partials)
            .unwrap()
            .expect("done closes the stream");
        assert_eq!(partials.in_progress(), 0);
        assert_eq!(back.in_reply_to, Some(12));
        let ResponseBody::Embedded {
            matrix: got,
            served_from,
        } = back.body
        else {
            panic!("not embedded");
        };
        assert_eq!(served_from, "memory_cache");
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&matrix));
    }

    #[test]
    fn multi_slice_streams_accumulate_and_totals_are_verified() {
        let id = 77;
        let a = embed_rows_frame(id, "cold_fit", 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = embed_rows_frame(id, "cold_fit", 2, &[5.0, 6.0]).unwrap();
        let done_ok = embed_done_frame(id, "cold_fit", 2, 3).unwrap();
        let done_bad = embed_done_frame(id, "cold_fit", 2, 9).unwrap();
        let mut partials = EmbedPartials::new();
        for bytes in [&a, &b] {
            assert!(
                decode_response_frame(&reassemble(bytes).remove(0), &mut partials)
                    .unwrap()
                    .is_none()
            );
        }
        // Wrong totals fail loudly (and clear the stream)...
        let err =
            decode_response_frame(&reassemble(&done_bad).remove(0), &mut partials).unwrap_err();
        assert_eq!(err.code(), "protocol_error");
        // ... while matching totals close it.
        let mut partials = EmbedPartials::new();
        for bytes in [&a, &b] {
            let _ = decode_response_frame(&reassemble(bytes).remove(0), &mut partials).unwrap();
        }
        let envelope = decode_response_frame(&reassemble(&done_ok).remove(0), &mut partials)
            .unwrap()
            .unwrap();
        let ResponseBody::Embedded { matrix, .. } = envelope.body else {
            panic!("not embedded");
        };
        assert_eq!(matrix.shape(), (3, 2));
        assert_eq!(matrix.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn error_responses_mid_stream_discard_partial_rows() {
        let id = 5;
        let rows = embed_rows_frame(id, "cold_fit", 2, &[1.0, 2.0]).unwrap();
        let mut partials = EmbedPartials::new();
        let _ = decode_response_frame(&reassemble(&rows).remove(0), &mut partials).unwrap();
        assert_eq!(partials.in_progress(), 1);
        let error = wrap_response_line(
            Some(id),
            &encode_response(&ResponseEnvelope::new(
                id,
                ResponseBody::Error {
                    code: "transform_failed".into(),
                    message: "batch 2 failed".into(),
                    retry_after_ms: None,
                },
            )),
        )
        .unwrap();
        let envelope = decode_response_frame(&reassemble(&error).remove(0), &mut partials)
            .unwrap()
            .expect("errors complete the exchange");
        assert!(matches!(envelope.body, ResponseBody::Error { .. }));
        assert_eq!(partials.in_progress(), 0, "the stream's rows were dropped");
    }

    #[test]
    fn wrapped_json_requests_and_responses_round_trip() {
        let request = RequestEnvelope::new(3, RequestBody::ListModels);
        let frame = reassemble(&encode_request_frame(&request).unwrap()).remove(0);
        assert_eq!(frame.kind, KIND_REQ_JSON);
        assert_eq!(decode_request_frame(&frame).unwrap(), request);
        let response = ResponseEnvelope::new(3, ResponseBody::Evicted { existed: true });
        let bytes = encode_response_frames(&response).unwrap();
        let frame = reassemble(&bytes).remove(0);
        assert_eq!(frame.kind, KIND_RESP_JSON);
        assert_eq!(frame.correlation_id(), Some(3));
        let mut partials = EmbedPartials::new();
        let back = decode_response_frame(&frame, &mut partials)
            .unwrap()
            .unwrap();
        assert_eq!(back, response);
        // Uncorrelated errors keep their null id through the wrap.
        let uncorrelated = ResponseEnvelope::uncorrelated(ResponseBody::Error {
            code: "protocol_error".into(),
            message: "bad frame".into(),
            retry_after_ms: None,
        });
        let frame = reassemble(&encode_response_frames(&uncorrelated).unwrap()).remove(0);
        assert_eq!(frame.correlation_id(), None);
        let back = decode_response_frame(&frame, &mut partials)
            .unwrap()
            .unwrap();
        assert_eq!(back.in_reply_to, None);
    }

    #[test]
    fn truncated_payloads_inside_valid_framing_are_recoverable_errors() {
        // A well-framed FIT whose payload stops mid-column: framing stays intact, so
        // the error is typed and the connection can keep serving other frames.
        let envelope = RequestEnvelope::new(
            21,
            RequestBody::Embed {
                handle: "0000000000000001-0000000000000002".into(),
                queries: columns(),
            },
        );
        let bytes = encode_request_frame(&envelope).unwrap();
        let frame = reassemble(&bytes).remove(0);
        let mut cut = frame.payload.clone();
        cut.truncate(cut.len() - 7);
        let truncated = Frame {
            kind: frame.kind,
            payload: cut,
        };
        assert_eq!(truncated.correlation_id(), Some(21));
        let err = decode_request_frame(&truncated).unwrap_err();
        assert_eq!(err.code(), "protocol_error");
        assert!(err.to_string().contains("truncated"), "{err}");
        // Unknown kinds are typed errors too, never panics.
        let unknown = Frame {
            kind: 0x7f,
            payload: frame.payload.clone(),
        };
        assert!(decode_request_frame(&unknown).is_err());
        let mut partials = EmbedPartials::new();
        assert!(decode_response_frame(&unknown, &mut partials).is_err());
    }

    #[test]
    fn corpus_wire_bytes_tracks_the_encoded_size() {
        let cols = columns();
        let mut payload = Vec::new();
        put_columns(&mut payload, &cols).unwrap();
        assert_eq!(payload.len(), corpus_wire_bytes(&cols));
    }
}
