//! # gem-criterion
//!
//! A small benchmark harness exposing the subset of the `criterion` API used by the
//! `gem-bench` benches ([`Criterion`], [`BenchmarkId`], benchmark groups, `b.iter(...)`,
//! the [`criterion_group!`] / [`criterion_main!`] macros). The workspace builds offline,
//! so the real criterion is unavailable; benches rename this package to `criterion` and
//! keep their source unchanged.
//!
//! Measurement model: each benchmark runs one untimed warm-up iteration, then
//! `sample_size` timed iterations; the mean, minimum and maximum wall-clock times are
//! reported on stdout. When the `GEM_CRITERION_JSON` environment variable names a file,
//! all results of the process are additionally written there as a JSON array — this is
//! how `BENCH_baseline.json` snapshots are produced. Iteration counts can be scaled down
//! for smoke runs with `GEM_CRITERION_SAMPLES`.

#![deny(missing_docs)]
#![warn(clippy::all)]

use gem_json::{number, object, string, Json};
use std::fmt;
use std::time::Instant;

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Group name (empty for ungrouped benchmarks).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Timed iterations.
    pub samples: usize,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest iteration in seconds.
    pub min_s: f64,
    /// Slowest iteration in seconds.
    pub max_s: f64,
    /// Median seconds per iteration (nearest-rank over the timed samples).
    pub p50_s: f64,
    /// 99th-percentile seconds per iteration (nearest-rank; equals the maximum below
    /// 100 samples). Tail latency regresses independently of the mean — a guard that
    /// only watches means misses it.
    pub p99_s: f64,
}

impl BenchResult {
    fn to_json(&self) -> Json {
        object(vec![
            ("group", string(&self.group)),
            ("id", string(&self.id)),
            ("samples", number(self.samples as f64)),
            ("mean_s", number(self.mean_s)),
            ("min_s", number(self.min_s)),
            ("max_s", number(self.max_s)),
            ("p50_s", number(self.p50_s)),
            ("p99_s", number(self.p99_s)),
        ])
    }
}

/// Nearest-rank percentile (`q` in `[0, 1]`) over unsorted sample durations.
fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A benchmark identifier: a function name plus a parameter, rendered `name/param`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Create an id from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Things accepted where a benchmark id is expected (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Render to the display string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the workload.
pub struct Bencher {
    samples: usize,
    timings_s: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            timings_s: Vec::new(),
        }
    }

    /// Run `f` once untimed (warm-up), then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also defeats dead-code elimination of the result
        self.timings_s = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_secs_f64()
            })
            .collect();
    }

    /// Criterion-compatible `iter_custom`: `f` runs the workload the given number of
    /// times and returns the measured [`Duration`] of *just the window it chooses to
    /// time* — for benchmarks whose iteration includes setup or drain work that must
    /// not count (e.g. collecting a background response after the measured batch
    /// completed). Called with `1` per sample here; real criterion may batch.
    pub fn iter_custom<F: FnMut(u64) -> std::time::Duration>(&mut self, mut f: F) {
        black_box(f(1)); // warm-up, also defeats dead-code elimination of the result
        self.timings_s = (0..self.samples)
            .map(|_| black_box(f(1)).as_secs_f64())
            .collect();
    }

    fn mean_s(&self) -> f64 {
        if self.timings_s.is_empty() {
            return 0.0;
        }
        self.timings_s.iter().sum::<f64>() / self.timings_s.len() as f64
    }

    fn min_s(&self) -> f64 {
        if self.timings_s.is_empty() {
            return 0.0;
        }
        self.timings_s.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn max_s(&self) -> f64 {
        self.timings_s.iter().copied().fold(0.0, f64::max)
    }
}

/// An opaque value barrier, preventing the optimiser from deleting the benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn default_samples() -> usize {
    std::env::var("GEM_CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(10)
}

/// The harness entry point; collects results and writes the JSON snapshot on drop.
pub struct Criterion {
    results: Vec<BenchResult>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            results: Vec::new(),
            sample_size: default_samples(),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let samples = self.sample_size;
        self.run_one(String::new(), id.into_id(), samples, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        group: String,
        id: String,
        samples: usize,
        mut f: F,
    ) {
        let mut bencher = Bencher::new(samples);
        f(&mut bencher);
        let result = BenchResult {
            group: group.clone(),
            id: id.clone(),
            samples,
            mean_s: bencher.mean_s(),
            min_s: bencher.min_s(),
            max_s: bencher.max_s(),
            p50_s: percentile(&bencher.timings_s, 0.50),
            p99_s: percentile(&bencher.timings_s, 0.99),
        };
        let label = if group.is_empty() {
            id
        } else {
            format!("{group}/{id}")
        };
        println!(
            "bench {label:<55} mean {:>12.6}s  min {:>12.6}s  p50 {:>12.6}s  p99 {:>12.6}s  \
             max {:>12.6}s  ({} samples)",
            result.mean_s, result.min_s, result.p50_s, result.p99_s, result.max_s, result.samples
        );
        self.results.push(result);
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let Ok(path) = std::env::var("GEM_CRITERION_JSON") else {
            return;
        };
        if path.is_empty() || self.results.is_empty() {
            return;
        }
        // Merge with any results a previous bench target (or run) already wrote,
        // replacing entries with the same (group, id) so re-runs refresh rather than
        // duplicate the snapshot.
        let mut all: Vec<Json> = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|v| v.as_array().map(<[Json]>::to_vec))
            .unwrap_or_default();
        for result in &self.results {
            all.retain(|existing| {
                !(existing.get("group").and_then(Json::as_str) == Some(&result.group)
                    && existing.get("id").and_then(Json::as_str) == Some(&result.id))
            });
            all.push(result.to_json());
        }
        if let Err(e) = std::fs::write(&path, Json::Array(all).to_pretty_string()) {
            eprintln!("gem-criterion: could not write {path}: {e}");
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    fn samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let samples = self.samples();
        self.criterion
            .run_one(self.name.clone(), id.into_id(), samples, f);
    }

    /// Benchmark a closure that receives a shared input reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let samples = self.samples();
        self.criterion
            .run_one(self.name.clone(), id.into_id(), samples, |b| f(b, input));
    }

    /// End the group (kept for API compatibility; results are recorded eagerly).
    pub fn finish(self) {}
}

/// Declare a benchmark group function, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports_positive_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("busy", |b| {
            b.iter(|| (0..1000).map(|i| i as f64).sum::<f64>())
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        let results = c.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].group, "g");
        assert_eq!(results[0].id, "busy");
        assert_eq!(results[0].samples, 3);
        assert!(results[0].mean_s >= 0.0);
        assert!(results[0].min_s <= results[0].mean_s);
        assert!(results[0].mean_s <= results[0].max_s);
        assert!(results[0].min_s <= results[0].p50_s);
        assert!(results[0].p50_s <= results[0].p99_s);
        assert!(results[0].p99_s <= results[0].max_s);
        assert_eq!(results[1].id, "param/7");
        // Prevent the JSON drop hook from firing on test-controlled state.
        std::mem::forget(c);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).into_id(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
        assert_eq!("plain".into_id(), "plain");
    }

    #[test]
    fn results_serialize_to_json() {
        let r = BenchResult {
            group: "g".into(),
            id: "b".into(),
            samples: 5,
            mean_s: 0.25,
            min_s: 0.2,
            max_s: 0.3,
            p50_s: 0.24,
            p99_s: 0.3,
        };
        let j = r.to_json();
        assert_eq!(j.str_field("group").unwrap(), "g");
        assert_eq!(j.num_field("mean_s").unwrap(), 0.25);
        assert_eq!(j.num_field("p50_s").unwrap(), 0.24);
        assert_eq!(j.num_field("p99_s").unwrap(), 0.3);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 0.50), 50.0);
        assert_eq!(percentile(&samples, 0.99), 99.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.99), 3.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
