//! Initialisation strategies for the EM algorithm.

use crate::config::InitMethod;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Pick `k` initial means from the one-dimensional data using the configured scheme.
///
/// Data must be non-empty; when `k` exceeds the number of distinct values the surplus means
/// are still drawn (duplicated means are legal: EM simply keeps several components on the
/// same mode and the variance floor keeps them proper).
pub fn initial_means(data: &[f64], k: usize, method: InitMethod, rng: &mut StdRng) -> Vec<f64> {
    assert!(!data.is_empty(), "cannot initialise a GMM on empty data");
    assert!(k > 0, "cannot initialise a GMM with zero components");
    match method {
        InitMethod::Random => (0..k).map(|_| data[rng.gen_range(0..data.len())]).collect(),
        InitMethod::KMeansPlusPlus => kmeans_plus_plus(data, k, rng),
        InitMethod::Quantile => quantile_means(data, k),
    }
}

/// k-means++ seeding specialised to one dimension.
fn kmeans_plus_plus(data: &[f64], k: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut means = Vec::with_capacity(k);
    means.push(data[rng.gen_range(0..data.len())]);
    // Squared distance of each point to its nearest chosen mean.
    let mut dist2: Vec<f64> = data
        .iter()
        .map(|&x| (x - means[0]) * (x - means[0]))
        .collect();
    while means.len() < k {
        let total: f64 = dist2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with chosen means; fall back to uniform choice.
            data[rng.gen_range(0..data.len())]
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = data[data.len() - 1];
            for (i, &d) in dist2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = data[i];
                    break;
                }
            }
            chosen
        };
        means.push(next);
        for (i, &x) in data.iter().enumerate() {
            let d = (x - next) * (x - next);
            if d < dist2[i] {
                dist2[i] = d;
            }
        }
    }
    means
}

/// Deterministic initialisation at evenly spaced quantiles.
fn quantile_means(data: &[f64], k: usize) -> Vec<f64> {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    (0..k)
        .map(|j| {
            let q = (j as f64 + 0.5) / k as f64;
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        })
        .collect()
}

/// Pick `k` initial mean vectors for multivariate data (rows of `data`).
pub fn initial_mean_vectors(
    data: &[Vec<f64>],
    k: usize,
    method: InitMethod,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    assert!(!data.is_empty(), "cannot initialise a GMM on empty data");
    assert!(k > 0, "cannot initialise a GMM with zero components");
    match method {
        InitMethod::Random | InitMethod::Quantile => (0..k)
            .map(|_| data[rng.gen_range(0..data.len())].clone())
            .collect(),
        InitMethod::KMeansPlusPlus => {
            let mut means: Vec<Vec<f64>> = Vec::with_capacity(k);
            means.push(data[rng.gen_range(0..data.len())].clone());
            let sq = |a: &[f64], b: &[f64]| -> f64 {
                a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
            };
            let mut dist2: Vec<f64> = data.iter().map(|p| sq(p, &means[0])).collect();
            while means.len() < k {
                let total: f64 = dist2.iter().sum();
                let next = if total <= f64::EPSILON {
                    data[rng.gen_range(0..data.len())].clone()
                } else {
                    let mut target = rng.gen::<f64>() * total;
                    let mut chosen = data[data.len() - 1].clone();
                    for (i, &d) in dist2.iter().enumerate() {
                        target -= d;
                        if target <= 0.0 {
                            chosen = data[i].clone();
                            break;
                        }
                    }
                    chosen
                };
                for (i, p) in data.iter().enumerate() {
                    let d = sq(p, &next);
                    if d < dist2[i] {
                        dist2[i] = d;
                    }
                }
                means.push(next);
            }
            means
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn random_init_draws_from_data() {
        let data = [1.0, 2.0, 3.0];
        let means = initial_means(&data, 5, InitMethod::Random, &mut rng());
        assert_eq!(means.len(), 5);
        for m in means {
            assert!(data.contains(&m));
        }
    }

    #[test]
    fn kmeanspp_spreads_means_over_modes() {
        // Two well-separated clumps: k-means++ with k=2 should pick one mean in each.
        let mut data = vec![0.0; 50];
        data.extend(vec![100.0; 50]);
        let means = initial_means(&data, 2, InitMethod::KMeansPlusPlus, &mut rng());
        let has_low = means.iter().any(|&m| m < 50.0);
        let has_high = means.iter().any(|&m| m >= 50.0);
        assert!(has_low && has_high, "means were {means:?}");
    }

    #[test]
    fn kmeanspp_handles_constant_data() {
        let data = [5.0; 20];
        let means = initial_means(&data, 3, InitMethod::KMeansPlusPlus, &mut rng());
        assert_eq!(means, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn quantile_init_is_deterministic_and_sorted() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let a = initial_means(&data, 4, InitMethod::Quantile, &mut rng());
        let b = initial_means(&data, 4, InitMethod::Quantile, &mut rng());
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, sorted);
        assert!(a[0] < 25.0 && a[3] > 75.0);
    }

    #[test]
    fn more_components_than_points_is_allowed() {
        let data = [1.0, 2.0];
        for method in [
            InitMethod::Random,
            InitMethod::KMeansPlusPlus,
            InitMethod::Quantile,
        ] {
            let means = initial_means(&data, 6, method, &mut rng());
            assert_eq!(means.len(), 6);
        }
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_data_panics() {
        initial_means(&[], 2, InitMethod::Random, &mut rng());
    }

    #[test]
    fn multivariate_kmeanspp_covers_clusters() {
        let mut data: Vec<Vec<f64>> = (0..30).map(|_| vec![0.0, 0.0]).collect();
        data.extend((0..30).map(|_| vec![50.0, 50.0]));
        let means = initial_mean_vectors(&data, 2, InitMethod::KMeansPlusPlus, &mut rng());
        assert_eq!(means.len(), 2);
        let has_low = means.iter().any(|m| m[0] < 25.0);
        let has_high = means.iter().any(|m| m[0] >= 25.0);
        assert!(has_low && has_high);
    }

    #[test]
    fn multivariate_random_init_draws_rows() {
        let data = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let means = initial_mean_vectors(&data, 3, InitMethod::Random, &mut rng());
        assert_eq!(means.len(), 3);
        for m in means {
            assert!(data.contains(&m));
        }
    }
}
