//! Diagonal-covariance multivariate Gaussian mixture.
//!
//! Gem's published formulation stacks all values into a one-dimensional array, but the
//! ablation in DESIGN.md ("stacked-values GMM vs per-column GMM") and the Squashing_GMM
//! baseline's prototype induction benefit from a multivariate mixture over small feature
//! vectors. The diagonal restriction keeps the M-step closed-form and cheap while remaining
//! expressive enough for those uses.

use crate::config::{GmmConfig, InitMethod};
use crate::init::initial_mean_vectors;
use crate::univariate::GmmError;
use gem_numeric::vector::log_sum_exp;
use rand::rngs::StdRng;
use rand::SeedableRng;

const LOG_2PI: f64 = 1.837_877_066_409_345_5;

/// A fitted diagonal-covariance Gaussian mixture over `d`-dimensional points.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagonalGmm {
    weights: Vec<f64>,
    means: Vec<Vec<f64>>,
    variances: Vec<Vec<f64>>,
    log_likelihood: f64,
    converged: bool,
    n_samples: usize,
}

impl DiagonalGmm {
    /// Fit a diagonal GMM to the rows of `data`.
    ///
    /// # Errors
    /// Returns [`GmmError::EmptyData`] when there are no rows, and
    /// [`GmmError::InvalidConfig`] for ragged rows, empty rows, non-finite values or an
    /// invalid configuration.
    pub fn fit(data: &[Vec<f64>], config: &GmmConfig) -> Result<Self, GmmError> {
        if data.is_empty() {
            return Err(GmmError::EmptyData);
        }
        let dim = data[0].len();
        if dim == 0 {
            return Err(GmmError::InvalidConfig(
                "points must have at least one dimension".into(),
            ));
        }
        if data.iter().any(|p| p.len() != dim) {
            return Err(GmmError::InvalidConfig(
                "all points must share a dimension".into(),
            ));
        }
        if data.iter().flatten().any(|x| !x.is_finite()) {
            return Err(GmmError::InvalidConfig("data must be finite".into()));
        }
        if config.n_components == 0 {
            return Err(GmmError::InvalidConfig(
                "n_components must be positive".into(),
            ));
        }
        if config.tolerance <= 0.0 {
            return Err(GmmError::InvalidConfig("tolerance must be positive".into()));
        }

        let k = config.n_components.min(data.len()).max(1);
        // As in `UnivariateGmm::fit`: independent restarts fan out across threads, and the
        // strictly-greater scan in restart order keeps winner selection deterministic.
        // Worker threads reuse one scratch buffer set across their restarts; every buffer
        // is fully rewritten per iteration, so reuse cannot change the result.
        let n_restarts = config.n_restarts.max(1);
        let restarts: Vec<u64> = (0..n_restarts as u64).collect();
        let fits = gem_parallel::par_map_with_scratch(
            &restarts,
            n_restarts > 1,
            DiagEmScratch::default,
            |&restart, scratch| {
                let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(restart));
                run_em(data, dim, k, config, config.init, &mut rng, scratch)
            },
        );
        let mut best: Option<DiagonalGmm> = None;
        for model in fits {
            let model = model?;
            let better = best
                .as_ref()
                .map(|b| model.log_likelihood > b.log_likelihood)
                .unwrap_or(true);
            if better {
                best = Some(model);
            }
        }
        best.ok_or_else(|| GmmError::NumericalFailure("no EM restart produced a model".into()))
    }

    /// Mixture weights (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Component mean vectors.
    pub fn means(&self) -> &[Vec<f64>] {
        &self.means
    }

    /// Component per-dimension variances.
    pub fn variances(&self) -> &[Vec<f64>] {
        &self.variances
    }

    /// Number of components.
    pub fn n_components(&self) -> usize {
        self.means.len()
    }

    /// Final training log-likelihood.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// Whether EM converged before the iteration cap.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Log density of a point under component `j`.
    fn component_log_pdf(&self, x: &[f64], j: usize) -> f64 {
        let mean = &self.means[j];
        let var = &self.variances[j];
        let mut acc = 0.0;
        for ((&xi, &mi), &vi) in x.iter().zip(mean.iter()).zip(var.iter()) {
            let v = vi.max(1e-300);
            let d = xi - mi;
            acc += -0.5 * (LOG_2PI + v.ln() + d * d / v);
        }
        acc
    }

    /// Mixture log-density of a point.
    pub fn log_pdf(&self, x: &[f64]) -> f64 {
        let logs: Vec<f64> = (0..self.n_components())
            .map(|j| self.weights[j].max(1e-300).ln() + self.component_log_pdf(x, j))
            .collect();
        log_sum_exp(&logs)
    }

    /// Responsibilities of each component for a point (sums to 1).
    pub fn responsibilities(&self, x: &[f64]) -> Vec<f64> {
        let logs: Vec<f64> = (0..self.n_components())
            .map(|j| self.weights[j].max(1e-300).ln() + self.component_log_pdf(x, j))
            .collect();
        let norm = log_sum_exp(&logs);
        if !norm.is_finite() {
            return self.weights.clone();
        }
        logs.iter().map(|&l| (l - norm).exp()).collect()
    }

    /// Hard assignment of a point to its most responsible component.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.responsibilities(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// BIC of the fitted model on its training data (lower is better).
    pub fn bic(&self) -> f64 {
        let d = self.means.first().map(|m| m.len()).unwrap_or(0) as f64;
        let k = self.n_components() as f64;
        let params = k - 1.0 + k * d * 2.0;
        params * (self.n_samples.max(1) as f64).ln() - 2.0 * self.log_likelihood
    }
}

/// Reusable buffers for one diagonal EM run, the multivariate sibling of the
/// univariate `EmScratch`: the per-component tables and accumulators are kept flat
/// (`k × dim`, row-major by component) so the fused passes stream memory instead of
/// chasing nested `Vec`s. Every buffer is fully overwritten before it is read in each
/// iteration, so cross-restart reuse cannot leak state.
#[derive(Debug, Default, Clone)]
struct DiagEmScratch {
    /// Flat n × k responsibility matrix.
    resp: Vec<f64>,
    /// Per-component x-independent log-density part (k wide).
    bias: Vec<f64>,
    nk: Vec<f64>,
    /// Flat k × dim tables: −½/σ², component means, and the M-step accumulators.
    scale: Vec<f64>,
    means_flat: Vec<f64>,
    mean_acc: Vec<f64>,
    var_acc: Vec<f64>,
}

impl DiagEmScratch {
    fn reserve(&mut self, n: usize, k: usize, dim: usize) {
        self.resp.resize(n * k, 0.0);
        self.bias.resize(k, 0.0);
        self.nk.resize(k, 0.0);
        for buf in [
            &mut self.scale,
            &mut self.means_flat,
            &mut self.mean_acc,
            &mut self.var_acc,
        ] {
            buf.resize(k * dim, 0.0);
        }
    }
}

fn run_em(
    data: &[Vec<f64>],
    dim: usize,
    k: usize,
    config: &GmmConfig,
    init: InitMethod,
    rng: &mut StdRng,
    scratch: &mut DiagEmScratch,
) -> Result<DiagonalGmm, GmmError> {
    let n = data.len();
    // Global per-dimension variance for the variance floor.
    let mut global_mean = vec![0.0; dim];
    for p in data {
        for (g, &x) in global_mean.iter_mut().zip(p) {
            *g += x;
        }
    }
    for g in global_mean.iter_mut() {
        *g /= n as f64;
    }
    let mut global_var = vec![0.0; dim];
    for p in data {
        for ((g, &x), &m) in global_var.iter_mut().zip(p).zip(global_mean.iter()) {
            *g += (x - m) * (x - m);
        }
    }
    for g in global_var.iter_mut() {
        *g = (*g / n as f64).max(1e-9);
    }
    let floors: Vec<f64> = global_var
        .iter()
        .map(|&v| (config.covariance_floor * v).max(1e-9))
        .collect();

    let mut means = initial_mean_vectors(data, k, init, rng);
    let mut variances = vec![global_var.clone(); k];
    let mut weights = vec![1.0 / k as f64; k];

    let mut prev_avg = f64::NEG_INFINITY;
    let mut total_ll = f64::NEG_INFINITY;
    let mut converged = false;

    scratch.reserve(n, k, dim);
    let DiagEmScratch {
        resp,
        bias,
        nk,
        scale,
        means_flat,
        mean_acc,
        var_acc,
    } = scratch;

    for _ in 0..config.max_iterations {
        // Hoist the per-component tables out of the per-point loop: `bias[j]` carries
        // ln πⱼ plus the x-independent part of the log-density summed over dimensions,
        // `scale[j·dim + d] = −½/σ²ⱼd`, and the means are flattened so the kernel
        // streams three contiguous `dim`-wide rows per component.
        for j in 0..k {
            let mut b = weights[j].max(1e-300).ln();
            for d in 0..dim {
                let v = variances[j][d].max(1e-300);
                b += -0.5 * (LOG_2PI + v.ln());
                scale[j * dim + d] = -0.5 / v;
                means_flat[j * dim + d] = means[j][d];
            }
            bias[j] = b;
        }

        // Fused pass 1 (row-major): E-step log-densities + normalisation + the
        // M-step's nk/mean accumulation, one streaming sweep over `resp`.
        nk.fill(0.0);
        mean_acc.fill(0.0);
        let mut ll = 0.0;
        for (i, p) in data.iter().enumerate() {
            let row = &mut resp[i * k..(i + 1) * k];
            for (j, slot) in row.iter_mut().enumerate() {
                let m = &means_flat[j * dim..(j + 1) * dim];
                let s = &scale[j * dim..(j + 1) * dim];
                let mut acc = bias[j];
                for d in 0..dim {
                    let diff = p[d] - m[d];
                    acc += s[d] * (diff * diff);
                }
                *slot = acc;
            }
            // Shifted-exponential normalisation (one `exp` per cell; the
            // responsibilities are recovered with a reciprocal multiply, and the
            // log-normaliser matches `log_sum_exp` bit for bit).
            let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for r in row.iter_mut() {
                let e = (*r - m).exp();
                *r = e;
                sum += e;
            }
            ll += m + sum.ln();
            let inv = 1.0 / sum;
            for (j, r) in row.iter_mut().enumerate() {
                let g = *r * inv;
                *r = g;
                nk[j] += g;
                let ma = &mut mean_acc[j * dim..(j + 1) * dim];
                for (a, &x) in ma.iter_mut().zip(p.iter()) {
                    *a += g * x;
                }
            }
        }
        if !ll.is_finite() {
            return Err(GmmError::NumericalFailure(
                "non-finite log-likelihood".into(),
            ));
        }
        total_ll = ll;

        // Parameter updates from the accumulators; dead components are re-seeded.
        for j in 0..k {
            if nk[j] < 1e-12 {
                means[j] = data[j % n].clone();
                variances[j] = global_var.clone();
                weights[j] = 1e-6;
                for d in 0..dim {
                    means_flat[j * dim + d] = means[j][d];
                }
            } else {
                for d in 0..dim {
                    let m = mean_acc[j * dim + d] / nk[j];
                    means[j][d] = m;
                    means_flat[j * dim + d] = m;
                }
                weights[j] = nk[j] / n as f64;
            }
        }

        // Pass 2 (row-major): variance accumulation against the updated means. Dead
        // components' accumulators are computed but not used below.
        var_acc.fill(0.0);
        for (i, p) in data.iter().enumerate() {
            let row = &resp[i * k..(i + 1) * k];
            for (j, &r) in row.iter().enumerate() {
                let m = &means_flat[j * dim..(j + 1) * dim];
                let va = &mut var_acc[j * dim..(j + 1) * dim];
                for d in 0..dim {
                    let diff = p[d] - m[d];
                    va[d] += r * (diff * diff);
                }
            }
        }
        for j in 0..k {
            if nk[j] >= 1e-12 {
                for d in 0..dim {
                    variances[j][d] = (var_acc[j * dim + d] / nk[j]).max(floors[d]);
                }
            }
        }

        let wsum: f64 = weights.iter().sum();
        for w in weights.iter_mut() {
            *w /= wsum;
        }

        let avg = ll / n as f64;
        if (avg - prev_avg).abs() < config.tolerance {
            converged = true;
            break;
        }
        prev_avg = avg;
    }

    Ok(DiagonalGmm {
        weights,
        means,
        variances,
        log_likelihood: total_ll,
        converged,
        n_samples: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_data() -> Vec<Vec<f64>> {
        let mut data: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64 * 0.1, (i % 7) as f64 * 0.1])
            .collect();
        data.extend(
            (0..100).map(|i| vec![10.0 + (i % 10) as f64 * 0.1, 10.0 + (i % 7) as f64 * 0.1]),
        );
        data
    }

    fn cfg(k: usize) -> GmmConfig {
        GmmConfig::with_components(k).restarts(2).with_seed(3)
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(
            DiagonalGmm::fit(&[], &cfg(2)).unwrap_err(),
            GmmError::EmptyData
        );
        assert!(DiagonalGmm::fit(&[vec![]], &cfg(2)).is_err());
        assert!(DiagonalGmm::fit(&[vec![1.0], vec![1.0, 2.0]], &cfg(2)).is_err());
        assert!(DiagonalGmm::fit(&[vec![f64::NAN]], &cfg(2)).is_err());
        let mut c = cfg(2);
        c.n_components = 0;
        assert!(DiagonalGmm::fit(&[vec![1.0]], &c).is_err());
    }

    #[test]
    fn recovers_two_blobs() {
        let data = two_blob_data();
        let gmm = DiagonalGmm::fit(&data, &cfg(2)).unwrap();
        assert_eq!(gmm.n_components(), 2);
        let mut first_dims: Vec<f64> = gmm.means().iter().map(|m| m[0]).collect();
        first_dims.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(first_dims[0] < 2.0);
        assert!(first_dims[1] > 8.0);
    }

    #[test]
    fn responsibilities_sum_to_one_and_predict_separates_blobs() {
        let data = two_blob_data();
        let gmm = DiagonalGmm::fit(&data, &cfg(2)).unwrap();
        let r = gmm.responsibilities(&[0.2, 0.3]);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let low = gmm.predict(&[0.2, 0.3]);
        let high = gmm.predict(&[10.2, 10.3]);
        assert_ne!(low, high);
    }

    #[test]
    fn weights_form_a_simplex() {
        let data = two_blob_data();
        let gmm = DiagonalGmm::fit(&data, &cfg(4)).unwrap();
        assert!((gmm.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(gmm.weights().iter().all(|&w| w >= 0.0));
        assert!(gmm.variances().iter().all(|v| v.iter().all(|&x| x > 0.0)));
    }

    #[test]
    fn log_pdf_is_finite_and_bic_computable() {
        let data = two_blob_data();
        let gmm = DiagonalGmm::fit(&data, &cfg(3)).unwrap();
        assert!(gmm.log_pdf(&[5.0, 5.0]).is_finite());
        assert!(gmm.bic().is_finite());
        assert!(gmm.log_likelihood().is_finite());
    }

    #[test]
    fn deterministic_with_fixed_seed() {
        let data = two_blob_data();
        let a = DiagonalGmm::fit(&data, &cfg(3)).unwrap();
        let b = DiagonalGmm::fit(&data, &cfg(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn converges_on_simple_data() {
        let data = two_blob_data();
        let gmm = DiagonalGmm::fit(&data, &cfg(2)).unwrap();
        assert!(gmm.converged());
    }
}
