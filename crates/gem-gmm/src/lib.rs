//! # gem-gmm
//!
//! Gaussian Mixture Models fitted with the Expectation–Maximization algorithm, as used by
//! the Gem embedding method (§3.1 of the paper) and by the Squashing_GMM baseline.
//!
//! The crate provides:
//!
//! * [`UnivariateGmm`] — a mixture of one-dimensional Gaussians fitted to a stack of numeric
//!   values. This is the model Gem fits over *all* values of *all* columns (the paper treats
//!   the columns as one flat stack, §3.2) and then queries per value to build signatures.
//! * [`DiagonalGmm`] — a mixture of axis-aligned multivariate Gaussians, used for the
//!   per-column ablation variant and by tests that need a multi-dimensional mixture.
//! * [`GmmConfig`] — number of components, convergence tolerance (paper default `1e-3`),
//!   maximum iterations, number of EM restarts (paper default 10) and initialisation scheme.
//! * [`select_components_bic`] — Bayesian Information Criterion sweep used in §4.1.4 to
//!   choose the component count.
//!
//! All EM computations are carried out in log space with a numerically stable
//! log-sum-exp so that responsibilities stay finite even for far-outlying values.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod config;
mod diagonal;
mod init;
mod selection;
mod univariate;

pub use config::{GmmConfig, InitMethod};
pub use diagonal::DiagonalGmm;
pub use selection::{select_components_aic, select_components_bic, ComponentSelection};
#[doc(hidden)]
pub use univariate::bench_kernels;
pub use univariate::{GmmError, UnivariateGmm};
