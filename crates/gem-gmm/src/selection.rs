//! Model selection over the number of mixture components.
//!
//! §4.1.4 of the paper determines each dataset's optimal component count with the Bayesian
//! Information Criterion (BIC) and reports that performance is stable across 5–100
//! components. [`select_components_bic`] reproduces that sweep; Figure 4's bench binary uses
//! it to show the flat precision curve.

use crate::config::GmmConfig;
use crate::univariate::{GmmError, UnivariateGmm};

/// The outcome of a component-count sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSelection {
    /// The candidate component counts, in the order evaluated.
    pub candidates: Vec<usize>,
    /// The criterion value (BIC or AIC, lower is better) for each candidate.
    pub scores: Vec<f64>,
    /// The winning component count.
    pub best_components: usize,
    /// The fitted model for the winning count.
    pub best_model: UnivariateGmm,
}

/// Sweep the candidate component counts and pick the one with the lowest BIC.
///
/// # Errors
/// Propagates fitting errors; also errors when `candidates` is empty.
pub fn select_components_bic(
    data: &[f64],
    candidates: &[usize],
    base_config: &GmmConfig,
) -> Result<ComponentSelection, GmmError> {
    select_by(data, candidates, base_config, |m| m.bic())
}

/// Sweep the candidate component counts and pick the one with the lowest AIC.
///
/// # Errors
/// Propagates fitting errors; also errors when `candidates` is empty.
pub fn select_components_aic(
    data: &[f64],
    candidates: &[usize],
    base_config: &GmmConfig,
) -> Result<ComponentSelection, GmmError> {
    select_by(data, candidates, base_config, |m| m.aic())
}

fn select_by(
    data: &[f64],
    candidates: &[usize],
    base_config: &GmmConfig,
    criterion: impl Fn(&UnivariateGmm) -> f64,
) -> Result<ComponentSelection, GmmError> {
    if candidates.is_empty() {
        return Err(GmmError::InvalidConfig(
            "component selection needs at least one candidate".into(),
        ));
    }
    let mut scores = Vec::with_capacity(candidates.len());
    let mut best: Option<(usize, f64, UnivariateGmm)> = None;
    for &k in candidates {
        let config = GmmConfig {
            n_components: k,
            ..*base_config
        };
        let model = UnivariateGmm::fit(data, &config)?;
        let score = criterion(&model);
        scores.push(score);
        let better = best.as_ref().map(|(_, s, _)| score < *s).unwrap_or(true);
        if better {
            best = Some((k, score, model));
        }
    }
    let (best_components, _, best_model) = best.expect("non-empty candidates guarantee a winner");
    Ok(ComponentSelection {
        candidates: candidates.to_vec(),
        scores,
        best_components,
        best_model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_cluster_data() -> Vec<f64> {
        let mut data = Vec::new();
        for center in [0.0, 50.0, 100.0] {
            data.extend((0..150).map(|i| center + (i % 20) as f64 * 0.05));
        }
        data
    }

    fn cfg() -> GmmConfig {
        GmmConfig::with_components(2).restarts(2).with_seed(11)
    }

    #[test]
    fn empty_candidates_is_an_error() {
        assert!(select_components_bic(&[1.0, 2.0], &[], &cfg()).is_err());
        assert!(select_components_aic(&[1.0, 2.0], &[], &cfg()).is_err());
    }

    #[test]
    fn bic_prefers_the_true_component_count_over_underfitting() {
        let data = three_cluster_data();
        let sel = select_components_bic(&data, &[1, 3], &cfg()).unwrap();
        assert_eq!(sel.best_components, 3);
        assert_eq!(sel.candidates, vec![1, 3]);
        assert_eq!(sel.scores.len(), 2);
        assert!(sel.scores[1] < sel.scores[0]);
    }

    #[test]
    fn bic_penalises_gross_overfitting_relative_to_likelihood_gain() {
        let data = three_cluster_data();
        let sel = select_components_bic(&data, &[3, 60], &cfg()).unwrap();
        // With three tight clusters, 60 components cannot justify their parameter cost.
        assert_eq!(sel.best_components, 3);
    }

    #[test]
    fn aic_selection_runs_and_returns_model() {
        let data = three_cluster_data();
        let sel = select_components_aic(&data, &[2, 3, 4], &cfg()).unwrap();
        assert!(sel.candidates.contains(&sel.best_components));
        assert_eq!(sel.best_model.n_components(), sel.best_components);
    }

    #[test]
    fn scores_are_finite() {
        let data = three_cluster_data();
        let sel = select_components_bic(&data, &[2, 5, 8], &cfg()).unwrap();
        assert!(sel.scores.iter().all(|s| s.is_finite()));
    }
}
