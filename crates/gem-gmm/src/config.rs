//! Configuration of the EM fit.

use gem_json::{number, object, string, FromJson, Json, JsonError, ToJson};

/// How the EM algorithm is initialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitMethod {
    /// Means are drawn uniformly at random from the observed data points (the paper's
    /// "initialized randomly" wording, §3.1).
    Random,
    /// Means are chosen by the k-means++ seeding heuristic, which spreads the initial means
    /// over the data and typically converges in fewer iterations. Because the seeding weights
    /// candidates by squared distance, heavy-tailed raw-scale stacks can over-allocate
    /// components to extreme values; prefer [`InitMethod::Quantile`] for such data.
    KMeansPlusPlus,
    /// Means are placed at evenly spaced quantiles of the data: dense regions of the stack
    /// receive proportionally many components, which matches where a fully converged k-means
    /// initialisation (the scikit-learn default the paper relies on) ends up in one
    /// dimension. Deterministic, so a single EM run suffices. This is the default.
    Quantile,
}

/// Configuration for fitting a GMM with EM.
///
/// Defaults follow §4.1.4 of the paper: 50 components, convergence tolerance `1e-3`,
/// 10 restarts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub n_components: usize,
    /// Convergence threshold on the change in mean log-likelihood between iterations.
    pub tolerance: f64,
    /// Maximum EM iterations per restart.
    pub max_iterations: usize,
    /// Number of independent EM restarts; the fit with the best final log-likelihood wins.
    pub n_restarts: usize,
    /// Initialisation scheme.
    pub init: InitMethod,
    /// Variance floor: component variances are clamped to at least this value times the data
    /// variance (plus an absolute epsilon) to avoid singular components collapsing onto a
    /// single point.
    pub covariance_floor: f64,
    /// Seed for the random number generator driving initialisation, so fits are reproducible.
    pub seed: u64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        GmmConfig {
            n_components: 50,
            tolerance: 1e-3,
            max_iterations: 200,
            n_restarts: 10,
            init: InitMethod::Quantile,
            covariance_floor: 1e-6,
            seed: 42,
        }
    }
}

impl GmmConfig {
    /// Convenience constructor with the paper defaults but a custom component count.
    pub fn with_components(n_components: usize) -> Self {
        GmmConfig {
            n_components,
            ..GmmConfig::default()
        }
    }

    /// Builder-style setter for the number of restarts.
    pub fn restarts(mut self, n: usize) -> Self {
        self.n_restarts = n;
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the initialisation scheme.
    pub fn with_init(mut self, init: InitMethod) -> Self {
        self.init = init;
        self
    }

    /// Builder-style setter for the convergence tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Builder-style setter for the maximum number of iterations.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }
}

impl InitMethod {
    /// Stable persistence name of the scheme.
    pub fn as_str(&self) -> &'static str {
        match self {
            InitMethod::Random => "random",
            InitMethod::KMeansPlusPlus => "kmeans++",
            InitMethod::Quantile => "quantile",
        }
    }

    /// Inverse of [`InitMethod::as_str`].
    ///
    /// # Errors
    /// Returns a [`JsonError`] for an unknown name.
    pub fn parse(name: &str) -> Result<Self, JsonError> {
        match name {
            "random" => Ok(InitMethod::Random),
            "kmeans++" => Ok(InitMethod::KMeansPlusPlus),
            "quantile" => Ok(InitMethod::Quantile),
            other => Err(JsonError::conversion(format!(
                "unknown GMM init method `{other}`"
            ))),
        }
    }
}

/// Persistence of the fit configuration — stored alongside a fitted model so a reloaded
/// model knows exactly how it was produced. The `seed` is a `u64` but every value that
/// actually occurs (defaults and test seeds) is exactly representable as an `f64` JSON
/// number; seeds above 2^53 would lose precision, so they are serialised as a decimal
/// string instead.
impl ToJson for GmmConfig {
    fn to_json(&self) -> Json {
        object(vec![
            ("n_components", number(self.n_components as f64)),
            ("tolerance", number(self.tolerance)),
            ("max_iterations", number(self.max_iterations as f64)),
            ("n_restarts", number(self.n_restarts as f64)),
            ("init", string(self.init.as_str())),
            ("covariance_floor", number(self.covariance_floor)),
            ("seed", string(self.seed.to_string())),
        ])
    }
}

impl FromJson for GmmConfig {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let seed = value
            .str_field("seed")?
            .parse::<u64>()
            .map_err(|_| JsonError::conversion("field `seed` is not a u64 string"))?;
        Ok(GmmConfig {
            n_components: value.num_field("n_components")? as usize,
            tolerance: value.num_field("tolerance")?,
            max_iterations: value.num_field("max_iterations")? as usize,
            n_restarts: value.num_field("n_restarts")? as usize,
            init: InitMethod::parse(&value.str_field("init")?)?,
            covariance_floor: value.num_field("covariance_floor")?,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GmmConfig::default();
        assert_eq!(c.n_components, 50);
        assert_eq!(c.tolerance, 1e-3);
        assert_eq!(c.n_restarts, 10);
    }

    #[test]
    fn builder_methods() {
        let c = GmmConfig::with_components(5)
            .restarts(3)
            .with_seed(7)
            .with_init(InitMethod::Quantile)
            .with_tolerance(1e-5)
            .with_max_iterations(10);
        assert_eq!(c.n_components, 5);
        assert_eq!(c.n_restarts, 3);
        assert_eq!(c.seed, 7);
        assert_eq!(c.init, InitMethod::Quantile);
        assert_eq!(c.tolerance, 1e-5);
        assert_eq!(c.max_iterations, 10);
    }

    #[test]
    fn init_method_equality() {
        assert_eq!(InitMethod::Random, InitMethod::Random);
        assert_ne!(InitMethod::Random, InitMethod::KMeansPlusPlus);
    }

    #[test]
    fn config_round_trips_through_json_exactly() {
        for config in [
            GmmConfig::default(),
            GmmConfig::with_components(3)
                .restarts(4)
                .with_seed(u64::MAX)
                .with_init(InitMethod::KMeansPlusPlus)
                .with_tolerance(1e-7)
                .with_max_iterations(33),
            GmmConfig::default().with_init(InitMethod::Random),
        ] {
            let text = config.to_json().to_compact_string();
            let back = GmmConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, config);
        }
    }

    #[test]
    fn config_decoding_rejects_bad_values() {
        let mut pairs = match GmmConfig::default().to_json() {
            Json::Object(pairs) => pairs,
            _ => unreachable!(),
        };
        pairs.retain(|(k, _)| k != "init");
        pairs.push(("init".into(), string("no-such-scheme")));
        assert!(GmmConfig::from_json(&Json::Object(pairs.clone())).is_err());
        pairs.retain(|(k, _)| k != "seed");
        assert!(GmmConfig::from_json(&Json::Object(pairs)).is_err());
        assert!(InitMethod::parse("quantile").is_ok());
    }
}
