//! # gem
//!
//! Umbrella crate for the Rust reproduction of *"Gem: Gaussian Mixture Model Embeddings for
//! Numerical Feature Distributions"* (EDBT 2025).
//!
//! It re-exports the public API of the workspace crates so applications can depend on a
//! single crate:
//!
//! * [`core`] — the Gem embedding pipeline ([`core::GemEmbedder`], [`core::FeatureSet`],
//!   [`core::Composition`]),
//! * [`gmm`] — the univariate / diagonal GMMs and the EM algorithm,
//! * [`baselines`] — PLE, PAF, Squashing_GMM/SOM, the KS statistic and the `_SC` baselines,
//! * [`data`] — the column data model and the four synthetic corpus simulators,
//! * [`eval`] — precision@k, ARI, ACC and experiment reporting,
//! * [`serve`] — the serving layer: fingerprint-keyed LRU model cache over the
//!   fit/transform split, per-model request batching, and the handle-based
//!   [`serve::EmbedService`] protocol (`Fit` → [`serve::ModelHandle`] → `Embed`) with
//!   its TCP front-end ([`serve::GemServer`] / [`serve::GemClient`], the `gem-served`
//!   and `gem-client` binaries),
//! * [`proto`] — the wire protocol those binaries speak: versioned JSON-line envelopes
//!   with bit-exact column/matrix payload codecs,
//! * [`router`] — the sharded cluster tier: a routing front-end (`gem-routed`) that
//!   consistent-hashes model handles across `gem-served` replicas, health-probes them,
//!   and fails over by shipping snapshots between replicas — never by refitting,
//! * [`store`] — full model persistence: the fingerprint-addressed on-disk
//!   [`store::ModelStore`] the serving cache spills to and warm-starts from,
//! * [`cluster`] — k-means, SDCN and TableDC,
//! * [`numeric`], [`nn`], [`text`] — the numeric, neural-network and text substrates.
//!
//! ## Quick start
//!
//! ```
//! use gem::core::{FeatureSet, GemColumn, GemConfig, GemEmbedder};
//!
//! // Three numeric columns with headers.
//! let columns = vec![
//!     GemColumn::new((20..60).map(f64::from).collect(), "age"),
//!     GemColumn::new((25..65).map(f64::from).collect(), "age_patient"),
//!     GemColumn::new((0..40).map(|i| 1000.0 + 37.0 * i as f64).collect(), "price"),
//! ];
//!
//! // Embed them with a small configuration (the default follows the paper: 50 components).
//! let embedder = GemEmbedder::new(GemConfig::fast());
//! let embedding = embedder.embed(&columns, FeatureSet::dsc()).unwrap();
//! assert_eq!(embedding.n_columns(), 3);
//!
//! // The two age-like columns are closer to each other than to the price column.
//! let sim = |a: usize, b: usize| {
//!     gem::numeric::cosine_similarity(embedding.matrix.row(a), embedding.matrix.row(b)).unwrap()
//! };
//! assert!(sim(0, 1) > sim(0, 2));
//! ```

#![warn(clippy::all)]

/// The Gem embedding pipeline (re-export of `gem-core`).
pub use gem_core as core;

/// Gaussian mixture models and EM (re-export of `gem-gmm`).
pub use gem_gmm as gmm;

/// Baseline embedding methods (re-export of `gem-baselines`).
pub use gem_baselines as baselines;

/// Column data model and synthetic corpora (re-export of `gem-data`).
pub use gem_data as data;

/// Evaluation metrics and reporting (re-export of `gem-eval`).
pub use gem_eval as eval;

/// Serving: fingerprint-keyed model cache, batch engine, the handle-based embed
/// service and its TCP server/client (re-export of `gem-serve`).
pub use gem_serve as serve;

/// The serving wire protocol: versioned JSON-line envelopes with bit-exact payload
/// codecs (re-export of `gem-proto`).
pub use gem_proto as proto;

/// The sharded cluster tier: a gem-proto routing front-end that partitions model
/// handles across `gem-served` replicas by consistent hashing, health-probes them,
/// and fails over via snapshot shipping — never a refit (re-export of `gem-router`).
pub use gem_router as router;

/// Model persistence: deterministic fingerprints and the fingerprint-addressed on-disk
/// model store (re-export of `gem-store`). A saved `GemModel` reloaded in a fresh
/// process transforms bit-identically — restarts do not re-pay the EM fit.
pub use gem_store as store;

/// Zero-dependency telemetry primitives: lock-free counters, gauges, log-scaled
/// latency histograms and the Prometheus text-exposition registry the serving stack
/// reports through (re-export of `gem-telemetry`).
pub use gem_telemetry as telemetry;

/// JSON values and the `ToJson`/`FromJson` persistence traits (re-export of `gem-json`);
/// fitted GMMs serialise through these so cached models survive restarts.
pub use gem_json as json;

/// Clustering algorithms (re-export of `gem-cluster`).
pub use gem_cluster as cluster;

/// Numeric substrate (re-export of `gem-numeric`).
pub use gem_numeric as numeric;

/// Neural-network substrate (re-export of `gem-nn`).
pub use gem_nn as nn;

/// Header text embeddings (re-export of `gem-text`).
pub use gem_text as text;
