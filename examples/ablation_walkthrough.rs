//! A walkthrough of the Figure 3 ablation on a small corpus: how much do the
//! distributional, statistical and contextual evidence types each contribute, and how do
//! the three composition methods compare?
//!
//! Run with `cargo run --release --example ablation_walkthrough`.

use gem::core::{
    ablation_feature_sets, Composition, FeatureSet, GemColumn, GemConfig, GemEmbedder,
};
use gem::data::{gds, CorpusConfig, Granularity};
use gem::eval::evaluate_retrieval;
use gem::gmm::GmmConfig;

fn main() {
    let corpus = gds(&CorpusConfig {
        scale: 0.08,
        min_values: 40,
        max_values: 90,
        seed: 3,
    });
    let labels = Granularity::Fine.labels(&corpus);
    let columns: Vec<GemColumn> = corpus
        .columns
        .iter()
        .map(|c| GemColumn::new(c.values.clone(), c.header.clone()))
        .collect();
    println!(
        "Corpus: {} columns, {} fine-grained types\n",
        corpus.n_columns(),
        corpus.n_fine_clusters()
    );

    let base_config = GemConfig {
        gmm: GmmConfig::with_components(16).restarts(2).with_seed(11),
        ..GemConfig::default()
    };

    println!("Feature-combination ablation (concatenation composition):");
    for features in ablation_feature_sets() {
        let embedding = GemEmbedder::new(base_config.clone())
            .embed(&columns, features)
            .expect("gem embedding");
        let scores = evaluate_retrieval(&embedding.matrix, &labels);
        println!(
            "  {:<7} -> average precision {:.3} ({} dimensions)",
            features.label(),
            scores.average_precision,
            embedding.dim()
        );
    }

    println!("\nComposition methods for the full D+S+C feature set:");
    for composition in [
        Composition::Concatenation,
        Composition::Aggregation,
        Composition::autoencoder(),
    ] {
        let config = GemConfig {
            composition,
            ..base_config.clone()
        };
        let embedding = GemEmbedder::new(config)
            .embed(&columns, FeatureSet::dsc())
            .expect("gem embedding");
        let scores = evaluate_retrieval(&embedding.matrix, &labels);
        println!(
            "  {:<13} -> average precision {:.3} ({} dimensions)",
            composition.label(),
            scores.average_precision,
            embedding.dim()
        );
    }
}
