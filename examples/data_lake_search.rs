//! Dataset-search style usage: given a query column, find the most similar columns across a
//! heterogeneous (WDC-like) corpus — the "related column / joinable column discovery"
//! scenario that motivates numerical column embeddings in the paper's introduction.
//!
//! Run with `cargo run --release --example data_lake_search`.

use gem::core::{FeatureSet, GemColumn, GemConfig, GemEmbedder};
use gem::data::{wdc, CorpusConfig};
use gem::gmm::GmmConfig;
use gem::numeric::distance::{similarity_matrix, top_k_neighbors};

fn main() {
    let corpus = wdc(&CorpusConfig {
        scale: 0.06,
        min_values: 40,
        max_values: 100,
        seed: 33,
    });
    println!(
        "Indexed corpus: {} numeric columns across {} semantic types",
        corpus.n_columns(),
        corpus.n_fine_clusters()
    );

    let columns: Vec<GemColumn> = corpus
        .columns
        .iter()
        .map(|c| GemColumn::new(c.values.clone(), c.header.clone()))
        .collect();
    let config = GemConfig {
        gmm: GmmConfig::with_components(16).restarts(2).with_seed(9),
        ..GemConfig::default()
    };
    let embedding = GemEmbedder::new(config)
        .embed(&columns, FeatureSet::dsc())
        .expect("gem embedding");

    // Pre-compute the similarity index once; each query is then a row lookup + sort.
    let index = similarity_matrix(&embedding.matrix);

    // Use the first few columns as queries and report their top-5 matches.
    for query in 0..5.min(corpus.n_columns()) {
        let q = &corpus.columns[query];
        println!(
            "\nQuery column #{query}: header '{}', true type '{}'",
            q.header, q.fine_type
        );
        for (rank, neighbor) in top_k_neighbors(&index, query, 5).into_iter().enumerate() {
            let n = &corpus.columns[neighbor];
            let marker = if n.fine_type == q.fine_type {
                "MATCH"
            } else {
                "     "
            };
            println!(
                "   {}. [{}] header '{}', type '{}' (similarity {:.3})",
                rank + 1,
                marker,
                n.header,
                n.fine_type,
                index.get(query, neighbor)
            );
        }
    }
}
