//! Cluster serving: three replicas behind the `gem-router` tier, in one process.
//!
//! The router speaks the same newline-delimited `gem-proto` JSON as a single
//! `gem-served`, so a `GemClient` pointed at it cannot tell the difference — except
//! that behind it a consistent-hash ring shards model handles across replicas, every
//! confirmed fit is snapshot-replicated to its ring successor, and killing the
//! replica that owns a handle does not lose it:
//!
//! 1. **Shard placement.** Fits land on the replica the ring assigns their handle;
//!    the router records the placement and prints the shard map.
//! 2. **Fail-over round trip.** One replica is shut down mid-session; the handles it
//!    owned keep answering — bit-identically — from the ring successor that received
//!    the write-through snapshot copy. No refit happens anywhere (the merged stats
//!    prove it: zero fit microseconds after the kill).
//! 3. **Merged fan-out.** `stats` and `list` aggregate over the live membership, so
//!    the one client sees cluster-wide counters and a deduplicated model listing.
//!
//! Run with `cargo run --release --example cluster_serving`.

use gem::core::{FeatureSet, GemColumn, GemConfig, GemModel, MethodRegistry};
use gem::router::{Cluster, RouterMetrics, RouterServer};
use gem::serve::{EmbedService, GemClient, GemServer, ServedFrom, ServerHandle};
use std::sync::Arc;
use std::time::Duration;

fn start_replica(
    config: &GemConfig,
) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let mut service = EmbedService::new(MethodRegistry::with_gem(config), 16);
    service.register_gem_family(config);
    let server = GemServer::bind(Arc::new(service), ("127.0.0.1", 0))
        .expect("bind replica")
        .with_workers(2);
    let handle = server.handle().expect("replica handle");
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn corpus(seed: u64) -> Vec<GemColumn> {
    gem::serve::demo::synthetic_corpus(24, 48, seed)
}

fn main() {
    let config = GemConfig::fast();

    // ---- Three replicas + the router, all on ephemeral localhost ports. ----
    let replicas: Vec<(ServerHandle, _)> = (0..3).map(|_| start_replica(&config)).collect();
    let addrs: Vec<String> = replicas.iter().map(|(h, _)| h.addr().to_string()).collect();
    let metrics = Arc::new(RouterMetrics::new());
    let cluster = Arc::new(Cluster::with_options(
        &addrs,
        Arc::clone(&metrics),
        64,
        1,
        Duration::from_millis(200),
        Duration::from_secs(2),
    ));
    let router = RouterServer::bind(Arc::clone(&cluster), ("127.0.0.1", 0)).expect("bind router");
    let router_handle = router.handle();
    let router_addr = router.local_addr();
    let router_join = std::thread::spawn(move || router.run());
    println!("gem-routed listening on {router_addr}");
    for (i, addr) in addrs.iter().enumerate() {
        println!("  replica {i}: {addr}");
    }

    // ---- Fit a handful of models through the router; watch the shard placement. ----
    let mut client = GemClient::connect(router_addr).expect("connect router");
    let mut handles = Vec::new();
    println!("\nshard placement (consistent-hash ring, 64 vnodes/replica):");
    for seed in 0..4u64 {
        let cols = corpus(seed);
        let fitted = client
            .fit(&cols, &config, FeatureSet::ds())
            .expect("fit through router");
        let owner = cluster
            .placement_of(&fitted.handle.to_hex())
            .expect("placement recorded");
        println!("  model {} -> {owner}", fitted.handle);
        handles.push((fitted.handle, cols));
    }

    // In-process references for the bit-exactness checks below.
    let references: Vec<_> = handles
        .iter()
        .map(|(_, cols)| {
            let queries: Vec<GemColumn> = cols.iter().take(3).cloned().collect();
            let local = GemModel::fit(cols, &config, FeatureSet::ds()).expect("local fit");
            let matrix = local.transform(&queries).expect("local transform").matrix;
            (queries, matrix)
        })
        .collect();

    // ---- Kill one replica that owns at least one handle. ----
    let victim = cluster
        .placement_of(&handles[0].0.to_hex())
        .expect("placement recorded");
    let at = addrs.iter().position(|a| *a == victim).expect("a member");
    println!(
        "\nkilling replica {at} ({victim}) — it owns model {}",
        handles[0].0
    );
    let mut survivors = Vec::new();
    for (i, (handle, join)) in replicas.into_iter().enumerate() {
        if i == at {
            handle.shutdown();
            join.join().expect("join victim").expect("victim run");
        } else {
            survivors.push((handle, join));
        }
    }

    // Baseline before the fail-over round trips: the survivors' own cold fits are in
    // here, so "no refit during fail-over" means these numbers do not grow.
    let baseline = client.stats().expect("baseline stats");

    // ---- Every handle still answers, bit-identically, and nothing refits. ----
    for ((handle, _), (queries, reference)) in handles.iter().zip(&references) {
        let outcome = loop {
            match client.embed(*handle, queries) {
                Ok(outcome) => break outcome,
                // A request in flight on the dying connection surfaces as the typed,
                // retryable error while the router re-routes; back off and go again.
                Err(e) if e.code() == Some("replica_unavailable") => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("embed through fail-over failed: {e}"),
            }
        };
        assert_eq!(
            &outcome.matrix, reference,
            "fail-over must not change a single bit"
        );
        assert_ne!(
            outcome.served_from,
            ServedFrom::ColdFit,
            "fail-over serves the shipped snapshot, never refits"
        );
        let now = cluster
            .route_handle(&handle.to_hex())
            .expect("a live route");
        println!(
            "  model {handle} now served by {now} ({})",
            outcome.served_from.wire_name()
        );
    }

    // ---- Merged stats across the live membership: no cold fit served the kill. ----
    let stats = client.stats().expect("merged stats");
    println!(
        "\nmerged stats over {} live replicas: {} requests, {} hits, {} misses, fit_micros {}",
        cluster.live_replicas().len(),
        stats.requests,
        stats.hits,
        stats.misses,
        stats.fit_micros
    );
    assert_eq!(
        stats.fit_micros, baseline.fit_micros,
        "fail-over spent zero fit time — every post-kill embed was served from a \
         shipped snapshot"
    );
    assert_eq!(stats.misses, baseline.misses, "no fail-over embed missed");
    assert!(
        stats.hits > baseline.hits,
        "the fail-over embeds were cache hits"
    );
    let models = client.list_models().expect("merged listing");
    println!(
        "merged model listing: {} models resolve cluster-wide",
        models.len()
    );
    for (handle, _) in &handles {
        assert!(
            models.iter().any(|m| m.handle == handle.to_hex()),
            "{handle} missing from the merged listing"
        );
    }

    // The Prometheus exposition the router serves on --metrics-addr.
    let text = metrics.render();
    assert!(text.contains(&format!("router_replica_state{{replica=\"{victim}\"}} 0")));
    println!("router metrics report {victim} as down (router_replica_state 0) ✓");

    drop(client);
    router_handle.shutdown();
    router_join
        .join()
        .expect("join router")
        .expect("router run");
    for (handle, join) in survivors {
        handle.shutdown();
        join.join().expect("join survivor").expect("survivor run");
    }
    println!("\ncluster shut down cleanly");
}
