//! Column clustering (the Table 4 downstream task on a small corpus): embed a GDS-like
//! corpus with Gem, cluster the embeddings with TableDC and SDCN, and score ARI / ACC
//! against the ground-truth semantic types.
//!
//! Run with `cargo run --release --example column_clustering`.

use gem::cluster::{DeepClustering, KMeans, KMeansConfig, Sdcn, TableDc};
use gem::core::{FeatureSet, GemColumn, GemConfig, GemEmbedder};
use gem::data::{gds, CorpusConfig, Granularity};
use gem::eval::{adjusted_rand_index, clustering_accuracy};
use gem::gmm::GmmConfig;

fn main() {
    let corpus = gds(&CorpusConfig {
        scale: 0.05,
        min_values: 40,
        max_values: 90,
        seed: 21,
    });
    let truth = Granularity::Fine.label_indices(&corpus);
    let k = Granularity::Fine.n_clusters(&corpus);
    println!(
        "Corpus: {} columns, {} ground-truth clusters",
        corpus.n_columns(),
        k
    );

    let columns: Vec<GemColumn> = corpus
        .columns
        .iter()
        .map(|c| GemColumn::new(c.values.clone(), c.header.clone()))
        .collect();
    let config = GemConfig {
        gmm: GmmConfig::with_components(16).restarts(2).with_seed(5),
        ..GemConfig::default()
    };
    let embedding = GemEmbedder::new(config)
        .embed(&columns, FeatureSet::dsc())
        .expect("gem embedding");
    println!("Gem embedding: {} dimensions per column", embedding.dim());

    // Plain k-means on the embeddings as a sanity baseline.
    let km = KMeans::fit(&embedding.matrix, &KMeansConfig::new(k));
    report("k-means", &km.assignments, &truth);

    // The two deep-clustering algorithms used in the paper.
    let tabledc = TableDc::new(k).cluster(&embedding.matrix);
    report("TableDC", &tabledc, &truth);
    let sdcn = Sdcn::new(k).cluster(&embedding.matrix);
    report("SDCN", &sdcn, &truth);
}

fn report(name: &str, predicted: &[usize], truth: &[usize]) {
    println!(
        "  {name:<8} ARI {:.3}   ACC {:.3}",
        adjusted_rand_index(predicted, truth),
        clustering_accuracy(predicted, truth)
    );
}
