//! Quickstart: embed a handful of numeric columns with Gem and inspect the similarities.
//!
//! Run with `cargo run --release --example quickstart`.

use gem::core::{FeatureSet, GemColumn, GemConfig, GemEmbedder};
use gem::numeric::cosine_similarity;

fn main() {
    // A miniature "data lake": six numeric columns from three semantic types whose raw
    // ranges partially overlap (the situation Figure 1 of the paper illustrates).
    let columns = vec![
        GemColumn::new((0..100).map(|i| 20.0 + (i % 45) as f64).collect(), "age"),
        GemColumn::new(
            (0..100).map(|i| 18.0 + (i % 50) as f64).collect(),
            "patient_age",
        ),
        GemColumn::new((0..100).map(|i| 1.0 + (i % 40) as f64).collect(), "rank"),
        GemColumn::new(
            (0..100).map(|i| 3.0 + (i % 38) as f64).collect(),
            "university_rank",
        ),
        GemColumn::new(
            (0..100)
                .map(|i| 15_000.0 + 310.0 * (i % 60) as f64)
                .collect(),
            "price_car",
        ),
        GemColumn::new(
            (0..100)
                .map(|i| 12_500.0 + 295.0 * (i % 55) as f64)
                .collect(),
            "price_motorbike",
        ),
    ];

    // The paper's configuration uses 50 Gaussian components; a handful is plenty for six
    // columns, so use the light configuration here.
    let embedder = GemEmbedder::new(GemConfig::fast());
    let embedding = embedder
        .embed(&columns, FeatureSet::dsc())
        .expect("embedding succeeds on non-empty columns");

    println!(
        "Embedded {} columns into {} dimensions ({} GMM components + 7 statistical features + header embedding)",
        embedding.n_columns(),
        embedding.dim(),
        embedding.signature.cols(),
    );
    println!("\nPairwise cosine similarities:");
    for i in 0..columns.len() {
        for j in (i + 1)..columns.len() {
            let sim = cosine_similarity(embedding.matrix.row(i), embedding.matrix.row(j)).unwrap();
            println!(
                "  {:<18} ~ {:<18} = {:.3}",
                columns[i].header, columns[j].header, sim
            );
        }
    }

    // Nearest neighbour of each column.
    println!("\nNearest neighbour per column:");
    for i in 0..columns.len() {
        let mut best = (usize::MAX, f64::NEG_INFINITY);
        for j in 0..columns.len() {
            if i == j {
                continue;
            }
            let sim = cosine_similarity(embedding.matrix.row(i), embedding.matrix.row(j)).unwrap();
            if sim > best.1 {
                best = (j, sim);
            }
        }
        println!(
            "  {:<18} -> {:<18} (similarity {:.3})",
            columns[i].header, columns[best.0].header, best.1
        );
    }
}
