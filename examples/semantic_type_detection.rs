//! Semantic type detection on a synthetic GitTables-like corpus: embed every numeric column
//! with Gem and the numeric-only baselines, then score precision@k against the ground-truth
//! semantic types (the Table 2 protocol on a small corpus).
//!
//! Run with `cargo run --release --example semantic_type_detection`.

use gem::baselines::{ColumnEmbedder, KsEncoder, PiecewiseLinearEncoder, SquashingGmm};
use gem::core::{FeatureSet, GemColumn, GemConfig, GemEmbedder};
use gem::data::{gittables, CorpusConfig, Granularity};
use gem::eval::evaluate_retrieval;
use gem::gmm::GmmConfig;

fn main() {
    // A small GitTables-like corpus: ~90 numeric columns, 19 semantic types, no usable
    // header context (the hardest of the paper's four settings).
    let corpus = gittables(&CorpusConfig {
        scale: 0.2,
        min_values: 50,
        max_values: 120,
        seed: 42,
    });
    println!(
        "Corpus: {} columns, {} ground-truth semantic types",
        corpus.n_columns(),
        corpus.n_coarse_clusters()
    );

    let columns: Vec<GemColumn> = corpus
        .columns
        .iter()
        .map(|c| GemColumn::values_only(c.values.clone()))
        .collect();
    let labels = Granularity::Coarse.labels(&corpus);

    // Gem (D+S): distributional signature + statistical features, no headers.
    let gem_config = GemConfig {
        gmm: GmmConfig::with_components(16).restarts(3).with_seed(7),
        ..GemConfig::default()
    };
    let gem = GemEmbedder::new(gem_config)
        .embed(&columns, FeatureSet::ds())
        .expect("gem embedding");
    let gem_scores = evaluate_retrieval(&gem.matrix, &labels);

    // Baselines.
    let squashing = evaluate_retrieval(
        &SquashingGmm::new(16).embed_columns(&columns).unwrap(),
        &labels,
    );
    let ple = evaluate_retrieval(
        &PiecewiseLinearEncoder::new(16)
            .embed_columns(&columns)
            .unwrap(),
        &labels,
    );
    let ks = evaluate_retrieval(&KsEncoder.embed_columns(&columns).unwrap(), &labels);

    println!("\nAverage precision@k (k = columns of the same type):");
    println!("  Gem (D+S)       : {:.3}", gem_scores.average_precision);
    println!("  Squashing_GMM   : {:.3}", squashing.average_precision);
    println!("  PLE             : {:.3}", ple.average_precision);
    println!("  KS statistic    : {:.3}", ks.average_precision);

    // Show the per-type breakdown for Gem: which semantic types are easy, which are hard.
    println!("\nPer-type precision for Gem (D+S):");
    let mut per_type: Vec<_> = gem_scores.per_type_precision.iter().collect();
    per_type.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
    for (label, precision) in per_type.iter().take(10) {
        println!("  {label:<24} {precision:.3}");
    }
}
