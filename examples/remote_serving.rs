//! Remote serving: fit once over TCP, embed by handle forever after.
//!
//! This is the serving protocol end to end — a real `GemServer` on an ephemeral
//! localhost port, a `GemClient` on the other side, newline-delimited `gem-proto` JSON
//! in between — demonstrating the properties the handle-based API guarantees:
//!
//! 1. **Fit once, embed by handle.** The corpus crosses the wire exactly once (the
//!    `Fit` request); every `Embed` after that ships only the handle + query columns.
//! 2. **Bit-identical to in-process.** The matrix that comes back over the socket is
//!    asserted `==` against a local `GemModel::fit` + `transform` — column values and
//!    embeddings travel as IEEE-754 bit patterns, so not a single bit drifts.
//! 3. **Typed errors, never silent refits.** Embedding through an unknown handle
//!    returns the stable `unknown_model` error code; the server cannot refit because
//!    the request carries no corpus.
//! 4. **Out-of-order pipelining.** Many requests ride one connection at once; the
//!    server's executor pool answers them as they finish, so cheap embeds overtake a
//!    slow fit instead of queueing behind it (responses correlate by envelope id).
//! 5. **Snapshot shipping.** `pull_model` serializes a fitted model (the bit-exact
//!    `gem-store` envelope) and `push_model` installs it on a fresh replica — the
//!    handle resolves there without a refit and without the corpus on the wire.
//!
//! Run with `cargo run --release --example remote_serving`.

use gem::core::{FeatureSet, GemColumn, GemConfig, GemModel, MethodRegistry};
use gem::proto::RequestBody;
use gem::serve::{ClientError, EmbedService, GemClient, GemServer, ModelHandle, ServedFrom};
use std::sync::Arc;
use std::time::Instant;

fn corpus() -> Vec<GemColumn> {
    // A synthetic data lake: 120 columns from four semantic families — the same
    // generator `gem-client gen-corpus` writes to disk.
    gem::serve::demo::synthetic_corpus(120, 80, 7)
}

fn main() {
    let config = GemConfig::fast();

    // Server side: an EmbedService behind a TCP socket on an ephemeral port.
    let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 8);
    service.register_gem_family(&config);
    let server = GemServer::bind(Arc::new(service), ("127.0.0.1", 0)).expect("bind");
    let handle = server.handle().expect("server handle");
    let server_thread = std::thread::spawn(move || server.run());
    println!("gem-served listening on {}\n", handle.addr());

    // Client side: fit once — the only time the corpus crosses the wire.
    let mut client = GemClient::connect(handle.addr()).expect("connect");
    let columns = corpus();
    let start = Instant::now();
    let fitted = client
        .fit(&columns, &config, FeatureSet::ds())
        .expect("remote fit");
    println!(
        "fit   ({} columns over the wire): {:>7.2} ms -> handle {}",
        columns.len(),
        start.elapsed().as_secs_f64() * 1e3,
        fitted.handle
    );
    assert_eq!(fitted.served_from, ServedFrom::ColdFit);

    // Embed by handle: only the handle + queries travel; the model is cache-resolved.
    let queries = vec![
        GemColumn::new((0..50).map(|i| 21.0 + (i % 55) as f64).collect(), "age_q"),
        GemColumn::new(
            (0..50)
                .map(|i| 10_000.0 + 400.0 * (i % 65) as f64)
                .collect(),
            "price_q",
        ),
    ];
    let start = Instant::now();
    let remote = client.embed(fitted.handle, &queries).expect("remote embed");
    println!(
        "embed ({} queries by handle):     {:>7.2} ms (served_from: {})",
        queries.len(),
        start.elapsed().as_secs_f64() * 1e3,
        remote.served_from.wire_name()
    );
    assert_ne!(
        remote.served_from,
        ServedFrom::ColdFit,
        "no refit by handle"
    );

    // The acceptance gate: the matrix that crossed the socket is bit-identical (==)
    // to an in-process GemModel::fit + transform of the same corpus and queries.
    let local = GemModel::fit(&columns, &config, FeatureSet::ds())
        .expect("local fit")
        .transform(&queries)
        .expect("local transform");
    assert_eq!(
        remote.matrix, local.matrix,
        "remote embedding must be bit-identical to in-process fit+transform"
    );
    println!(
        "check: remote matrix == in-process GemModel::fit+transform ({} x {}) ✓\n",
        remote.matrix.rows(),
        remote.matrix.cols()
    );

    // Pipelined, out-of-order: a deliberately slow cold fit plus a burst of cheap
    // embeds, all in flight on this one connection. The embeds are answered first —
    // the slow fit no longer head-of-line-blocks them.
    let fit_id = client
        .send(RequestBody::Fit {
            corpus: columns.clone(),
            config: GemConfig::with_components(24),
            features: FeatureSet::ds(),
            composition: None,
        })
        .expect("pipelined fit send");
    let embed_ids: Vec<u64> = (0..8)
        .map(|_| {
            client
                .send(RequestBody::Embed {
                    handle: fitted.handle.to_hex(),
                    queries: queries.clone(),
                })
                .expect("pipelined embed send")
        })
        .collect();
    let mut arrival = Vec::new();
    while client.pending() > 0 {
        let reply = client.recv_any().expect("pipelined recv");
        reply.outcome.expect("pipelined outcome");
        arrival.push(reply.id);
    }
    let fit_position = arrival.iter().position(|id| *id == fit_id).unwrap();
    assert!(
        embed_ids.iter().all(|id| arrival.contains(id)),
        "every pipelined embed correlates"
    );
    println!(
        "pipelined: slow fit sent first, answered {} of {} — {} cheap embeds overtook it ✓",
        fit_position + 1,
        arrival.len(),
        fit_position
    );

    // Snapshot shipping: pull the fitted model and push it to a brand-new replica that
    // has never seen the corpus. The same handle resolves there, bit-identically.
    let replica_config = GemConfig::fast();
    let mut replica_service = EmbedService::new(MethodRegistry::with_gem(&replica_config), 8);
    replica_service.register_gem_family(&replica_config);
    let replica = GemServer::bind(Arc::new(replica_service), ("127.0.0.1", 0)).expect("bind");
    let replica_handle = replica.handle().expect("replica handle");
    let replica_thread = std::thread::spawn(move || replica.run());
    let pulled = client.pull_model(fitted.handle).expect("pull");
    let mut replica_client = GemClient::connect(replica_handle.addr()).expect("connect replica");
    let pushed = replica_client.push_model(&pulled.snapshot).expect("push");
    assert_eq!(pushed.handle, fitted.handle);
    let shipped = replica_client
        .embed(fitted.handle, &queries)
        .expect("embed on replica");
    assert_eq!(
        shipped.matrix, local.matrix,
        "a pushed replica serves bit-identically — no corpus, no refit"
    );
    println!(
        "shipped {} to a fresh replica: embed there == in-process fit+transform ✓",
        fitted.handle
    );
    replica_handle.shutdown();
    replica_thread.join().expect("join replica").expect("run");

    // An unknown handle is a typed error with a stable code — never a silent refit.
    let bogus = ModelHandle::from_hex("00000000000000aa-00000000000000bb").unwrap();
    let err = client.embed(bogus, &queries).expect_err("bogus handle");
    assert_eq!(err.code(), Some("unknown_model"));
    match &err {
        ClientError::Server { code, message, .. } => {
            println!("unknown handle -> [{code}] {message}");
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }

    // Handle lifecycle: evict, and the handle stops resolving.
    assert!(client.evict(fitted.handle).expect("evict"));
    let err = client.embed(fitted.handle, &queries).expect_err("evicted");
    assert_eq!(err.code(), Some("unknown_model"));
    println!(
        "evicted {} -> embed now fails with unknown_model ✓",
        fitted.handle
    );

    let stats = client.stats().expect("stats");
    println!(
        "\nserver stats: {} requests, {} hits, {} misses",
        stats.requests, stats.hits, stats.misses
    );

    handle.shutdown();
    server_thread.join().expect("join").expect("server run");
    println!(
        "server shut down cleanly after {} connections / {} requests",
        handle.counters().connections(),
        handle.counters().requests()
    );
}
