//! Serving: fit a corpus model once, then answer embed requests against it from a
//! fingerprint-keyed cache — the fit-once / serve-many pattern `gem-serve` provides.
//!
//! Run with `cargo run --release --example serving`.

use gem::core::{GemColumn, GemConfig, MethodRegistry};
use gem::serve::{EmbedService, ServeRequest};
use std::sync::Arc;
use std::time::Instant;

fn corpus() -> Vec<GemColumn> {
    // A synthetic data lake: 120 columns from four semantic families — the same
    // generator `gem-client gen-corpus` writes to disk.
    gem::serve::demo::synthetic_corpus(120, 80, 7)
}

fn main() {
    let config = GemConfig::fast();
    let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 8);
    service.register_gem_family(&config);

    let corpus = Arc::new(corpus());
    println!(
        "Serving {} methods over a {}-column corpus (cache capacity 8)\n",
        service.methods().len(),
        corpus.len()
    );

    // Request 1: cold — fits the model (the expensive EM step) and caches it.
    let start = Instant::now();
    let cold = service
        .serve_one(ServeRequest::embed_corpus("Gem (D+S)", Arc::clone(&corpus)))
        .expect("corpus embeds");
    let cold_s = start.elapsed().as_secs_f64();
    let was_hit = cold.cache_hit();
    let cold_matrix = cold.into_matrix().expect("embedded response");
    println!(
        "cold  embed: {:>8.2} ms  (cache_hit: {}, {} columns x {} dims)",
        cold_s * 1e3,
        was_hit,
        cold_matrix.rows(),
        cold_matrix.cols()
    );

    // Request 2: warm — same corpus fingerprint, so the cached model transforms only.
    let start = Instant::now();
    let warm = service
        .serve_one(ServeRequest::embed_corpus("Gem (D+S)", Arc::clone(&corpus)))
        .expect("corpus embeds");
    let warm_s = start.elapsed().as_secs_f64();
    let warm_hit = warm.cache_hit();
    assert_eq!(
        warm.into_matrix().expect("embedded response"),
        cold_matrix,
        "warm cache hits are bit-identical to the cold fit"
    );
    println!(
        "warm  embed: {:>8.2} ms  (cache_hit: {}, {:.1}x faster, bit-identical output)",
        warm_s * 1e3,
        warm_hit,
        cold_s / warm_s.max(1e-9)
    );

    // The same seam, addressed by handle: fit once, then embed through the returned
    // ModelHandle — the request shape that also travels over TCP (see the
    // `remote_serving` example).
    let fitted = service
        .serve_one(ServeRequest::fit(
            Arc::clone(&corpus),
            config.clone(),
            gem::core::FeatureSet::ds(),
        ))
        .expect("fit");
    let handle = fitted.handle().expect("fitted response");
    let by_handle = service
        .serve_one(ServeRequest::embed(handle, corpus.to_vec()))
        .expect("embed by handle");
    println!(
        "by-handle:   handle {} resolves without refitting (cache_hit: {})",
        handle,
        by_handle.cache_hit()
    );

    // Request 3: embed *new, unseen* columns against the frozen corpus model — what a
    // query path needs: project a user's column into the lake's embedding space.
    let queries = vec![
        GemColumn::new((0..50).map(|i| 21.0 + (i % 55) as f64).collect(), "age_q"),
        GemColumn::new(
            (0..50)
                .map(|i| 10_000.0 + 400.0 * (i % 65) as f64)
                .collect(),
            "price_q",
        ),
    ];
    let start = Instant::now();
    let response = service
        .serve_one(ServeRequest::embed(handle, queries))
        .expect("queries embed");
    let query_s = start.elapsed().as_secs_f64();
    let query_hit = response.cache_hit();
    let query_matrix = response.into_matrix().expect("embedded response");
    println!(
        "query embed: {:>8.2} ms  (cache_hit: {}, {} unseen columns into the corpus space)",
        query_s * 1e3,
        query_hit,
        query_matrix.rows()
    );

    // Nearest corpus column per query, in the shared embedding space.
    for (q, header) in ["age_q", "price_q"].iter().enumerate() {
        let mut best = (0, f64::NEG_INFINITY);
        for i in 0..cold_matrix.rows() {
            let sim =
                gem::numeric::cosine_similarity(query_matrix.row(q), cold_matrix.row(i)).unwrap();
            if sim > best.1 {
                best = (i, sim);
            }
        }
        println!(
            "  {:<8} nearest corpus column: {:<10} (similarity {:.3})",
            header, corpus[best.0].header, best.1
        );
    }

    // A mixed batch: Gem variants share the cached models; a batch of mixed methods runs
    // in one engine pass.
    let methods = ["Gem (D+S)", "Gem", "D+S", "SBERT (headers only)"];
    let batch: Vec<ServeRequest> = methods
        .iter()
        .map(|m| ServeRequest::embed_corpus(*m, Arc::clone(&corpus)))
        .collect();
    let start = Instant::now();
    let responses = service.serve(batch);
    let batch_s = start.elapsed().as_secs_f64();
    println!(
        "\nmixed batch of {} methods in {:.2} ms:",
        responses.len(),
        batch_s * 1e3
    );
    for (method, r) in methods.iter().zip(&responses) {
        let r = r.as_ref().expect("batch method embeds");
        println!(
            "  {:<22} cache_hit: {:<5} dims: {}",
            method,
            r.cache_hit(),
            r.matrix().map(gem::numeric::Matrix::cols).unwrap_or(0)
        );
    }

    let stats = service.cache_stats();
    println!(
        "\ncache: {} hits, {} misses, {} evictions",
        stats.hits, stats.misses, stats.evictions
    );
}
