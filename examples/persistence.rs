//! Persistence: fit a corpus model once, save it to a fingerprint-addressed on-disk
//! store, and show that a "restarted" process warm-starts from disk — reloading the
//! model in milliseconds instead of re-paying the EM fit, with bit-identical output.
//!
//! Run with `cargo run --release --example persistence`.

use gem::core::{FeatureSet, GemColumn, GemConfig, MethodRegistry};
use gem::serve::{CachePolicy, EmbedService, ServeRequest, ServedFrom};
use gem::store::{model_key, ModelStore};
use std::sync::Arc;
use std::time::Instant;

fn corpus() -> Vec<GemColumn> {
    // A synthetic data lake: 120 columns from four semantic families.
    let mut columns = Vec::new();
    for s in 0..30 {
        columns.push(GemColumn::new(
            (0..80).map(|i| 18.0 + ((i * 7 + s) % 60) as f64).collect(),
            format!("age_{s}"),
        ));
        columns.push(GemColumn::new(
            (0..80)
                .map(|i| 9_000.0 + 410.0 * ((i * 3 + s) % 70) as f64)
                .collect(),
            format!("price_{s}"),
        ));
        columns.push(GemColumn::new(
            (0..80).map(|i| 1.0 + ((i * 11 + s) % 100) as f64).collect(),
            format!("rank_{s}"),
        ));
        columns.push(GemColumn::new(
            (0..80).map(|i| 1950.0 + ((i + s) % 74) as f64).collect(),
            format!("year_{s}"),
        ));
    }
    columns
}

fn main() {
    let dir = std::env::temp_dir().join(format!("gem-persistence-example-{}", std::process::id()));
    let store = Arc::new(ModelStore::open(&dir).expect("store directory"));
    let config = GemConfig::fast();
    let corpus = Arc::new(corpus());
    let key = model_key(&corpus, &config, FeatureSet::ds());
    println!(
        "Model store at {} — fingerprint {key}\n",
        store.dir().display()
    );

    // ---- Incarnation 1: fit cold, then spill to disk. -----------------------------
    let cold_matrix;
    {
        let mut service = EmbedService::with_policy(
            MethodRegistry::with_gem(&config),
            CachePolicy::with_capacity(1),
        )
        .with_store(Arc::clone(&store));
        service.register_gem_family(&config);

        let start = Instant::now();
        let cold = service
            .serve_one(ServeRequest::embed_corpus("Gem (D+S)", Arc::clone(&corpus)))
            .expect("corpus embeds");
        let cold_s = start.elapsed().as_secs_f64();
        let cold_from = cold.served_from();
        cold_matrix = cold.into_matrix().expect("embedded response");
        println!(
            "cold fit:        {:>8.2} ms  (served_from: {:?})",
            cold_s * 1e3,
            cold_from
        );

        // Serving a second pipeline overflows the capacity-1 cache; the D+S model
        // spills to the store instead of being lost.
        service
            .serve_one(ServeRequest::embed_corpus("Gem", Arc::clone(&corpus)))
            .expect("corpus embeds");
        let stats = service.cache_stats();
        println!(
            "after overflow:  spills={} evictions={}  (on disk: {} snapshots, {} bytes)",
            stats.spills,
            stats.evictions,
            store.stats().map(|s| s.entries).unwrap_or(0),
            store.stats().map(|s| s.total_bytes).unwrap_or(0),
        );
    } // service dropped: every in-memory model is gone, as after a process exit.

    // ---- Incarnation 2: a fresh service over the same directory. ------------------
    let mut restarted =
        EmbedService::new(MethodRegistry::with_gem(&config), 8).with_store(Arc::clone(&store));
    restarted.register_gem_family(&config);

    let start = Instant::now();
    let warm = restarted
        .serve_one(ServeRequest::embed_corpus("Gem (D+S)", Arc::clone(&corpus)))
        .expect("corpus embeds");
    let warm_s = start.elapsed().as_secs_f64();
    let warm_from = warm.served_from();
    let warm_matrix = warm.into_matrix().expect("embedded response");
    println!(
        "\nwarm start:      {:>8.2} ms  (served_from: {:?})",
        warm_s * 1e3,
        warm_from
    );
    assert_eq!(warm_from, Some(ServedFrom::DiskStore));
    assert_eq!(
        warm_matrix, cold_matrix,
        "a reloaded model must transform bit-identically"
    );
    println!("restart survived: warm-start output is bit-identical to the cold fit");

    // Subsequent requests hit the (now warm) memory tier.
    let again = restarted
        .serve_one(ServeRequest::embed_corpus("Gem (D+S)", Arc::clone(&corpus)))
        .expect("corpus embeds");
    println!("next request:    served_from: {:?}", again.served_from());

    if std::env::var_os("GEM_PERSISTENCE_KEEP").is_some() {
        println!(
            "\nstore kept — inspect it with:\n  cargo run -p gem-store --release --bin store -- list {}",
            dir.display()
        );
    } else {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
