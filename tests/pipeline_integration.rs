//! Cross-crate integration tests: corpus generation → Gem embedding → retrieval evaluation,
//! exercising the same path the Table 2 / Table 3 experiment binaries use.

use gem::baselines::{ColumnEmbedder, KsEncoder, PiecewiseLinearEncoder, SquashingGmm};
use gem::core::{FeatureSet, GemColumn, GemConfig, GemEmbedder};
use gem::data::{gds, gittables, sato_tables, wdc, CorpusConfig, Dataset, Granularity};
use gem::eval::evaluate_retrieval;
use gem::gmm::GmmConfig;

fn tiny_config(seed: u64) -> CorpusConfig {
    CorpusConfig {
        scale: 0.03,
        min_values: 30,
        max_values: 60,
        seed,
    }
}

fn to_columns(dataset: &Dataset, with_headers: bool) -> Vec<GemColumn> {
    dataset
        .columns
        .iter()
        .map(|c| {
            if with_headers {
                GemColumn::new(c.values.clone(), c.header.clone())
            } else {
                GemColumn::values_only(c.values.clone())
            }
        })
        .collect()
}

fn fast_gem() -> GemEmbedder {
    GemEmbedder::new(GemConfig {
        gmm: GmmConfig::with_components(24).restarts(2).with_seed(7),
        ..GemConfig::default()
    })
}

#[test]
fn gem_embeds_every_corpus_and_beats_chance() {
    for dataset in [
        gds(&tiny_config(1)),
        wdc(&tiny_config(2)),
        sato_tables(&tiny_config(3)),
        gittables(&tiny_config(4)),
    ] {
        let columns = to_columns(&dataset, false);
        let embedding = fast_gem()
            .embed(&columns, FeatureSet::ds())
            .expect("embedding succeeds");
        assert_eq!(embedding.n_columns(), dataset.n_columns());
        assert!(embedding.matrix.all_finite());
        let scores = evaluate_retrieval(&embedding.matrix, &Granularity::Coarse.labels(&dataset));
        // Chance level for a corpus with C clusters of roughly equal size is ~1/C; require a
        // clear margin above it.
        let chance = 1.0 / dataset.n_coarse_clusters() as f64;
        assert!(
            scores.average_precision > chance * 1.5,
            "{}: precision {} vs chance {}",
            dataset.name,
            scores.average_precision,
            chance
        );
    }
}

#[test]
fn gem_numeric_only_outperforms_weak_baselines_on_sato_like_corpus() {
    // The headline Table 2 shape: Gem (D+S) ahead of PLE and the KS statistic.
    let dataset = sato_tables(&CorpusConfig {
        scale: 0.06,
        min_values: 40,
        max_values: 80,
        seed: 11,
    });
    let columns = to_columns(&dataset, false);
    let labels = Granularity::Coarse.labels(&dataset);

    let gem_precision = {
        let embedding = fast_gem().embed(&columns, FeatureSet::ds()).unwrap();
        evaluate_retrieval(&embedding.matrix, &labels).average_precision
    };
    let ple_precision = {
        let embedding = PiecewiseLinearEncoder::new(10)
            .embed_columns(&columns)
            .unwrap();
        evaluate_retrieval(&embedding, &labels).average_precision
    };
    let ks_precision = {
        let embedding = KsEncoder.embed_columns(&columns).unwrap();
        evaluate_retrieval(&embedding, &labels).average_precision
    };
    assert!(
        gem_precision > ks_precision,
        "Gem {gem_precision} should beat KS {ks_precision}"
    );
    // PLE is a strong location-based encoder on clean synthetic corpora, so only require
    // Gem to stay in the same band rather than strictly ahead on this small sample; the
    // corpus-level comparison is reported by the Table 2 bench binary. The band matches
    // the Squashing_GMM comparison below.
    assert!(
        gem_precision > ple_precision - 0.25,
        "Gem {gem_precision} should not trail PLE {ple_precision} by a wide margin"
    );
}

#[test]
fn adding_headers_improves_precision_on_gds_like_corpus() {
    // The Table 3 / Figure 3 shape: D+S+C > D+S on GDS, where headers are informative.
    let dataset = gds(&CorpusConfig {
        scale: 0.04,
        min_values: 30,
        max_values: 60,
        seed: 17,
    });
    let columns = to_columns(&dataset, true);
    let labels = Granularity::Fine.labels(&dataset);
    let embedder = fast_gem();
    let ds = embedder.embed(&columns, FeatureSet::ds()).unwrap();
    let dsc = embedder.embed(&columns, FeatureSet::dsc()).unwrap();
    let p_ds = evaluate_retrieval(&ds.matrix, &labels).average_precision;
    let p_dsc = evaluate_retrieval(&dsc.matrix, &labels).average_precision;
    assert!(
        p_dsc > p_ds,
        "headers should help on GDS-like data: D+S {p_ds}, D+S+C {p_dsc}"
    );
}

#[test]
fn headers_only_is_weaker_on_wdc_than_gds() {
    // The paper's observation 1 for Table 3: ambiguous WDC headers make the headers-only
    // setting much weaker than on GDS.
    let config_template = |seed| CorpusConfig {
        scale: 0.05,
        min_values: 30,
        max_values: 60,
        seed,
    };
    let gds_corpus = gds(&config_template(19));
    let wdc_corpus = wdc(&config_template(23));
    let embedder = fast_gem();
    let score = |dataset: &Dataset| {
        let columns = to_columns(dataset, true);
        let embedding = embedder.embed(&columns, FeatureSet::c()).unwrap();
        evaluate_retrieval(&embedding.matrix, &Granularity::Fine.labels(dataset)).average_precision
    };
    let gds_score = score(&gds_corpus);
    let wdc_score = score(&wdc_corpus);
    assert!(
        gds_score > wdc_score,
        "headers-only should be easier on GDS ({gds_score}) than WDC ({wdc_score})"
    );
}

#[test]
fn squashing_gmm_is_a_competitive_but_weaker_numeric_baseline() {
    let dataset = gittables(&CorpusConfig {
        scale: 0.1,
        min_values: 40,
        max_values: 80,
        seed: 29,
    });
    let columns = to_columns(&dataset, false);
    let labels = Granularity::Coarse.labels(&dataset);
    let gem_precision = {
        let embedding = fast_gem().embed(&columns, FeatureSet::ds()).unwrap();
        evaluate_retrieval(&embedding.matrix, &labels).average_precision
    };
    let squashing_precision = {
        let embedding = SquashingGmm::new(10).embed_columns(&columns).unwrap();
        evaluate_retrieval(&embedding, &labels).average_precision
    };
    // Both methods must be well above chance. On this synthetic GitTables-like corpus the
    // semantic types are separated mainly by scale, which favours the log-squashed baseline,
    // so Gem is only required to stay in the same band here (the paper-level comparison is
    // produced by the Table 2 bench binary and discussed in EXPERIMENTS.md).
    let chance = 1.0 / dataset.n_coarse_clusters() as f64;
    assert!(squashing_precision > 2.0 * chance);
    assert!(gem_precision > 2.0 * chance);
    assert!(
        gem_precision > squashing_precision - 0.25,
        "Gem {gem_precision} should not trail Squashing_GMM {squashing_precision} by a wide margin"
    );
}
