//! The fit/transform contract, asserted as properties over the four corpus simulators:
//!
//! 1. `GemModel::fit` + `transform` reproduces the one-shot `GemEmbedder::embed`
//!    **bit-for-bit** (exact `==` on every output block, not approximate equality) on all
//!    four `CorpusKind` corpora, for every feature set and composition the registry's Gem
//!    family feeds. This is what lets a serving system swap the refit-per-request path
//!    for a cached model without changing a single output bit.
//! 2. A frozen model embeds columns unseen at fit time into the corpus's embedding space.
//! 3. A fitted GMM survives a JSON round trip exactly, so cached models can be
//!    rehydrated after a restart without perturbing signatures.

use gem::core::{
    Composition, FeatureSet, GemColumn, GemConfig, GemEmbedder, GemModel, MethodRegistry,
};
use gem::data::{build_corpus, CorpusConfig, CorpusKind};
use gem::gmm::GmmConfig;
use gem::json::{FromJson, Json, ToJson};
use gem::serve::{EmbedService, ServeRequest};
use std::sync::Arc;

const ALL_KINDS: [CorpusKind; 4] = [
    CorpusKind::Gds,
    CorpusKind::Wdc,
    CorpusKind::SatoTables,
    CorpusKind::GitTables,
];

fn corpus_columns(kind: CorpusKind) -> Vec<GemColumn> {
    let dataset = build_corpus(
        kind,
        &CorpusConfig {
            scale: 0.02,
            min_values: 20,
            max_values: 40,
            seed: 11,
        },
    );
    dataset
        .columns
        .iter()
        .map(|c| GemColumn::new(c.values.clone(), c.header.clone()))
        .collect()
}

fn fast_config() -> GemConfig {
    GemConfig {
        gmm: GmmConfig::with_components(6).restarts(2).with_seed(7),
        text_dim: 32,
        ..GemConfig::default()
    }
}

#[test]
fn fit_then_transform_is_bit_identical_to_embed_on_all_corpora() {
    for kind in ALL_KINDS {
        let columns = corpus_columns(kind);
        let embedder = GemEmbedder::new(fast_config());
        for features in [
            FeatureSet::d(),
            FeatureSet::s(),
            FeatureSet::c(),
            FeatureSet::ds(),
            FeatureSet::cs(),
            FeatureSet::dc(),
            FeatureSet::dsc(),
        ] {
            let one_shot = embedder.embed(&columns, features).unwrap();
            let model = embedder.fit(&columns, features).unwrap();
            let transformed = model.transform(&columns).unwrap();
            let label = format!("{kind:?}/{}", features.label());
            // Exact equality — every f64 bit must match.
            assert_eq!(one_shot.matrix, transformed.matrix, "{label}: matrix");
            assert_eq!(
                one_shot.signature, transformed.signature,
                "{label}: signature"
            );
            assert_eq!(
                one_shot.value_block, transformed.value_block,
                "{label}: value block"
            );
            assert_eq!(
                one_shot.header_block, transformed.header_block,
                "{label}: header block"
            );
            assert_eq!(one_shot.gmm, transformed.gmm, "{label}: gmm");
        }
    }
}

#[test]
fn fit_then_transform_is_bit_identical_across_compositions() {
    let columns = corpus_columns(CorpusKind::Gds);
    for composition in [
        Composition::Concatenation,
        Composition::Aggregation,
        Composition::Autoencoder {
            latent_dim: 8,
            epochs: 30,
        },
    ] {
        let config = fast_config().with_composition(composition);
        let embedder = GemEmbedder::new(config);
        let one_shot = embedder.embed(&columns, FeatureSet::dsc()).unwrap();
        let model = embedder.fit(&columns, FeatureSet::dsc()).unwrap();
        let transformed = model.transform(&columns).unwrap();
        assert_eq!(
            one_shot.matrix,
            transformed.matrix,
            "{}",
            composition.label()
        );
    }
}

#[test]
fn every_gem_registry_method_matches_its_cached_model_output() {
    // The serving acceptance property: for each Gem family method the registry exposes,
    // the cache-served path (fit once, transform) produces exactly the one-shot output.
    let config = fast_config();
    let registry = MethodRegistry::with_gem(&config);
    let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 16);
    service.register_gem_family(&config);
    let columns = Arc::new(corpus_columns(CorpusKind::Wdc));
    for name in [
        "Gem",
        "Gem (D+S)",
        "SBERT (headers only)",
        "D",
        "D+S",
        "C+S",
    ] {
        let direct = registry
            .require(name)
            .unwrap()
            .embed(&columns, None)
            .unwrap();
        // Note: the first request for a name may already hit — method names that alias
        // the same (config, features) pair (e.g. "Gem (D+S)" and the ablation "D+S")
        // share one fingerprint and therefore one cached model.
        let first = service
            .serve_one(ServeRequest::embed_corpus(name, Arc::clone(&columns)))
            .unwrap();
        let warm = service
            .serve_one(ServeRequest::embed_corpus(name, Arc::clone(&columns)))
            .unwrap();
        assert!(warm.cache_hit(), "{name}");
        assert_eq!(first.into_matrix().unwrap(), direct, "{name}: first");
        assert_eq!(warm.into_matrix().unwrap(), direct, "{name}: warm");
    }
}

#[test]
fn alias_methods_share_one_cached_model() {
    // "Gem (D+S)" and the Figure 3 ablation variant "D+S" run the identical pipeline, so
    // they fingerprint to the same key and one fit serves both names.
    let config = fast_config();
    let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 4);
    service.register_gem_family(&config);
    let columns = Arc::new(corpus_columns(CorpusKind::Gds));
    let a = service
        .serve_one(ServeRequest::embed_corpus(
            "Gem (D+S)",
            Arc::clone(&columns),
        ))
        .unwrap();
    let b = service
        .serve_one(ServeRequest::embed_corpus("D+S", Arc::clone(&columns)))
        .unwrap();
    assert!(!a.cache_hit());
    assert!(b.cache_hit(), "alias name must reuse the cached model");
    assert_eq!(a.into_matrix().unwrap(), b.into_matrix().unwrap());
}

#[test]
fn frozen_models_embed_unseen_columns_on_every_corpus() {
    for kind in ALL_KINDS {
        let columns = corpus_columns(kind);
        let model = GemModel::fit(&columns, &fast_config(), FeatureSet::ds()).unwrap();
        // Columns the model never saw, including a degenerate empty one.
        let unseen = vec![
            GemColumn::new((0..35).map(|i| 7.0 + (i % 23) as f64 * 1.3).collect(), "q0"),
            GemColumn::new(
                (0..35)
                    .map(|i| 40_000.0 + (i % 17) as f64 * 900.0)
                    .collect(),
                "q1",
            ),
            GemColumn::values_only(vec![]),
        ];
        let emb = model.transform(&unseen).unwrap();
        assert_eq!(emb.n_columns(), 3, "{kind:?}");
        assert_eq!(emb.dim(), model.dim(), "{kind:?}");
        assert!(emb.matrix.all_finite(), "{kind:?}");
        // The empty column's signature falls back to the GMM prior.
        for (a, b) in emb
            .signature
            .row(2)
            .iter()
            .zip(model.gmm().unwrap().weights())
        {
            assert!((a - b).abs() < 1e-12, "{kind:?}");
        }
        // Transforming the same queries twice against the frozen model is deterministic.
        let again = model.transform(&unseen).unwrap();
        assert_eq!(emb.matrix, again.matrix, "{kind:?}");
    }
}

#[test]
fn fitted_gmm_survives_json_round_trip_inside_the_pipeline() {
    let columns = corpus_columns(CorpusKind::SatoTables);
    let model = GemModel::fit(&columns, &fast_config(), FeatureSet::d()).unwrap();
    let gmm = model.gmm().unwrap();
    let text = gmm.to_json().to_pretty_string();
    let restored = gem::gmm::UnivariateGmm::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(&restored, gmm);
    // Signatures from the rehydrated model are bit-identical.
    let probe: Vec<f64> = (0..25).map(|i| i as f64 * 3.7).collect();
    assert_eq!(
        restored.mean_responsibilities(&probe),
        gmm.mean_responsibilities(&probe)
    );
}
