//! Integration tests for the pipelined, multiplexed serving stack: out-of-order
//! correlation over a real TCP connection, single-flight coalescing of duplicate fits
//! under genuine cross-connection concurrency, and snapshot shipping (push/pull)
//! between replicas — each asserted bit-identical to the in-process serial path.

use gem::core::{FeatureSet, GemColumn, GemConfig, GemModel, MethodRegistry};
use gem::proto::{RequestBody, ResponseBody};
use gem::serve::{EmbedService, GemClient, GemServer, ServedFrom, ServerHandle};
use gem_numeric::Matrix;
use std::sync::{Arc, Barrier};

fn corpus(seed: u64, columns: usize, rows: usize) -> Vec<GemColumn> {
    (0..columns)
        .map(|c| {
            GemColumn::new(
                (0..rows)
                    .map(|i| (seed * 700 + c as u64 * 31) as f64 + (i % 13) as f64 * 1.25)
                    .collect(),
                format!("col_{seed}_{c}"),
            )
        })
        .collect()
}

fn start_server(workers: usize) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let config = GemConfig::fast();
    let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 16);
    service.register_gem_family(&config);
    let server = GemServer::bind(Arc::new(service), ("127.0.0.1", 0))
        .unwrap()
        .with_workers(workers);
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

/// The tentpole property: on ONE connection, cheap `Embed`s pipelined behind a slow
/// `Fit` are answered first (out-of-order responses), every response correlates to its
/// request id, and every embed is bit-identical to in-process `GemModel::fit` +
/// `transform`.
#[test]
fn pipelined_embeds_overtake_a_slow_fit_with_exact_correlation() {
    const N_EMBEDS: usize = 16;
    let (server, join) = start_server(4);
    let mut client = GemClient::connect(server.addr()).unwrap();

    // A small fast corpus for the embeds; its model is fitted up front (lockstep).
    let fast_corpus = corpus(1, 5, 45);
    let fast_config = GemConfig::fast();
    let fitted = client
        .fit(&fast_corpus, &fast_config, FeatureSet::ds())
        .unwrap();

    // In-process serial reference: one 1-row matrix per query.
    let local = GemModel::fit(&fast_corpus, &fast_config, FeatureSet::ds()).unwrap();
    let queries: Vec<GemColumn> = (0..N_EMBEDS)
        .map(|i| fast_corpus[i % fast_corpus.len()].clone())
        .collect();
    let reference: Vec<Matrix> = queries
        .iter()
        .map(|q| local.transform(std::slice::from_ref(q)).unwrap().matrix)
        .collect();

    // The slow request: a cold fit of a much bigger corpus with a heavier
    // configuration — orders of magnitude above a single-query transform.
    let slow_corpus = corpus(2, 40, 90);
    let slow_config = GemConfig::with_components(24);

    let fit_id = client
        .send(RequestBody::Fit {
            corpus: slow_corpus,
            config: slow_config,
            features: FeatureSet::ds(),
            composition: None,
        })
        .unwrap();
    let embed_ids: Vec<u64> = queries
        .iter()
        .map(|q| {
            client
                .send(RequestBody::Embed {
                    handle: fitted.handle.to_hex(),
                    queries: vec![q.clone()],
                })
                .unwrap()
        })
        .collect();
    assert_eq!(client.pending(), N_EMBEDS + 1);

    // Collect every response in completion order.
    let mut arrival: Vec<u64> = Vec::new();
    let mut verified = [false; N_EMBEDS];
    while client.pending() > 0 {
        let reply = client.recv_any().unwrap();
        arrival.push(reply.id);
        let body = reply.outcome.unwrap();
        if reply.id == fit_id {
            assert!(matches!(body, ResponseBody::Fitted { .. }));
            continue;
        }
        let index = embed_ids
            .iter()
            .position(|id| *id == reply.id)
            .expect("every reply correlates to a request this test sent");
        let ResponseBody::Embedded { matrix, .. } = body else {
            panic!("embed answered with a non-embedded body");
        };
        assert_eq!(
            matrix, reference[index],
            "pipelined embed {index} diverged from the in-process serial path"
        );
        assert!(!verified[index], "embed {index} answered twice");
        verified[index] = true;
    }
    assert!(verified.iter().all(|v| *v));
    assert_eq!(arrival.len(), N_EMBEDS + 1);

    // Out-of-order responses: the slow fit was sent FIRST but answered LAST — every
    // cheap embed overtook it. (The fit is ~two orders of magnitude slower than the 16
    // transforms combined, and the pool has 3 workers free while one runs the fit.)
    let fit_position = arrival.iter().position(|id| *id == fit_id).unwrap();
    assert_eq!(
        fit_position, N_EMBEDS,
        "the slow fit should be answered after every pipelined embed; arrival: {arrival:?}"
    );

    server.shutdown();
    join.join().unwrap().unwrap();
    assert_eq!(server.counters().requests(), (N_EMBEDS + 2) as u64);
    assert_eq!(server.counters().protocol_errors(), 0);
    assert!(
        server.counters().workers_high_water() >= 2,
        "the pool must have actually run requests concurrently"
    );
}

/// Satellite: the same `Fit` fired from 8 threads (8 connections) pays exactly one EM
/// fit — the other seven either coalesce onto the in-flight computation or hit the
/// cache the leader populated, and the accounting is exact.
#[test]
fn duplicate_fits_from_eight_threads_pay_one_cold_fit() {
    const THREADS: usize = 8;
    let (server, join) = start_server(THREADS);
    let addr = server.addr();
    let cols = Arc::new(corpus(3, 6, 50));
    let config = GemConfig::fast();
    let barrier = Arc::new(Barrier::new(THREADS));

    let outcomes: Vec<(ServedFrom, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cols = Arc::clone(&cols);
                let config = config.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut client = GemClient::connect(addr).unwrap();
                    barrier.wait();
                    let fitted = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
                    (fitted.served_from, fitted.handle.to_hex())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Deterministic handles: all eight name the same model.
    assert!(outcomes.iter().all(|(_, h)| *h == outcomes[0].1));
    let cold = outcomes
        .iter()
        .filter(|(sf, _)| *sf == ServedFrom::ColdFit)
        .count();
    assert_eq!(
        cold, 1,
        "exactly one cold fit across {THREADS} concurrent identical fits: {outcomes:?}"
    );

    // Exact accounting: every duplicate was either a memory hit or a coalesced fit.
    let mut client = GemClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.coalesced_fits + stats.hits,
        (THREADS - 1) as u64,
        "duplicates = hits + coalesced_fits: {stats:?}"
    );

    server.shutdown();
    join.join().unwrap().unwrap();
}

/// Satellite: snapshot shipping. A model pulled from the origin and pushed to a fresh
/// server — which never sees the corpus — serves embeds bit-identical to in-process
/// `fit`+`transform`.
#[test]
fn pushed_snapshot_serves_bit_identically_on_a_fresh_server() {
    let (origin, origin_join) = start_server(2);
    let (replica, replica_join) = start_server(2);
    let cols = corpus(4, 6, 55);
    let config = GemConfig::fast();

    let mut origin_client = GemClient::connect(origin.addr()).unwrap();
    let fitted = origin_client.fit(&cols, &config, FeatureSet::ds()).unwrap();
    let pulled = origin_client.pull_model(fitted.handle).unwrap();
    assert_eq!(pulled.handle, fitted.handle);
    // The snapshot is the gem-store envelope and validates as one; it carries the
    // fitted model, not the corpus (fit once, ship everywhere).
    let (key, _) = gem::store::decode_snapshot(&pulled.snapshot, Some(fitted.handle.key()))
        .expect("pulled snapshots validate like store files");
    assert_eq!(key, fitted.handle.key());

    let mut replica_client = GemClient::connect(replica.addr()).unwrap();
    let pushed = replica_client.push_model(&pulled.snapshot).unwrap();
    assert_eq!(pushed.handle, fitted.handle);
    assert_eq!(pushed.dim, fitted.dim);

    // The replica resolves the handle without ever having fitted (or seen a corpus),
    // and its output is bit-identical to the in-process serial path.
    let queries = corpus(5, 2, 30);
    let served = replica_client.embed(fitted.handle, &queries).unwrap();
    assert_ne!(served.served_from, ServedFrom::ColdFit);
    let direct = GemModel::fit(&cols, &config, FeatureSet::ds())
        .unwrap()
        .transform(&queries)
        .unwrap();
    assert_eq!(served.matrix, direct.matrix);

    // The replica's model arrived as an artifact: no miss, no cold fit ever happened
    // there (a Fit request would have counted a lookup).
    let stats = replica_client.stats().unwrap();
    assert_eq!(stats.misses, 0, "the replica never fitted: {stats:?}");

    origin.shutdown();
    replica.shutdown();
    origin_join.join().unwrap().unwrap();
    replica_join.join().unwrap().unwrap();
}
