//! The unified trait contract, asserted as a property over the whole method registry:
//! **every** registered method — Gem, its variants and all eight baselines — returns
//! exactly one finite-valued embedding row per input column, on all four `CorpusKind`
//! corpora. This is the invariant the experiment binaries and every downstream consumer
//! (retrieval, clustering, serving) rely on when they iterate the registry instead of
//! hardcoding method lists.

use gem::baselines::register_baselines;
use gem::core::{GemConfig, MethodRegistry};
use gem::data::{build_corpus, CorpusConfig, CorpusKind};
use gem::gmm::GmmConfig;

fn contract_registry() -> MethodRegistry {
    // Small components / restarts keep the full sweep fast while exercising every method.
    let config = GemConfig {
        gmm: GmmConfig::with_components(6).restarts(2).with_seed(7),
        text_dim: 32,
        ..GemConfig::default()
    };
    let mut registry = MethodRegistry::new();
    register_baselines(&mut registry, 6);
    registry.register_gem_family(&config);
    registry
}

#[test]
fn registry_enumerates_gem_and_all_eight_baselines() {
    let registry = contract_registry();
    let names = registry.names();
    let baselines = [
        "Squashing_GMM",
        "Squashing_SOM",
        "PLE",
        "PAF",
        "KS statistic",
        "Pythagoras_SC",
        "Sherlock_SC",
        "Sato_SC",
    ];
    for name in baselines {
        assert!(names.contains(&name), "missing baseline {name}");
    }
    assert!(names.contains(&"Gem"), "missing Gem itself");
    assert_eq!(registry.tagged("supervised").count(), 3);
    assert_eq!(registry.tagged("numeric-only").count(), 6); // 5 baselines + Gem (D+S)
}

#[test]
fn every_method_returns_one_finite_row_per_column_on_all_four_corpora() {
    let registry = contract_registry();
    let corpus_config = CorpusConfig {
        scale: 0.02,
        min_values: 20,
        max_values: 40,
        seed: 5,
    };
    for kind in [
        CorpusKind::Gds,
        CorpusKind::Wdc,
        CorpusKind::SatoTables,
        CorpusKind::GitTables,
    ] {
        let dataset = build_corpus(kind, &corpus_config);
        let columns: Vec<gem::core::GemColumn> = dataset
            .columns
            .iter()
            .map(|c| gem::core::GemColumn::new(c.values.clone(), c.header.clone()))
            .collect();
        let coarse = dataset.coarse_labels();
        assert!(!columns.is_empty(), "{kind:?} generated no columns");

        for entry in registry.iter() {
            let method = entry.method();
            let embedding = method
                .embed(&columns, Some(&coarse))
                .unwrap_or_else(|e| panic!("{} failed on {kind:?}: {e}", entry.name()));
            assert_eq!(
                embedding.rows(),
                columns.len(),
                "{} on {kind:?}: expected one row per column",
                entry.name()
            );
            assert!(
                embedding.cols() > 0,
                "{} on {kind:?}: embedding has zero width",
                entry.name()
            );
            assert!(
                embedding.all_finite(),
                "{} on {kind:?}: embedding contains non-finite values",
                entry.name()
            );
        }
    }
}
