//! The persistence contract, asserted as properties over the four corpus simulators:
//!
//! 1. A fitted `GemModel` saved to a `ModelStore` and reloaded (as a fresh process
//!    would) produces **bit-identical** `transform` output — exact `==` on every block,
//!    for every feature set the registry's Gem family feeds, every composition, and all
//!    four `CorpusKind` corpora. This is what lets a serving fleet restart without
//!    re-paying a single EM fit (mirrors tests/model_transform.rs for the fit/transform
//!    seam).
//! 2. Every fitted component round-trips exactly on its own (scaler, autoencoder, text
//!    embedder, config) — the envelope is only as good as its parts.
//! 3. Corrupt snapshots and foreign format versions fail **at load time** with a
//!    descriptive error, never at serve time with wrong numbers.
//! 4. The serving cache's two tiers compose: evictions spill to disk, fresh caches
//!    warm-start from disk, and the warm-started model is bit-identical.

use gem::core::{
    Composition, FeatureSet, GemColumn, GemConfig, GemModel, MethodRegistry,
    GEM_MODEL_SCHEMA_VERSION,
};
use gem::data::{build_corpus, CorpusConfig, CorpusKind};
use gem::gmm::GmmConfig;
use gem::json::{FromJson, Json, ToJson};
use gem::serve::{CachePolicy, EmbedService, ModelCache, ServeRequest, ServedFrom};
use gem::store::{model_key, GcPolicy, ModelStore, StoreError, STORE_FORMAT_MIN_VERSION};
use std::path::PathBuf;
use std::sync::Arc;

const ALL_KINDS: [CorpusKind; 4] = [
    CorpusKind::Gds,
    CorpusKind::Wdc,
    CorpusKind::SatoTables,
    CorpusKind::GitTables,
];

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "gem-persistence-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn corpus_columns(kind: CorpusKind) -> Vec<GemColumn> {
    let dataset = build_corpus(
        kind,
        &CorpusConfig {
            scale: 0.02,
            min_values: 20,
            max_values: 40,
            seed: 11,
        },
    );
    dataset
        .columns
        .iter()
        .map(|c| GemColumn::new(c.values.clone(), c.header.clone()))
        .collect()
}

fn fast_config() -> GemConfig {
    GemConfig {
        gmm: GmmConfig::with_components(6).restarts(2).with_seed(7),
        text_dim: 32,
        ..GemConfig::default()
    }
}

fn unseen_queries() -> Vec<GemColumn> {
    vec![
        GemColumn::new((0..35).map(|i| 7.0 + (i % 23) as f64 * 1.3).collect(), "q0"),
        GemColumn::new(
            (0..35)
                .map(|i| 40_000.0 + (i % 17) as f64 * 900.0)
                .collect(),
            "q1",
        ),
        GemColumn::values_only(vec![]),
    ]
}

fn assert_bit_identical(a: &GemModel, b: &GemModel, columns: &[GemColumn], label: &str) {
    for input in [columns, &unseen_queries()[..]] {
        let x = a.transform(input).unwrap();
        let y = b.transform(input).unwrap();
        assert_eq!(x.matrix, y.matrix, "{label}: matrix");
        assert_eq!(x.signature, y.signature, "{label}: signature");
        assert_eq!(x.value_block, y.value_block, "{label}: value block");
        assert_eq!(x.header_block, y.header_block, "{label}: header block");
    }
    assert_eq!(a.dim(), b.dim(), "{label}: dim");
    assert_eq!(a.config(), b.config(), "{label}: config");
    assert_eq!(a.features(), b.features(), "{label}: features");
    assert_eq!(
        a.n_fit_columns(),
        b.n_fit_columns(),
        "{label}: n_fit_columns"
    );
}

#[test]
fn saved_models_transform_bit_identically_on_all_corpora_and_feature_sets() {
    let tmp = TempDir::new("all-corpora");
    let store = ModelStore::open(&tmp.0).unwrap();
    let config = fast_config();
    for kind in ALL_KINDS {
        let columns = corpus_columns(kind);
        for features in [
            FeatureSet::d(),
            FeatureSet::s(),
            FeatureSet::c(),
            FeatureSet::ds(),
            FeatureSet::cs(),
            FeatureSet::dc(),
            FeatureSet::dsc(),
        ] {
            let label = format!("{kind:?}/{}", features.label());
            let model = GemModel::fit(&columns, &config, features).unwrap();
            let key = model_key(&columns, &config, features);
            store.save(key, &model).unwrap();
            // Reload as a fresh process would: nothing shared with `model` but the file.
            let loaded = store.load(key).unwrap().unwrap();
            assert_bit_identical(&model, &loaded, &columns, &label);
        }
    }
    // Every (corpus, feature set) pair filed under its own key.
    assert_eq!(store.stats().unwrap().entries, 4 * 7);
}

#[test]
fn saved_models_transform_bit_identically_across_compositions() {
    let tmp = TempDir::new("compositions");
    let store = ModelStore::open(&tmp.0).unwrap();
    let columns = corpus_columns(CorpusKind::Gds);
    for composition in [
        Composition::Concatenation,
        Composition::Aggregation,
        Composition::Autoencoder {
            latent_dim: 8,
            epochs: 30,
        },
    ] {
        let config = fast_config().with_composition(composition);
        let model = GemModel::fit(&columns, &config, FeatureSet::dsc()).unwrap();
        let key = model_key(&columns, &config, FeatureSet::dsc());
        store.save(key, &model).unwrap();
        let loaded = store.load(key).unwrap().unwrap();
        assert_bit_identical(&model, &loaded, &columns, composition.label());
    }
}

#[test]
fn json_envelope_survives_text_round_trip_not_just_value_round_trip() {
    // Serialise → print → parse → deserialise, the exact path a file on disk takes.
    let columns = corpus_columns(CorpusKind::Wdc);
    let config = fast_config().with_composition(Composition::Autoencoder {
        latent_dim: 6,
        epochs: 20,
    });
    let model = GemModel::fit(&columns, &config, FeatureSet::dsc()).unwrap();
    for text in [
        model.to_json().to_compact_string(),
        model.to_json().to_pretty_string(),
    ] {
        let loaded = GemModel::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_bit_identical(&model, &loaded, &columns, "text round trip");
    }
}

#[test]
fn corrupt_files_and_version_mismatches_fail_at_load_time() {
    let tmp = TempDir::new("corruption");
    let store = ModelStore::open(&tmp.0).unwrap();
    let columns = corpus_columns(CorpusKind::SatoTables);
    let config = fast_config();
    let model = GemModel::fit(&columns, &config, FeatureSet::ds()).unwrap();
    let key = model_key(&columns, &config, FeatureSet::ds());
    let path = store.save(key, &model).unwrap();
    let pristine = std::fs::read_to_string(&path).unwrap();

    // Truncation, garbage, and flipped weight encodings are all Corrupt.
    for bad in [
        &pristine[..pristine.len() / 3],
        "not json at all",
        &pristine.replace("\"weights\"", "\"wights\""),
    ] {
        std::fs::write(&path, bad).unwrap();
        assert!(
            matches!(store.load(key), Err(StoreError::Corrupt { .. })),
            "should reject: {}",
            &bad[..bad.len().min(40)]
        );
    }

    // A foreign store format version is reported as a version mismatch. Plain saves
    // (no lineage) are written at the oldest expressible version.
    let version_needle = format!("\"format_version\":{STORE_FORMAT_MIN_VERSION}");
    assert!(
        pristine.contains(&version_needle),
        "snapshot header changed shape"
    );
    std::fs::write(
        &path,
        pristine.replace(&version_needle, "\"format_version\":999"),
    )
    .unwrap();
    assert!(matches!(
        store.load(key),
        Err(StoreError::VersionMismatch { found: 999, .. })
    ));

    // A foreign *model schema* version inside a valid envelope is also rejected.
    std::fs::write(
        &path,
        pristine.replace(
            &format!("\"schema_version\":{GEM_MODEL_SCHEMA_VERSION}"),
            "\"schema_version\":999",
        ),
    )
    .unwrap();
    match store.load(key) {
        Err(StoreError::Corrupt { reason, .. }) => {
            assert!(reason.contains("schema version"), "{reason}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // Restoring the pristine bytes restores loadability — the checks above were about
    // the data, not some hidden state.
    std::fs::write(&path, &pristine).unwrap();
    let loaded = store.load(key).unwrap().unwrap();
    assert_bit_identical(&model, &loaded, &columns, "pristine after tampering");
}

#[test]
fn cache_spill_and_warm_start_survive_a_simulated_restart() {
    let tmp = TempDir::new("restart");
    let columns = Arc::new(corpus_columns(CorpusKind::Gds));
    let config = fast_config();
    let key = model_key(&columns, &config, FeatureSet::ds());

    // Incarnation 1: capacity-1 cache; fitting a second model spills the first.
    let reference = {
        let store = Arc::new(ModelStore::open(&tmp.0).unwrap());
        let mut cache = ModelCache::new(1).with_store(store);
        let (model, _) = cache
            .get_or_fit(&columns, &config, FeatureSet::ds())
            .unwrap();
        cache
            .get_or_fit(&columns, &config, FeatureSet::dsc())
            .unwrap();
        assert_eq!(cache.stats().spills, 1);
        model.transform(&columns).unwrap().matrix
    };

    // Incarnation 2: everything in-memory is gone; only the directory remains.
    let store = Arc::new(ModelStore::open(&tmp.0).unwrap());
    assert!(store.contains(key));
    let mut cache = ModelCache::new(4).with_store(store);
    let (model, avoided_fit) = cache
        .get_or_fit(&columns, &config, FeatureSet::ds())
        .unwrap();
    assert!(avoided_fit, "restart must warm-start, not re-fit");
    assert_eq!(cache.stats().warm_starts, 1);
    assert_eq!(cache.stats().misses, 0);
    assert_eq!(model.transform(&columns).unwrap().matrix, reference);
}

#[test]
fn embed_service_round_trips_through_the_store_for_every_gem_variant() {
    let tmp = TempDir::new("service");
    let store = Arc::new(ModelStore::open(&tmp.0).unwrap());
    let config = fast_config();
    let columns = Arc::new(corpus_columns(CorpusKind::Wdc));

    // Incarnation 1: serve (and therefore fit) a few variants with a tiny cache so
    // everything but the last model ends up spilled.
    let names = ["Gem", "Gem (D+S)", "D", "C+S"];
    let mut reference = Vec::new();
    {
        let mut service = EmbedService::with_policy(
            MethodRegistry::with_gem(&config),
            CachePolicy::with_capacity(1),
        )
        .with_store(Arc::clone(&store));
        service.register_gem_family(&config);
        for name in names {
            let response = service
                .serve_one(ServeRequest::embed_corpus(name, Arc::clone(&columns)))
                .unwrap();
            reference.push(response.into_matrix().unwrap());
        }
        // Overflow once more so the final resident model also spills.
        service
            .serve_one(ServeRequest::embed_corpus("S", Arc::clone(&columns)))
            .unwrap();
    }

    // Incarnation 2: every variant warm-starts from disk with bit-identical output.
    let mut service =
        EmbedService::new(MethodRegistry::with_gem(&config), 8).with_store(Arc::clone(&store));
    service.register_gem_family(&config);
    for (name, expected) in names.iter().zip(&reference) {
        let response = service
            .serve_one(ServeRequest::embed_corpus(*name, Arc::clone(&columns)))
            .unwrap();
        assert_eq!(
            response.served_from(),
            Some(ServedFrom::DiskStore),
            "{name} should warm-start"
        );
        assert_eq!(&response.into_matrix().unwrap(), expected, "{name}");
    }
    assert_eq!(service.cache_stats().warm_starts as usize, names.len());
}

#[test]
fn store_gc_and_stats_operate_across_persisted_models() {
    let tmp = TempDir::new("gc");
    let store = ModelStore::open(&tmp.0).unwrap();
    let config = fast_config();
    for kind in ALL_KINDS {
        let columns = corpus_columns(kind);
        let model = GemModel::fit(&columns, &config, FeatureSet::ds()).unwrap();
        store
            .save(model_key(&columns, &config, FeatureSet::ds()), &model)
            .unwrap();
    }
    let stats = store.stats().unwrap();
    assert_eq!(stats.entries, 4);
    assert!(stats.total_bytes > 0);
    // gc_plan previews without deleting; gc enforces.
    let plan = store
        .gc_plan(&GcPolicy {
            max_entries: Some(2),
            ..GcPolicy::default()
        })
        .unwrap();
    assert_eq!(plan.len(), 2);
    assert_eq!(store.stats().unwrap().entries, 4, "plan must not delete");
    let removed = store
        .gc(&GcPolicy {
            max_entries: Some(2),
            ..GcPolicy::default()
        })
        .unwrap();
    assert_eq!(removed.len(), 2);
    assert_eq!(store.stats().unwrap().entries, 2);
    // The survivors still load and transform.
    for entry in store.list().unwrap() {
        assert!(store.load(entry.key).unwrap().is_some());
    }
}
