//! Cross-crate integration tests for the downstream clustering pipeline (the Table 4 path):
//! corpus → Gem embeddings → SDCN / TableDC → ARI / ACC.

use gem::cluster::{DeepClustering, Sdcn, TableDc};
use gem::core::{FeatureSet, GemColumn, GemConfig, GemEmbedder};
use gem::data::{gds, CorpusConfig, Granularity};
use gem::eval::{adjusted_rand_index, clustering_accuracy};
use gem::gmm::GmmConfig;

fn corpus_and_embeddings() -> (Vec<usize>, usize, gem::numeric::Matrix) {
    let dataset = gds(&CorpusConfig {
        scale: 0.03,
        min_values: 30,
        max_values: 60,
        seed: 37,
    });
    let columns: Vec<GemColumn> = dataset
        .columns
        .iter()
        .map(|c| GemColumn::new(c.values.clone(), c.header.clone()))
        .collect();
    let embedding = GemEmbedder::new(GemConfig {
        gmm: GmmConfig::with_components(8).restarts(2).with_seed(3),
        ..GemConfig::default()
    })
    .embed(&columns, FeatureSet::dsc())
    .expect("gem embedding");
    let truth = Granularity::Fine.label_indices(&dataset);
    let k = Granularity::Fine.n_clusters(&dataset);
    (truth, k, embedding.matrix)
}

#[test]
fn tabledc_clusters_gem_embeddings_better_than_random() {
    let (truth, k, embeddings) = corpus_and_embeddings();
    let labels = TableDc::fast(k).cluster(&embeddings);
    assert_eq!(labels.len(), truth.len());
    let ari = adjusted_rand_index(&labels, &truth);
    let acc = clustering_accuracy(&labels, &truth);
    assert!(
        ari > 0.05,
        "TableDC ARI {ari} should be clearly above random"
    );
    assert!(acc > 1.5 / k as f64, "TableDC ACC {acc} should beat chance");
}

#[test]
fn sdcn_clusters_gem_embeddings_better_than_random() {
    let (truth, k, embeddings) = corpus_and_embeddings();
    let labels = Sdcn::fast(k).cluster(&embeddings);
    assert_eq!(labels.len(), truth.len());
    let ari = adjusted_rand_index(&labels, &truth);
    assert!(ari > 0.05, "SDCN ARI {ari} should be clearly above random");
}

#[test]
fn headers_plus_values_cluster_better_than_values_only_on_gds() {
    // Table 4's key comparison for Gem embeddings on GDS.
    let dataset = gds(&CorpusConfig {
        scale: 0.03,
        min_values: 30,
        max_values: 60,
        seed: 41,
    });
    let truth = Granularity::Fine.label_indices(&dataset);
    let k = Granularity::Fine.n_clusters(&dataset);
    let columns: Vec<GemColumn> = dataset
        .columns
        .iter()
        .map(|c| GemColumn::new(c.values.clone(), c.header.clone()))
        .collect();
    let embedder = GemEmbedder::new(GemConfig {
        gmm: GmmConfig::with_components(8).restarts(2).with_seed(3),
        ..GemConfig::default()
    });
    let values_only = embedder.embed(&columns, FeatureSet::ds()).unwrap().matrix;
    let with_headers = embedder.embed(&columns, FeatureSet::dsc()).unwrap().matrix;
    let ari_values = adjusted_rand_index(&TableDc::fast(k).cluster(&values_only), &truth);
    let ari_full = adjusted_rand_index(&TableDc::fast(k).cluster(&with_headers), &truth);
    assert!(
        ari_full > ari_values,
        "headers+values ARI {ari_full} should exceed values-only ARI {ari_values}"
    );
}
