//! Property-based tests (proptest) over the core invariants of the Gem pipeline and its
//! substrates, using randomly generated columns rather than hand-picked fixtures.

use gem::core::{FeatureSet, GemColumn, GemConfig, GemEmbedder};
use gem::eval::{adjusted_rand_index, clustering_accuracy};
use gem::gmm::{GmmConfig, UnivariateGmm};
use gem::numeric::standardize::l1_normalize;
use gem::numeric::stats::ColumnStats;
use gem::numeric::{cosine_similarity, Matrix};
use gem::text::{HashEmbedder, TextEmbedder};
use proptest::prelude::*;

fn finite_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6f64..1.0e6, 3..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gmm_responsibilities_always_sum_to_one(values in finite_values(120), query in -1.0e6f64..1.0e6) {
        let config = GmmConfig::with_components(4).restarts(1).with_seed(1).with_max_iterations(30);
        let gmm = UnivariateGmm::fit(&values, &config).unwrap();
        let resp = gmm.responsibilities(query);
        let sum: f64 = resp.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!(resp.iter().all(|&r| (0.0..=1.0 + 1e-9).contains(&r)));
        // Weights always form a simplex.
        let wsum: f64 = gmm.weights().iter().sum();
        prop_assert!((wsum - 1.0).abs() < 1e-6);
        prop_assert!(gmm.variances().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn column_stats_respect_order_invariants(values in finite_values(80)) {
        let stats = ColumnStats::compute(&values).unwrap();
        prop_assert!(stats.min <= stats.percentile_10 + 1e-9);
        prop_assert!(stats.percentile_10 <= stats.median + 1e-9);
        prop_assert!(stats.median <= stats.percentile_90 + 1e-9);
        prop_assert!(stats.percentile_90 <= stats.max + 1e-9);
        prop_assert!((stats.range - (stats.max - stats.min)).abs() < 1e-9);
        prop_assert!(stats.unique_count <= stats.count);
        prop_assert!(stats.entropy >= 0.0);
    }

    #[test]
    fn l1_normalization_produces_unit_l1_norm(values in finite_values(60)) {
        let normalized = l1_normalize(&values);
        let norm: f64 = normalized.iter().map(|v| v.abs()).sum();
        // Either the input was (numerically) all zeros, or the output has unit L1 norm.
        let input_norm: f64 = values.iter().map(|v| v.abs()).sum();
        if input_norm > 1e-300 {
            prop_assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cosine_similarity_is_symmetric_and_bounded(
        a in prop::collection::vec(-100.0f64..100.0, 8),
        b in prop::collection::vec(-100.0f64..100.0, 8),
    ) {
        let ab = cosine_similarity(&a, &b).unwrap();
        let ba = cosine_similarity(&b, &a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ab));
        prop_assert!((cosine_similarity(&a, &a).unwrap() - 1.0).abs() < 1e-9 || a.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn text_embeddings_are_deterministic_and_normalized(header in "[a-zA-Z_ ]{1,24}") {
        let embedder = HashEmbedder::new(32);
        let a = embedder.embed(&header);
        let b = embedder.embed(&header);
        prop_assert_eq!(a.clone(), b);
        let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(norm < 1.0 + 1e-9);
    }

    #[test]
    fn clustering_metrics_are_perfect_for_identical_labelings(
        labels in prop::collection::vec(0usize..5, 4..40),
    ) {
        prop_assert!((clustering_accuracy(&labels, &labels) - 1.0).abs() < 1e-12);
        prop_assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clustering_metrics_are_label_permutation_invariant(
        labels in prop::collection::vec(0usize..4, 6..40),
    ) {
        // Relabel clusters by a fixed permutation of the ids.
        let permuted: Vec<usize> = labels.iter().map(|&l| (l + 1) % 4).collect();
        prop_assert!((clustering_accuracy(&permuted, &labels) - 1.0).abs() < 1e-12);
        prop_assert!((adjusted_rand_index(&permuted, &labels) - 1.0).abs() < 1e-9);
    }
}

proptest! {
    // The full pipeline is more expensive, so run fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn gem_embedding_rows_are_finite_and_value_block_l1_normalized(
        columns in prop::collection::vec(finite_values(50), 3..8),
    ) {
        let gem_columns: Vec<GemColumn> = columns
            .iter()
            .enumerate()
            .map(|(i, v)| GemColumn::new(v.clone(), format!("column_{i}")))
            .collect();
        let embedder = GemEmbedder::new(GemConfig::fast());
        let embedding = embedder.embed(&gem_columns, FeatureSet::dsc()).unwrap();
        prop_assert_eq!(embedding.n_columns(), gem_columns.len());
        prop_assert!(embedding.matrix.all_finite());
        for r in 0..embedding.value_block.rows() {
            let l1: f64 = embedding.value_block.row(r).iter().map(|v| v.abs()).sum();
            prop_assert!((l1 - 1.0).abs() < 1e-6, "row {} has L1 {}", r, l1);
        }
        // The signature rows are probability vectors.
        for r in 0..embedding.signature.rows() {
            let s: f64 = embedding.signature.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-6);
        }
        // Similarity matrix over the embedding stays well-formed.
        let sim = gem::numeric::similarity_matrix(&embedding.matrix);
        prop_assert_eq!(sim.shape(), (gem_columns.len(), gem_columns.len()));
        prop_assert!(sim.all_finite());
        let _ = Matrix::zeros(1, 1);
    }
}
