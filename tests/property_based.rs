//! Property-based tests over the core invariants of the Gem pipeline and its substrates,
//! using randomly generated columns rather than hand-picked fixtures.
//!
//! The generator is the workspace's deterministic `gem-rand` (crates.io `proptest` is not
//! available offline): every case derives from a fixed seed, so failures are exactly
//! reproducible; the case index is printed in every assertion message.

use gem::core::{FeatureSet, GemColumn, GemConfig, GemEmbedder};
use gem::eval::{adjusted_rand_index, clustering_accuracy};
use gem::gmm::{GmmConfig, UnivariateGmm};
use gem::numeric::standardize::l1_normalize;
use gem::numeric::stats::ColumnStats;
use gem::numeric::{cosine_similarity, similarity_matrix};
use gem_rand::prelude::*;

fn finite_values(rng: &mut StdRng, max_len: usize) -> Vec<f64> {
    let len = rng.gen_range(3..max_len.max(4));
    (0..len).map(|_| rng.gen_range(-1.0e6..1.0e6)).collect()
}

#[test]
fn gmm_responsibilities_always_sum_to_one() {
    let mut rng = StdRng::seed_from_u64(101);
    for case in 0..24 {
        let values = finite_values(&mut rng, 120);
        let query = rng.gen_range(-1.0e6..1.0e6);
        let config = GmmConfig::with_components(4)
            .restarts(1)
            .with_seed(1)
            .with_max_iterations(30);
        let gmm = UnivariateGmm::fit(&values, &config).unwrap();
        let resp = gmm.responsibilities(query);
        let sum: f64 = resp.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "case {case}: sum {sum}");
        assert!(
            resp.iter().all(|&r| (0.0..=1.0 + 1e-9).contains(&r)),
            "case {case}"
        );
        // Weights always form a simplex.
        let wsum: f64 = gmm.weights().iter().sum();
        assert!((wsum - 1.0).abs() < 1e-6, "case {case}: weight sum {wsum}");
        assert!(gmm.variances().iter().all(|&v| v > 0.0), "case {case}");
    }
}

#[test]
fn column_stats_respect_order_invariants() {
    let mut rng = StdRng::seed_from_u64(102);
    for case in 0..24 {
        let values = finite_values(&mut rng, 80);
        let stats = ColumnStats::compute(&values).unwrap();
        assert!(stats.min <= stats.percentile_10 + 1e-9, "case {case}");
        assert!(stats.percentile_10 <= stats.median + 1e-9, "case {case}");
        assert!(stats.median <= stats.percentile_90 + 1e-9, "case {case}");
        assert!(stats.percentile_90 <= stats.max + 1e-9, "case {case}");
        assert!(
            (stats.range - (stats.max - stats.min)).abs() < 1e-9,
            "case {case}"
        );
        assert!(stats.unique_count <= stats.count, "case {case}");
        assert!(stats.entropy >= 0.0, "case {case}");
    }
}

#[test]
fn l1_normalization_produces_unit_l1_norm() {
    let mut rng = StdRng::seed_from_u64(103);
    for case in 0..24 {
        let values = finite_values(&mut rng, 60);
        let normalized = l1_normalize(&values);
        let norm: f64 = normalized.iter().map(|v| v.abs()).sum();
        let input_norm: f64 = values.iter().map(|v| v.abs()).sum();
        // Either the input was (numerically) all zeros, or the output has unit L1 norm.
        if input_norm > 1e-300 {
            assert!((norm - 1.0).abs() < 1e-9, "case {case}: norm {norm}");
        }
    }
}

#[test]
fn cosine_similarity_is_symmetric_and_bounded() {
    let mut rng = StdRng::seed_from_u64(104);
    for case in 0..24 {
        let a: Vec<f64> = (0..8).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let b: Vec<f64> = (0..8).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let ab = cosine_similarity(&a, &b).unwrap();
        let ba = cosine_similarity(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12, "case {case}");
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ab), "case {case}");
        assert!(
            (cosine_similarity(&a, &a).unwrap() - 1.0).abs() < 1e-9 || a.iter().all(|&x| x == 0.0),
            "case {case}"
        );
    }
}

#[test]
fn text_embeddings_are_deterministic_and_normalized() {
    use gem::text::{HashEmbedder, TextEmbedder};
    let mut rng = StdRng::seed_from_u64(105);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_ "
        .chars()
        .collect();
    for case in 0..24 {
        let len = rng.gen_range(1..24);
        let header: String = (0..len)
            .map(|_| *alphabet.choose(&mut rng).unwrap())
            .collect();
        let embedder = HashEmbedder::new(32);
        let a = embedder.embed(&header);
        let b = embedder.embed(&header);
        assert_eq!(a, b, "case {case}: header {header:?}");
        let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm < 1.0 + 1e-9, "case {case}: header {header:?}");
    }
}

#[test]
fn clustering_metrics_are_perfect_for_identical_labelings() {
    let mut rng = StdRng::seed_from_u64(106);
    for case in 0..24 {
        let len = rng.gen_range(4..40);
        let labels: Vec<usize> = (0..len).map(|_| rng.gen_range(0..5)).collect();
        assert!(
            (clustering_accuracy(&labels, &labels) - 1.0).abs() < 1e-12,
            "case {case}"
        );
        assert!(
            (adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn clustering_metrics_are_label_permutation_invariant() {
    let mut rng = StdRng::seed_from_u64(107);
    for case in 0..24 {
        let len = rng.gen_range(6..40);
        let labels: Vec<usize> = (0..len).map(|_| rng.gen_range(0..4)).collect();
        // Relabel clusters by a fixed permutation of the ids.
        let permuted: Vec<usize> = labels.iter().map(|&l| (l + 1) % 4).collect();
        assert!(
            (clustering_accuracy(&permuted, &labels) - 1.0).abs() < 1e-12,
            "case {case}"
        );
        assert!(
            (adjusted_rand_index(&permuted, &labels) - 1.0).abs() < 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn gem_embedding_rows_are_finite_and_value_block_l1_normalized() {
    // The full pipeline is more expensive, so run fewer cases.
    let mut rng = StdRng::seed_from_u64(108);
    for case in 0..6 {
        let n_columns = rng.gen_range(3..8);
        let gem_columns: Vec<GemColumn> = (0..n_columns)
            .map(|i| GemColumn::new(finite_values(&mut rng, 50), format!("column_{i}")))
            .collect();
        let embedder = GemEmbedder::new(GemConfig::fast());
        let embedding = embedder.embed(&gem_columns, FeatureSet::dsc()).unwrap();
        assert_eq!(embedding.n_columns(), gem_columns.len(), "case {case}");
        assert!(embedding.matrix.all_finite(), "case {case}");
        for r in 0..embedding.value_block.rows() {
            let l1: f64 = embedding.value_block.row(r).iter().map(|v| v.abs()).sum();
            assert!((l1 - 1.0).abs() < 1e-6, "case {case}: row {r} has L1 {l1}");
        }
        // The signature rows are probability vectors.
        for r in 0..embedding.signature.rows() {
            let s: f64 = embedding.signature.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "case {case}: row {r} sums to {s}");
        }
        // Similarity matrix over the embedding stays well-formed.
        let sim = similarity_matrix(&embedding.matrix);
        assert_eq!(
            sim.shape(),
            (gem_columns.len(), gem_columns.len()),
            "case {case}"
        );
        assert!(sim.all_finite(), "case {case}");
    }
}
