//! Acceptance test for the sharded cluster tier: a two-replica cluster behind
//! `gem-routed`'s library core serves fit/embed **bit-identical** to the in-process
//! `GemModel::fit` + `transform` path; when the replica owning a handle is killed, the
//! handle keeps answering from the survivor via the write-through snapshot copy —
//! never a refit (the survivor's merged stats show zero cold fits after the kill) —
//! and the router's Prometheus exposition reports the dead replica.

use gem::core::{FeatureSet, GemColumn, GemConfig, GemModel, MethodRegistry};
use gem::router::{Cluster, RouterMetrics, RouterServer};
use gem::serve::client::ClientError;
use gem::serve::{EmbedService, GemClient, GemServer, ServedFrom, ServerHandle};
use gem::store::updated_model_key;
use std::sync::Arc;
use std::time::Duration;

fn corpus(seed: u64, columns: usize, rows: usize) -> Vec<GemColumn> {
    (0..columns)
        .map(|c| {
            GemColumn::new(
                (0..rows)
                    .map(|i| (seed * 700 + c as u64 * 31) as f64 + (i % 13) as f64 * 1.25)
                    .collect(),
                format!("col_{seed}_{c}"),
            )
        })
        .collect()
}

fn start_replica() -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let config = GemConfig::fast();
    let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 16);
    service.register_gem_family(&config);
    let server = GemServer::bind(Arc::new(service), ("127.0.0.1", 0))
        .unwrap()
        .with_workers(2);
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

/// Retry an operation through the router across the fail-over window: a request
/// in flight on the dying connection surfaces as the typed, retryable
/// `replica_unavailable` error; the retry re-routes to the fail-over owner. Anything
/// else is a real failure.
fn retry_through_failover<T>(
    mut op: impl FnMut() -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let mut last: Option<ClientError> = None;
    for _ in 0..50 {
        match op() {
            Ok(value) => return Ok(value),
            Err(e) if e.code() == Some("replica_unavailable") => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or(ClientError::Unexpected {
        detail: "retry loop never ran".to_string(),
    }))
}

#[test]
fn cluster_serves_bit_identical_and_fails_over_via_snapshots_never_refits() {
    let (replica_a, join_a) = start_replica();
    let (replica_b, join_b) = start_replica();
    let addr_a = replica_a.addr().to_string();
    let addr_b = replica_b.addr().to_string();

    let metrics = Arc::new(RouterMetrics::new());
    let cluster = Arc::new(Cluster::with_options(
        &[addr_a.clone(), addr_b.clone()],
        Arc::clone(&metrics),
        64,
        1,
        Duration::from_millis(100),
        Duration::from_secs(2),
    ));
    let router = RouterServer::bind(Arc::clone(&cluster), ("127.0.0.1", 0)).unwrap();
    let router_handle = router.handle();
    let router_addr = router.local_addr();
    let router_join = std::thread::spawn(move || router.run());

    // ---- Fit + embed through the router, checked against the in-process path. ----
    let mut client = GemClient::connect(router_addr).unwrap();
    let cols = corpus(7, 6, 40);
    let config = GemConfig::fast();
    let fitted = client.fit(&cols, &config, FeatureSet::ds()).unwrap();

    let local = GemModel::fit(&cols, &config, FeatureSet::ds()).unwrap();
    let queries: Vec<GemColumn> = cols.iter().take(3).cloned().collect();
    let reference = local.transform(&queries).unwrap().matrix;
    let embedded = client.embed(fitted.handle, &queries).unwrap();
    assert_eq!(
        embedded.matrix, reference,
        "embed through the router diverged from in-process fit+transform"
    );

    // A fit-update derivative, to prove placement-first routing survives fail-over
    // for handles living off their ring slot.
    let growth = corpus(8, 2, 40);
    let updated = client.fit_update(fitted.handle, &growth).unwrap();
    assert_eq!(
        updated.handle.key(),
        updated_model_key(fitted.handle.key(), &growth),
        "the router and the replica must derive the same update key"
    );
    let local_updated = local.fit_update(&growth).unwrap();
    let updated_reference = local_updated.transform(&queries).unwrap().matrix;
    let updated_embedded = client.embed(updated.handle, &queries).unwrap();
    assert_eq!(updated_embedded.matrix, updated_reference);

    // The router knew both placements without asking anyone.
    let owner = cluster
        .placement_of(&fitted.handle.to_hex())
        .expect("a tracked fit records its placement");
    assert!(owner == addr_a || owner == addr_b);
    assert_eq!(
        cluster.placement_of(&updated.handle.to_hex()).as_deref(),
        Some(owner.as_str()),
        "a derived model is created on its parent's replica"
    );

    // ---- Kill the owner. ----
    let (survivor, survivor_handle, owner_join, survivor_join) = if owner == addr_a {
        (addr_b.clone(), &replica_b, join_a, join_b)
    } else {
        (addr_a.clone(), &replica_a, join_b, join_a)
    };
    if owner == addr_a {
        replica_a.shutdown();
    } else {
        replica_b.shutdown();
    }
    owner_join.join().unwrap().unwrap();

    // Both handles keep answering — bit-identically — from the survivor, which got
    // the snapshots via write-through replication *before* the fits were confirmed.
    let after = retry_through_failover(|| client.embed(fitted.handle, &queries)).unwrap();
    assert_eq!(after.matrix, reference, "fail-over changed the embedding");
    assert_ne!(
        after.served_from,
        ServedFrom::ColdFit,
        "fail-over must serve the shipped snapshot, never refit"
    );
    let after_updated = retry_through_failover(|| client.embed(updated.handle, &queries)).unwrap();
    assert_eq!(after_updated.matrix, updated_reference);
    assert_ne!(after_updated.served_from, ServedFrom::ColdFit);

    // Post-kill routing agrees with the survivor.
    assert_eq!(
        cluster.route_handle(&fitted.handle.to_hex()).as_deref(),
        Some(survivor.as_str())
    );

    // Merged stats now cover exactly the live membership (the survivor): zero cold
    // fits — the snapshots were pushed, not refitted — and zero misses.
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.fit_micros, 0,
        "the survivor never ran a fit: {stats:?}"
    );
    assert_eq!(
        stats.misses, 0,
        "every post-kill embed was a cache hit: {stats:?}"
    );
    assert!(stats.hits >= 2, "both fail-over embeds hit: {stats:?}");

    // Merged model listing resolves both handles on the cluster.
    let models = client.list_models().unwrap();
    for handle in [fitted.handle, updated.handle] {
        assert!(
            models.iter().any(|m| m.handle == handle.to_hex()),
            "{} missing from merged listing {models:?}",
            handle.to_hex()
        );
    }

    // The Prometheus exposition reports the dead replica as state 0 and the survivor
    // as state 2.
    let text = metrics.render();
    assert!(
        text.contains(&format!("router_replica_state{{replica=\"{owner}\"}} 0")),
        "{text}"
    );
    assert!(
        text.contains(&format!("router_replica_state{{replica=\"{survivor}\"}} 2")),
        "{text}"
    );

    // Health is answered by the router itself and reflects the impaired cluster.
    let health = client.health().unwrap();
    assert_eq!(health.state.wire_name(), "degraded");

    drop(client);
    router_handle.shutdown();
    router_join.join().unwrap().unwrap();
    survivor_handle.shutdown();
    survivor_join.join().unwrap().unwrap();
}

/// Membership rebalancing: a replica added at runtime receives snapshot copies of the
/// handles it now owns — shipped, never refitted — so routing to it works immediately.
#[test]
fn added_replicas_receive_snapshots_through_rebalance() {
    let (replica_a, join_a) = start_replica();
    let (replica_b, join_b) = start_replica();
    let addr_a = replica_a.addr().to_string();
    let addr_b = replica_b.addr().to_string();

    let metrics = Arc::new(RouterMetrics::new());
    // Start with ONLY replica A in the membership.
    let cluster = Arc::new(Cluster::with_options(
        std::slice::from_ref(&addr_a),
        Arc::clone(&metrics),
        64,
        1,
        Duration::from_millis(100),
        Duration::from_secs(2),
    ));
    let router = RouterServer::bind(Arc::clone(&cluster), ("127.0.0.1", 0)).unwrap();
    let router_handle = router.handle();
    let router_addr = router.local_addr();
    let router_join = std::thread::spawn(move || router.run());

    let mut client = GemClient::connect(router_addr).unwrap();
    let cols = corpus(11, 5, 36);
    let config = GemConfig::fast();
    let fitted = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
    let queries: Vec<GemColumn> = cols.iter().take(2).cloned().collect();
    let before = client.embed(fitted.handle, &queries).unwrap();

    // Admin surface: add replica B, rebalance ships snapshots to new owners and
    // successors. With 2 members every model must exist on both afterwards.
    assert!(cluster.add_replica(&addr_b));
    let report = cluster.rebalance();
    assert!(report.failures.is_empty(), "{report:?}");
    assert!(report.examined >= 1);

    // Kill A — the original fit host. B must answer from its shipped copy.
    replica_a.shutdown();
    join_a.join().unwrap().unwrap();
    let after = retry_through_failover(|| client.embed(fitted.handle, &queries)).unwrap();
    assert_eq!(after.matrix, before.matrix);
    assert_ne!(after.served_from, ServedFrom::ColdFit);
    let stats = client.stats().unwrap();
    assert_eq!(stats.fit_micros, 0, "replica B never fitted: {stats:?}");

    drop(client);
    router_handle.shutdown();
    router_join.join().unwrap().unwrap();
    replica_b.shutdown();
    join_b.join().unwrap().unwrap();
}
