//! Tier-1 gate: the whole workspace passes `gem-lint` with zero violations.
//!
//! This is the teeth of the static-analysis pass — the six serving invariants (lock
//! discipline, no silent refits, panic-free wire, protocol-bump rule, bit-exactness,
//! dispatch seam) are enforced on every `cargo test`, not just in CI. The gate also
//! bounds the escape hatch: at most five reasoned `allow` pragmas may exist across
//! the tree, so suppressions stay exceptional and reviewed.

use gem_lint::{lint_workspace, LintConfig};
use std::path::Path;
use std::time::Instant;

fn workspace_root() -> &'static Path {
    // The umbrella crate's manifest dir *is* the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_has_zero_lint_violations() {
    let report =
        lint_workspace(workspace_root(), &LintConfig::default()).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 50,
        "the walker should see the whole workspace, saw {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "gem-lint found violations at HEAD:\n{}",
        report.to_text()
    );
}

#[test]
fn allow_pragmas_stay_exceptional() {
    let report =
        lint_workspace(workspace_root(), &LintConfig::default()).expect("workspace walk succeeds");
    assert!(
        report.allow_pragmas <= 5,
        "{} allow pragmas in the tree — the budget is 5; fix violations instead of \
         suppressing them",
        report.allow_pragmas
    );
}

#[test]
fn full_pass_stays_under_the_two_second_budget() {
    let started = Instant::now();
    let report =
        lint_workspace(workspace_root(), &LintConfig::default()).expect("workspace walk succeeds");
    let elapsed = started.elapsed();
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "lint pass took {elapsed:?} over {} files — it must stay cheap enough to run \
         on every test invocation",
        report.files_scanned
    );
}
