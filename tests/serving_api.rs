//! Integration tests for the handle-based serving API: the fit-once/embed-by-handle
//! lifecycle end to end, and `EmbedService` under genuinely concurrent mixed traffic —
//! N threads fitting, embedding and evicting the same handles — asserting that every
//! successful embed is bit-identical to the serial path and that no cache-stat count is
//! lost to a race.

use gem::core::{FeatureSet, GemColumn, GemConfig, GemModel, MethodRegistry};
use gem::serve::{model_key, EmbedService, ModelHandle, ServeRequest, ServeResponse, ServedFrom};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn corpus(seed: u64) -> Arc<Vec<GemColumn>> {
    Arc::new(
        (0..5)
            .map(|c| {
                GemColumn::new(
                    (0..45)
                        .map(|i| (seed * 500 + c * 40) as f64 + (i % 11) as f64 * 1.5)
                        .collect(),
                    format!("col_{seed}_{c}"),
                )
            })
            .collect(),
    )
}

fn queries(seed: u64) -> Vec<GemColumn> {
    vec![GemColumn::new(
        (0..30)
            .map(|i| (seed * 37) as f64 + (i % 8) as f64)
            .collect(),
        format!("query_{seed}"),
    )]
}

fn service(capacity: usize) -> EmbedService {
    let config = GemConfig::fast();
    let mut service = EmbedService::new(MethodRegistry::with_gem(&config), capacity);
    service.register_gem_family(&config);
    service
}

#[test]
fn handle_lifecycle_fit_embed_evict_refit() {
    let service = service(8);
    let config = GemConfig::fast();
    let cols = corpus(1);

    // Fit -> handle (deterministic: the fingerprint of corpus + config).
    let fitted = service
        .serve_one(ServeRequest::fit(
            Arc::clone(&cols),
            config.clone(),
            FeatureSet::ds(),
        ))
        .unwrap();
    let handle = fitted.handle().unwrap();
    assert_eq!(
        handle,
        ModelHandle::from(model_key(&cols, &config, FeatureSet::ds())),
        "the handle is the model fingerprint, not a session-local token"
    );

    // Embed by handle, bit-identical to the in-process split.
    let served = service
        .serve_one(ServeRequest::embed(handle, queries(1)))
        .unwrap();
    let direct = GemModel::fit(&cols, &config, FeatureSet::ds())
        .unwrap()
        .transform(&queries(1))
        .unwrap();
    assert_eq!(served.into_matrix().unwrap(), direct.matrix);

    // Evict -> the typed UnknownModel, with its stable code — never a silent refit.
    assert_eq!(
        service.serve_one(ServeRequest::evict(handle)).unwrap(),
        ServeResponse::Evicted { existed: true }
    );
    let err = service
        .serve_one(ServeRequest::embed(handle, queries(1)))
        .unwrap_err();
    assert_eq!(err.code(), "unknown_model");

    // Re-fit restores the *same* handle and the same bits.
    let refitted = service
        .serve_one(ServeRequest::fit(
            Arc::clone(&cols),
            config,
            FeatureSet::ds(),
        ))
        .unwrap();
    assert_eq!(refitted.handle(), Some(handle));
    let again = service
        .serve_one(ServeRequest::embed(handle, queries(1)))
        .unwrap();
    assert_eq!(again.into_matrix().unwrap(), direct.matrix);
}

#[test]
fn concurrent_mixed_fit_embed_evict_is_bit_identical_and_conserves_stats() {
    const THREADS: u64 = 8;
    const ITERATIONS: u64 = 12;
    const CORPORA: u64 = 3;

    let config = GemConfig::fast();
    // The serial reference path: one thread, fan-out disabled. Every concurrent embed
    // must reproduce these matrices bit for bit.
    let serial = service(CORPORA as usize).with_parallel(false);
    let mut reference = Vec::new();
    let mut handles = Vec::new();
    for j in 0..CORPORA {
        let handle = serial
            .serve_one(ServeRequest::fit(
                corpus(j),
                config.clone(),
                FeatureSet::ds(),
            ))
            .unwrap()
            .handle()
            .unwrap();
        handles.push(handle);
        reference.push(
            serial
                .serve_one(ServeRequest::embed(handle, queries(j)))
                .unwrap()
                .into_matrix()
                .unwrap(),
        );
    }

    // The contended service: memory-only (so every lookup is exactly one hit or one
    // miss, making the conservation law below exact).
    let service = Arc::new(service(CORPORA as usize));
    let fits = AtomicU64::new(0);
    let embeds_ok = AtomicU64::new(0);
    let embeds_unknown = AtomicU64::new(0);
    let evict_ops = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let service = &service;
            let config = &config;
            let handles = &handles;
            let reference = &reference;
            let (fits, embeds_ok, embeds_unknown, evict_ops) =
                (&fits, &embeds_ok, &embeds_unknown, &evict_ops);
            scope.spawn(move || {
                for i in 0..ITERATIONS {
                    let j = (t + i) % CORPORA;
                    // Fit: idempotent, always yields the deterministic handle.
                    let fitted = service
                        .serve_one(ServeRequest::fit(
                            corpus(j),
                            config.clone(),
                            FeatureSet::ds(),
                        ))
                        .unwrap();
                    fits.fetch_add(1, Ordering::Relaxed);
                    assert_eq!(fitted.handle(), Some(handles[j as usize]));
                    // Embed: either bit-identical output or — when another thread
                    // evicted between our fit and embed — the typed UnknownModel.
                    match service.serve_one(ServeRequest::embed(handles[j as usize], queries(j))) {
                        Ok(response) => {
                            assert_eq!(
                                response.into_matrix().unwrap(),
                                reference[j as usize],
                                "concurrent embed diverged from the serial path"
                            );
                            embeds_ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(err) => {
                            assert_eq!(err.code(), "unknown_model", "{err}");
                            embeds_unknown.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // A sprinkle of evictions to keep handles churning.
                    if (t + i) % 7 == 0 {
                        service
                            .serve_one(ServeRequest::evict(handles[j as usize]))
                            .unwrap();
                        evict_ops.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let (fits, embeds_ok, embeds_unknown, evict_ops) = (
        fits.into_inner(),
        embeds_ok.into_inner(),
        embeds_unknown.into_inner(),
        evict_ops.into_inner(),
    );
    assert_eq!(fits, THREADS * ITERATIONS);
    assert_eq!(embeds_ok + embeds_unknown, THREADS * ITERATIONS);

    // Conservation of cache stats: every fit performs exactly one lookup (hit or miss)
    // and every embed performs exactly one resolve (hit, or miss surfacing as
    // UnknownModel) — so if no increment was lost to a race, hits + misses equals the
    // number of lookups exactly.
    let stats = service.stats();
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        fits + embeds_ok + embeds_unknown,
        "lost cache-stat counts under concurrency: {stats:?}"
    );
    // Every embed that resolved was a hit; every UnknownModel was a miss; cold fits
    // account for the rest of the misses.
    assert!(stats.cache.hits >= embeds_ok);
    assert!(stats.cache.misses >= embeds_unknown);
    assert_eq!(stats.cache.warm_starts, 0, "no store tier attached");
    // The request counter saw every operation exactly once.
    assert_eq!(
        stats.requests,
        fits + embeds_ok + embeds_unknown + evict_ops
    );

    // After the dust settles the service still serves bit-identical answers.
    for j in 0..CORPORA {
        service
            .serve_one(ServeRequest::fit(
                corpus(j),
                config.clone(),
                FeatureSet::ds(),
            ))
            .unwrap();
        let settled = service
            .serve_one(ServeRequest::embed(handles[j as usize], queries(j)))
            .unwrap();
        assert_eq!(settled.into_matrix().unwrap(), reference[j as usize]);
    }
}

#[test]
fn parallel_and_serial_services_agree_on_a_mixed_batch() {
    let config = GemConfig::fast();
    let batch = |service: &EmbedService| {
        let handle = ModelHandle::from(model_key(&corpus(1), &config, FeatureSet::ds()));
        service.serve(vec![
            ServeRequest::fit(corpus(1), config.clone(), FeatureSet::ds()),
            ServeRequest::embed(handle, queries(1)),
            ServeRequest::embed_corpus("Gem (D+S)", corpus(2)),
            ServeRequest::embed_corpus("PLE-like?", corpus(2)), // unknown method
            ServeRequest::embed_corpus("D+S", corpus(1)).with_queries(queries(3)),
        ])
    };
    let serial_out = batch(&service(4).with_parallel(false));
    let parallel_out = batch(&service(4));
    assert_eq!(serial_out.len(), parallel_out.len());
    for (s, p) in serial_out.iter().zip(&parallel_out) {
        match (s, p) {
            (Ok(a), Ok(b)) => assert_eq!(a.matrix(), b.matrix()),
            (Err(a), Err(b)) => assert_eq!(a.code(), b.code()),
            other => panic!("serial and parallel disagree: {other:?}"),
        }
    }
    assert_eq!(serial_out[3].as_ref().unwrap_err().code(), "unknown_method");
}

#[test]
fn served_from_provenance_is_reported_per_tier() {
    let service = service(4);
    let config = GemConfig::fast();
    let cold = service
        .serve_one(ServeRequest::fit(
            corpus(9),
            config.clone(),
            FeatureSet::ds(),
        ))
        .unwrap();
    assert_eq!(cold.served_from(), Some(ServedFrom::ColdFit));
    let warm = service
        .serve_one(ServeRequest::fit(corpus(9), config, FeatureSet::ds()))
        .unwrap();
    assert_eq!(warm.served_from(), Some(ServedFrom::MemoryCache));
}
