//! Integration tests for the serving telemetry and admission-control layer: request
//! accounting that conserves every popped frame, queue gauges that return to zero
//! after a drain, the `Health` probe over a live TCP connection, and overload
//! shedding under a genuine flood (typed `overloaded` responses while in-flight work
//! completes).

use gem::core::{FeatureSet, GemColumn, GemConfig, MethodRegistry};
use gem::proto::RequestBody;
use gem::serve::{
    EmbedService, GemClient, GemServer, HealthState, RequestShape, ServerHandle,
    DEFAULT_QUEUE_CAPACITY, SHAPES,
};
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

fn corpus(seed: u64, columns: usize, rows: usize) -> Vec<GemColumn> {
    (0..columns)
        .map(|c| {
            GemColumn::new(
                (0..rows)
                    .map(|i| (seed * 900 + c as u64 * 17) as f64 + (i % 11) as f64 * 0.75)
                    .collect(),
                format!("col_{seed}_{c}"),
            )
        })
        .collect()
}

fn start_server(
    workers: usize,
    queue_capacity: Option<usize>,
) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let config = GemConfig::fast();
    let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 16);
    service.register_gem_family(&config);
    let mut server = GemServer::bind(Arc::new(service), ("127.0.0.1", 0))
        .unwrap()
        .with_workers(workers);
    if let Some(capacity) = queue_capacity {
        server = server.with_queue_capacity(capacity);
    }
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

/// The conservation invariant: every frame the executor pool pops is recorded under
/// exactly one request shape, so after any mixed workload — typed requests, a health
/// probe, even a line that fails to parse — the per-shape histogram counts sum to the
/// lifetime request counter, and the queue gauge has drained back to zero.
#[test]
fn per_shape_histograms_conserve_every_request_and_the_queue_drains() {
    let (server, join) = start_server(2, None);
    let cols = corpus(1, 5, 40);
    let config = GemConfig::fast();

    let mut client = GemClient::connect(server.addr()).unwrap();
    let fitted = client.fit(&cols, &config, FeatureSet::ds()).unwrap();
    for _ in 0..3 {
        client.embed(fitted.handle, &cols).unwrap();
    }
    let _ = client.list_models().unwrap();
    let health = client.health().unwrap();
    assert_eq!(health.state, HealthState::Ok);
    assert!(client.evict(fitted.handle).unwrap());

    // One deliberately malformed line over a raw socket: the server answers with a
    // typed error body, and the frame still lands in the accounting (as the
    // `protocol_error` shape), because it was popped and executed like any other.
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"this is not a protocol envelope\n").unwrap();
    let mut line = String::new();
    BufReader::new(raw.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(
        line.contains("error"),
        "malformed input gets a typed reply: {line}"
    );
    drop(raw);

    // Stats arrive with the per-shape latency table the server accumulated; every
    // shape exercised above shows up with a plausible count.
    let stats = client.stats().unwrap();
    assert!(!stats.latencies.is_empty());
    let embed_row = stats
        .latencies
        .iter()
        .find(|row| row.shape == "embed")
        .expect("the embed shape was exercised");
    assert_eq!(embed_row.count, 3);
    assert!(embed_row.p50_us <= embed_row.p99_us);

    server.shutdown();
    join.join().unwrap().unwrap();

    let recorded: u64 = SHAPES
        .iter()
        .map(|shape| server.metrics().shape_count(*shape))
        .sum();
    assert_eq!(
        recorded,
        server.counters().requests(),
        "every popped frame is recorded under exactly one shape"
    );
    assert_eq!(server.metrics().shape_count(RequestShape::ProtocolError), 1);
    assert_eq!(server.metrics().shape_count(RequestShape::Embed), 3);
    assert_eq!(server.counters().requests_shed(), 0);

    // The gauge family: depth drained to zero, capacity reflects the default bound,
    // and nothing is busy after the pool joined.
    assert_eq!(server.metrics().queue_depth(), 0);
    assert_eq!(
        server.metrics().queue_capacity(),
        DEFAULT_QUEUE_CAPACITY as u64
    );
    assert_eq!(server.metrics().busy_workers(), 0);
    assert!(server.metrics().queue_depth_high_water() <= DEFAULT_QUEUE_CAPACITY as u64);
}

/// The `Health` request answers over a live TCP connection from the admission layer's
/// own gauges: a freshly started, idle server is `ok`, reports its pool shape, and
/// carries no retry hint.
#[test]
fn health_round_trips_over_tcp_with_pool_shape() {
    let (server, join) = start_server(3, Some(64));
    let mut client = GemClient::connect(server.addr()).unwrap();

    let health = client.health().unwrap();
    assert_eq!(health.state, HealthState::Ok);
    assert_eq!(health.workers, 3);
    assert_eq!(health.queue_capacity, 64);
    // The probe's own executor counts as busy while it answers.
    assert!(health.busy_workers >= 1 && health.busy_workers <= health.workers);
    assert!(health.queue_depth < health.queue_capacity);
    assert_eq!(health.retry_after_ms, None);

    server.shutdown();
    join.join().unwrap().unwrap();
}

/// The overload satellite: a single worker pinned by a slow cold fit plus a tiny
/// admission bound, then a pipelined flood. Excess requests come back as typed
/// `overloaded` errors with a retry hint — correlated to their request ids, never
/// executed — while the in-flight fit completes normally and the server neither
/// stalls nor panics (the graceful join proves the drain).
#[test]
fn flooding_a_tiny_queue_sheds_typed_overloaded_responses() {
    const FLOOD: usize = 32;
    let (server, join) = start_server(1, Some(1));
    let mut client = GemClient::connect(server.addr()).unwrap();

    // A genuinely slow request to pin the only worker...
    let fit_id = client
        .send(RequestBody::Fit {
            corpus: corpus(2, 40, 90),
            config: GemConfig::with_components(24),
            features: FeatureSet::ds(),
            composition: None,
        })
        .unwrap();
    // ...give the worker time to pop it, so the queue is empty when the flood hits...
    std::thread::sleep(Duration::from_millis(150));
    // ...then flood: with capacity 1 and the worker busy, almost every one is shed.
    let flood_ids: Vec<u64> = (0..FLOOD)
        .map(|_| client.send(RequestBody::Stats).unwrap())
        .collect();

    let mut fit_completed = false;
    let mut executed = 0u64;
    let mut shed = 0u64;
    while client.pending() > 0 {
        let reply = client.recv_any().unwrap();
        match reply.outcome {
            Ok(body) => {
                if reply.id == fit_id {
                    assert!(
                        matches!(body, gem::proto::ResponseBody::Fitted { .. }),
                        "the in-flight fit completes normally during overload"
                    );
                    fit_completed = true;
                } else {
                    assert!(flood_ids.contains(&reply.id));
                    assert!(matches!(body, gem::proto::ResponseBody::Stats(_)));
                    executed += 1;
                }
            }
            Err(error) => {
                assert_eq!(error.code(), Some("overloaded"), "{error}");
                let hint = error.retry_after_ms().expect("shed responses carry a hint");
                assert!((25..=5_000).contains(&hint), "hint {hint} out of range");
                assert!(flood_ids.contains(&reply.id), "shed replies correlate");
                shed += 1;
            }
        }
    }
    assert!(fit_completed);
    assert!(
        shed >= 1,
        "a capacity-1 queue under a {FLOOD}-deep flood must shed"
    );
    assert_eq!(
        executed + shed,
        FLOOD as u64,
        "every flood request was answered once"
    );

    server.shutdown();
    join.join().unwrap().unwrap();

    // Shed frames never reached the pool: the lifetime counters keep them apart, and
    // the conservation invariant still holds over what actually executed.
    assert_eq!(server.counters().requests_shed(), shed);
    assert_eq!(server.counters().requests(), 1 + executed);
    let recorded: u64 = SHAPES
        .iter()
        .map(|shape| server.metrics().shape_count(*shape))
        .sum();
    assert_eq!(recorded, server.counters().requests());
    assert_eq!(server.metrics().queue_depth(), 0, "the queue drained");

    // The shutdown summary carries the shed count for post-mortems.
    let summary = gem::serve::shutdown_summary(server.counters(), &{
        let config = GemConfig::fast();
        EmbedService::new(MethodRegistry::with_gem(&config), 4).stats()
    });
    assert!(summary.contains(&format!("requests_shed={shed}")));
}
